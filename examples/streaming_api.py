"""The streaming service layer: cursors, a session pool, /api/v1.

A databank with a few thousand enriched rows is served three ways:

1. ``Session.stream`` — a lazy cursor whose ``LIMIT`` stops early and
   whose SELECT enrichments are combined page by page;
2. a :class:`~repro.api.SessionPool` checkout, the way a multi-threaded
   service would hold sessions;
3. the versioned REST facade — a large enriched query paginated with
   ``limit`` + opaque ``next_token`` through ``POST /api/v1/query``,
   plus a ``/api/v1/batch`` round and the structured error envelope.

Run:  python examples/streaming_api.py
"""

import repro
from repro.crosse.platform import CrossePlatform
from repro.federation import CrosseRestService
from repro.rdf.namespace import SMG
from repro.relational import Database

SITES = ["north", "south", "east", "west"]
ELEMS = ["Mercury", "Asbestos", "Iron", "Copper", "Lead"]


def build_platform() -> CrossePlatform:
    databank = Database()
    databank.execute("CREATE TABLE elem_contained (landfill_name TEXT, "
                     "elem_name TEXT, amount REAL)")
    databank.insert_rows("elem_contained", (
        {"landfill_name": SITES[i % len(SITES)],
         "elem_name": ELEMS[i % len(ELEMS)],
         "amount": float(i % 97)}
        for i in range(3000)))
    platform = CrossePlatform(databank)
    platform.register_user("giulia", "Giulia", "PoliTo")
    for elem, level in (("Mercury", "high"), ("Asbestos", "extreme"),
                        ("Lead", "medium")):
        platform.annotate_free("giulia", SMG[elem], SMG["dangerLevel"],
                               level)
    return platform


def main() -> None:
    platform = build_platform()

    # 1. A streaming cursor: first rows long before the full result.
    session = platform.session_for("giulia")
    cursor = session.stream("""
        SELECT landfill_name, elem_name, amount FROM elem_contained
        WHERE amount > 90
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""", page_size=64)
    print("Streaming cursor columns:", cursor.columns)
    print("First three enriched rows:")
    for row in (cursor.fetchone(), cursor.fetchone(), cursor.fetchone()):
        print("  ", row)
    cursor.close()                      # release the read lock early

    # 2. The pool: what each service thread does per request.
    pool = repro.api.SessionPool(platform, capacity=4)
    with pool.checkout("giulia") as pooled:
        count = pooled.query(
            "SELECT COUNT(*) AS n FROM elem_contained").scalar()
    print(f"\nPooled count: {count} rows; pool stats: {pool.stats()}")
    pool.close()

    # 3. The versioned REST facade: paginate a large enriched query.
    service = CrosseRestService(platform)
    body = {"username": "giulia", "limit": 5, "query":
            "SELECT DISTINCT landfill_name, elem_name FROM elem_contained "
            "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"}
    pages, token = 0, None
    total_rows = 0
    while True:
        request = dict(body, **({"next_token": token} if token else {}))
        response = service.request("POST", "/api/v1/query", request)
        assert response.status == 200
        pages += 1
        total_rows += len(response.payload["rows"])
        if pages <= 2:
            print(f"\npage {pages} (limit 5):")
            for row in response.payload["rows"]:
                print("  ", row)
        token = response.payload["next_token"]
        if token is None:
            break
    print(f"\nPaginated {total_rows} enriched rows over {pages} pages "
          "(opaque next_token round-trips).")

    # A batch: independent requests through the pool in one call.
    batch = service.request("POST", "/api/v1/batch", {"requests": [
        {"method": "GET", "path": "/api/v1/users?limit=10"},
        {"method": "GET",
         "path": "/api/v1/recommendations/peers/giulia"},
    ]})
    print("Batch statuses:",
          [entry["status"] for entry in batch.payload["responses"]])

    # The structured error envelope (here: wrong method -> 405 + allow).
    error = service.request("DELETE", "/api/v1/users")
    print(f"DELETE /api/v1/users -> {error.status}, "
          f"allow={error.payload['allow']}, "
          f"code={error.payload['error']['code']}")
    service.close()


if __name__ == "__main__":
    main()
