"""Quickstart: a SESQL query in twenty lines.

Builds a tiny databank and a personal knowledge base, then runs the
paper's Example 4.1 — extending a relational result with the user's own
``dangerLevel`` knowledge.

Run:  python examples/quickstart.py
"""

from repro.core import SESQLEngine
from repro.rdf import parse_turtle
from repro.relational import Database


def main() -> None:
    # 1. The shared, factual databank (the "Main Platform").
    databank = Database()
    databank.execute_script("""
        CREATE TABLE elem_contained (
            landfill_name TEXT, elem_name TEXT, amount REAL);
        INSERT INTO elem_contained VALUES
            ('a', 'Mercury', 12.0),
            ('a', 'Asbestos', 3.5),
            ('a', 'Iron', 140.0),
            ('b', 'Mercury', 7.25);
    """)

    # 2. The user's personal, contextual knowledge (the "Semantic
    #    Platform"): plain RDF in Turtle.
    knowledge = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury  smg:dangerLevel "high" .
        smg:Asbestos smg:dangerLevel "extreme" .
    """)

    # 3. A SESQL query: SQL + ENRICH (paper Example 4.1).
    engine = SESQLEngine(databank, knowledge)
    outcome = engine.execute("""
        SELECT elem_name, landfill_name
        FROM elem_contained
        WHERE landfill_name = 'a'
        ENRICH
        SCHEMAEXTENSION( elem_name, dangerLevel)
    """)

    print("Enriched result:")
    print(outcome.result.format_table())
    print("\nSPARQL the SQM generated: ", outcome.sparql_queries[0])
    print("Final SQL the JoinManager issued:", outcome.final_sqls[0])


if __name__ == "__main__":
    main()
