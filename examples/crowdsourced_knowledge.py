"""The full CroSSE social loop (Sections I-B and III).

Three users on one platform:

1. Giulia (researcher) annotates elements she finds in the databank —
   the *integrated* scenario — and adds free statements (*independent*).
2. Marco (city planner) explores the public annotations and imports the
   ones he believes (*crowdsourced*), so his queries start seeing them.
3. Eva shares Giulia's interests; the platform recommends her as a
   peer, recommends the landfills peers explored, and previews a report
   with context-aware snippets.

Run:  python examples/crowdsourced_knowledge.py
"""

from repro.crosse import CrossePlatform, Reference
from repro.rdf import SMG
from repro.smartground import SmartGroundConfig, generate_databank

SESQL = """
    SELECT DISTINCT elem_name FROM elem_contained
    ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)
"""


def main() -> None:
    databank = generate_databank(SmartGroundConfig(n_landfills=25))
    platform = CrossePlatform(databank)

    platform.register_user("giulia", "Giulia R.", "UniTo Earth Sciences",
                           interests=["Mercury", "Asbestos", "pollution"])
    platform.register_user("marco", "Marco B.", "City of Torino",
                           interests=["urban", "planning"])
    platform.register_user("eva", "Eva N.", "EnviroTest",
                           interests=["Mercury", "sampling"])

    # -- 1. Giulia annotates -----------------------------------------------
    mercury = platform.annotate_concept(
        "giulia", "elem_contained", "elem_name", "Mercury",
        SMG.dangerLevel, "high",
        reference=Reference(title="WHO mercury factsheet",
                            link="https://who.int/mercury"))
    platform.annotate_free("giulia", SMG.Mercury, SMG.isA,
                           SMG.HazardousWaste)
    print(f"Giulia inserted statement #{mercury.statement_id} "
          f"({mercury.triple.n3()})")

    # -- 2. Marco explores and borrows ---------------------------------------
    print("\nMarco, before borrowing any knowledge:")
    before = platform.run_sesql("marco", SESQL)
    print(f"  dangerLevel known for "
          f"{sum(1 for row in before.rows if row[1] is not None)} "
          f"of {len(before.rows)} materials")

    for record in platform.explore_annotations("marco"):
        platform.accept_statement("marco", record.statement_id)
        print(f"  Marco accepts #{record.statement_id} by {record.author}")

    after = platform.run_sesql("marco", SESQL)
    print("Marco, after borrowing:")
    print(f"  dangerLevel known for "
          f"{sum(1 for row in after.rows if row[1] is not None)} "
          f"of {len(after.rows)} materials")

    # -- 3. Peers, recommendations and previews --------------------------------
    platform.record_exploration("giulia", "lf0001", ["Mercury"])
    platform.record_exploration("eva", "lf0003", ["Mercury"])
    platform.record_exploration("eva", "lf0007", ["Mercury"])

    print("\nPeers recommended to Giulia:")
    for username, similarity in platform.recommend_peers("giulia"):
        print(f"  {username:8s} similarity={similarity:.3f}")

    print("Landfills recommended to Giulia (explored by similar peers):")
    for resource, score in platform.recommend_resources("giulia"):
        print(f"  {resource:8s} score={score:.3f}")

    platform.add_document(
        "report-42", "Mercury contamination survey",
        "Routine procedures were followed across all sites. "
        "Sampling depth varied by sector. "
        "Elevated Mercury and Asbestos readings were confirmed in the "
        "northern mining landfills near Torino. "
        "Administrative appendices follow.",
        tags=["Mercury", "Asbestos"])
    preview = platform.preview_document("giulia", "report-42")
    print(f"\nContext-aware preview for Giulia:\n  {preview['snippet']}")
    print(f"  key concepts: {preview['key_concepts']}")


if __name__ == "__main__":
    main()
