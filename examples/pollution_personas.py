"""Two users, one query, different answers (Section I-B).

A researcher and a city planner both ask "which landfills hold
pollutants?".  Each runs the *same* SESQL query; because queries are
evaluated in the user's personal knowledge context, the planner — who
additionally flags urban-concern materials like Zinc — sees more
hazardous matches than the researcher.

Run:  python examples/pollution_personas.py
"""

from repro.core import SESQLEngine, StoredQueryRegistry
from repro.smartground import (DANGER_QUERY_SPARQL, SmartGroundConfig,
                               city_planner_kb, generate_databank,
                               researcher_kb)

QUERY = """
    SELECT landfill_name, COUNT(*) AS hazardous_materials
    FROM elem_contained
    WHERE ${elem_name = HazardousWaste:cond1}
    GROUP BY landfill_name
    ORDER BY hazardous_materials DESC, landfill_name
    LIMIT 8
    ENRICH
    REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)
"""

#: The planner's dangerQuery casts a wider net: anything with *any*
#: recorded danger level counts as a concern in an urban context.
PLANNER_DANGER_QUERY = """
    PREFIX smg: <http://smartground.eu/ns#>
    SELECT ?e WHERE { ?e smg:dangerLevel ?level }
"""


def main() -> None:
    config = SmartGroundConfig(n_landfills=60)
    databank = generate_databank(config)

    researcher_queries = StoredQueryRegistry()
    researcher_queries.register("dangerQuery", DANGER_QUERY_SPARQL)
    researcher = SESQLEngine(databank, researcher_kb(config),
                             stored_queries=researcher_queries)

    planner_queries = StoredQueryRegistry()
    planner_queries.register("dangerQuery", PLANNER_DANGER_QUERY)
    planner = SESQLEngine(databank, city_planner_kb(config),
                          stored_queries=planner_queries)

    print("Researcher's view (scientific hazard classification):")
    print(researcher.execute(QUERY).result.format_table())

    print("\nCity planner's view (urban concerns included):")
    print(planner.execute(QUERY).result.format_table())

    print("\nSame databank, same query text — the personal knowledge "
          "base and the per-user\nstored dangerQuery change what "
          "'pollutant' means for each of them.")


if __name__ == "__main__":
    main()
