"""The unified session API: connect -> prepare -> explain -> execute.

One entry point for every backend: a plain databank session with a
prepared, parameterised SESQL query (plan cached, SPARQL memoized),
then a mediator session over two federated sources showing view
pruning and materialization reuse.

Run:  python examples/session_api.py
"""

import repro
from repro.federation import Mediator
from repro.rdf import parse_turtle
from repro.relational import Database


def main() -> None:
    # 1. A databank session with a personal knowledge base.
    databank = Database()
    databank.execute_script("""
        CREATE TABLE elem_contained (
            landfill_name TEXT, elem_name TEXT, amount REAL);
        INSERT INTO elem_contained VALUES
            ('a', 'Mercury', 12.0),
            ('a', 'Asbestos', 3.5),
            ('a', 'Iron', 140.0),
            ('b', 'Mercury', 7.25);
    """)
    knowledge = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury  smg:dangerLevel "high" .
        smg:Asbestos smg:dangerLevel "extreme" .
    """)
    session = repro.connect(databank, knowledge_base=knowledge)

    # 2. Prepare once; `?` binds typed values injection-safely.
    prepared = session.prepare("""
        SELECT elem_name, amount FROM elem_contained WHERE amount > ?
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""")

    # 3. explain(): the plan — stages, SPARQL, SQL — without running.
    print("The plan:")
    print(prepared.explain([5.0]).format())

    # 4. Execute twice: the second run reuses the memoized extraction.
    first = prepared.execute([5.0])
    second = prepared.execute([1.0])
    print("\nEnriched result (amount > 1.0):")
    print(second.result.format_table())
    print(f"\nFirst run extraction cache hits:  {first.cache_hits}"
          " (explain() already warmed the cache)")
    print(f"Second run extraction cache hits: {second.cache_hits}"
          " (SPARQL skipped)")

    # 5. A mediator session: federated sources behind one global view.
    italy, france = Database("italy"), Database("france")
    for db, rows in ((italy, [("lf_it_1", 12.0)]),
                     (france, [("lf_fr_1", 9.0), ("lf_fr_2", 3.0)])):
        db.execute("CREATE TABLE landfill (name TEXT, size REAL)")
        for name, size in rows:
            db.execute(
                f"INSERT INTO landfill VALUES ('{name}', {size})")
    mediator = Mediator()
    mediator.register_source("italy", italy)
    mediator.register_source("france", france)
    mediator.define_view("eu_landfill", [
        ("italy", "SELECT name, size FROM landfill"),
        ("france", "SELECT name, size FROM landfill")])

    fed = repro.connect(mediator)
    _result, cold = fed.execute("SELECT COUNT(*) AS n FROM eu_landfill")
    result, warm = fed.execute("SELECT COUNT(*) AS n FROM eu_landfill")
    print(f"\nMediated count over {result.scalar()} EU landfills:")
    print(f"  cold run shipped {len(cold.sub_queries)} sub-queries")
    print(f"  warm run shipped {len(warm.sub_queries)}"
          " (materialization reused)")


if __name__ == "__main__":
    main()
