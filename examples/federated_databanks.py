"""Integrating national databanks (Section I-A + Fig. 1).

SmartGround "integrates existing information from national and
international databanks".  This example builds three national sources
with heterogeneous schemas, exposes them through the GAV mediator as a
single ``eu_landfill`` view, attaches one source via a foreign table
(the postgres_fdw path), and finally runs a contextually-enriched SESQL
query over the integrated view.

Run:  python examples/federated_databanks.py
"""

from repro.core import SESQLEngine
from repro.federation import (Mediator, RemoteTableSource,
                              attach_foreign_table)
from repro.rdf import parse_turtle
from repro.relational import Database


def national_source(country: str, rows: list[tuple]) -> Database:
    db = Database(country)
    db.execute("""CREATE TABLE sites (
        site_name TEXT, town TEXT, main_material TEXT, tonnes REAL)""")
    db.insert_rows("sites", (
        {"site_name": name, "town": town,
         "main_material": material, "tonnes": tonnes}
        for name, town, material, tonnes in rows))
    return db


def main() -> None:
    italy = national_source("italy", [
        ("lf_it_01", "Torino", "Mercury", 12.0),
        ("lf_it_02", "Milano", "Iron", 140.0),
        ("lf_it_03", "Genova", "Asbestos", 3.5)])
    france = national_source("france", [
        ("lf_fr_01", "Lyon", "Mercury", 7.25),
        ("lf_fr_02", "Lille", "Copper", 55.0)])
    spain = national_source("spain", [
        ("lf_es_01", "Bilbao", "Lead", 9.0)])

    # -- GAV mediation: one global view over three sources -------------------
    mediator = Mediator()
    for name, db in (("italy", italy), ("france", france),
                     ("spain", spain)):
        mediator.register_source(name, db)
    fragment_sql = ("SELECT site_name, town, main_material, tonnes "
                    "FROM sites")
    mediator.define_view("eu_landfill", [
        ("italy", fragment_sql), ("france", fragment_sql),
        ("spain", fragment_sql)])

    result, report = mediator.query("""
        SELECT main_material, COUNT(*) AS sites, SUM(tonnes) AS total
        FROM eu_landfill GROUP BY main_material ORDER BY total DESC""")
    print("Mediated EU-wide rollup:")
    print(result.format_table())
    print(f"  sub-queries shipped: {len(report.sub_queries)}, "
          f"rows per source: {report.rows_per_source}")

    # -- postgres_fdw path: France's table attached into Italy's catalog ---------
    attach_foreign_table(italy, "sites_fr",
                         RemoteTableSource(france, "sites"))
    joined = italy.query("""
        SELECT l.site_name, f.site_name
        FROM sites l JOIN sites_fr f ON l.main_material = f.main_material""")
    print("\nCross-border same-material pairs via the foreign table:")
    print(joined.format_table())

    # -- SESQL over the integrated view ----------------------------------------------
    integrated = Database("integrated")
    integrated.execute("""CREATE TABLE eu_landfill (
        site_name TEXT, town TEXT, main_material TEXT, tonnes REAL)""")
    view_rows, _ = mediator.query("SELECT * FROM eu_landfill")
    for row in view_rows.rows:
        integrated.table("eu_landfill").insert_tuple(row)

    knowledge = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury  smg:dangerLevel "high" .
        smg:Asbestos smg:dangerLevel "extreme" .
        smg:Lead     smg:dangerLevel "high" .
        smg:Torino smg:inCountry smg:Italy .
        smg:Genova smg:inCountry smg:Italy .
        smg:Milano smg:inCountry smg:Italy .
        smg:Lyon smg:inCountry smg:France .
        smg:Lille smg:inCountry smg:France .
        smg:Bilbao smg:inCountry smg:Spain .
    """)
    engine = SESQLEngine(integrated, knowledge)
    outcome = engine.execute("""
        SELECT site_name, town, main_material FROM eu_landfill
        ENRICH
        SCHEMAREPLACEMENT(town, inCountry)
        SCHEMAEXTENSION(main_material, dangerLevel)
    """)
    print("\nContextually-enriched view of the integrated databank:")
    print(outcome.result.format_table())


if __name__ == "__main__":
    main()
