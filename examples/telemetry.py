"""End-to-end observability: metrics, span trees, the slow-query log.

One telemetry bundle follows a query through every layer it touches:

1. a mediated SESQL query over **two federated sources** produces a
   single span tree — parse, SPARQL extraction, per-source fragment
   shipping, local execution, combine — printed via ``Span.format()``;
2. the metrics registry accumulates counters and latency histograms
   for the same run, rendered both as a dict and in the Prometheus
   text exposition format a scraper would collect;
3. a zero-threshold slow-query log captures every statement with its
   wall time and trace, and the ``/api/v1`` observability routes serve
   metrics and traces over the REST facade.

Run:  python examples/telemetry.py
"""

import repro
from repro.crosse.platform import CrossePlatform
from repro.federation import CrosseRestService, FederationOptions, Mediator
from repro.rdf.namespace import SMG
from repro.rdf.store import Triple, TripleStore
from repro.rdf.terms import Literal
from repro.relational import Database
from repro.telemetry import TelemetryOptions

ENRICHED = ("SELECT elem_name, amount FROM elem_contained "
            "WHERE amount > 2.0 "
            "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")


def plant_db(name: str, rows) -> Database:
    db = Database(name)
    db.execute("CREATE TABLE elem_contained (elem_name TEXT, amount REAL)")
    db.insert_rows("elem_contained", (
        {"elem_name": elem, "amount": amount} for elem, amount in rows))
    return db


def danger_kb() -> TripleStore:
    kb = TripleStore()
    for name, level in (("Lead", "high"), ("Arsenic", "high"),
                        ("Zinc", "low"), ("Copper", "low")):
        kb.add(Triple(SMG[name], SMG["dangerLevel"], Literal(level)))
    return kb


def main() -> None:
    # 1. One trace across the whole federation pipeline.
    mediator = Mediator(options=FederationOptions(max_workers=2))
    mediator.register_source("turin", plant_db(
        "turin", [("Lead", 12.0), ("Zinc", 3.0)]))
    mediator.register_source("milan", plant_db(
        "milan", [("Arsenic", 9.0), ("Copper", 1.0)]))
    mediator.define_view("elem_contained", [
        ("turin", "SELECT * FROM elem_contained"),
        ("milan", "SELECT * FROM elem_contained")])

    session = repro.connect(
        mediator.as_databank(), knowledge_base=danger_kb(),
        telemetry=TelemetryOptions(slow_query_threshold_s=0.0))
    outcome = session.execute(ENRICHED)
    print(f"Mediated query returned {len(outcome.result)} enriched rows.")
    print("\nOne span tree, both federated sources inside it:")
    print(session.last_trace().format())

    # 2. The metrics the same run accumulated.
    telemetry = session.telemetry
    fragments = telemetry.metrics.to_dict()[
        "repro_federation_fragment_seconds"]["series"]
    print("\nFragments shipped per source:")
    for series in fragments:
        print(f"   {series['labels']['source']}: {series['count']} "
              f"fragment(s)")
    prometheus = telemetry.metrics.render_prometheus()
    print("\nPrometheus exposition (first lines a scraper would see):")
    for line in prometheus.splitlines()[:6]:
        print("   " + line)

    # 3. The slow-query log (threshold 0.0 records everything).
    entry = telemetry.slow_queries.entries()[0]
    print(f"\nSlow-query log captured {entry.query_id}: "
          f"{entry.wall_s * 1000:.2f} ms, {entry.rows} rows.")

    # 4. The same surface over REST, on a platform.
    databank = plant_db("bank", [("Lead", 12.0), ("Zinc", 3.0)])
    platform = CrossePlatform(
        databank, telemetry=TelemetryOptions(slow_query_threshold_s=0.0))
    platform.register_user("giulia", "Giulia", "PoliTo")
    service = CrosseRestService(platform)
    response = service.request("POST", "/api/v1/query", {
        "username": "giulia",
        "query": "SELECT elem_name FROM elem_contained"})
    query_id = response.payload["query_id"]
    trace = service.request("GET", f"/api/v1/traces/{query_id}")
    print(f"\nGET /api/v1/traces/{query_id} -> {trace.status}; root span "
          f"'{trace.payload['trace']['name']}' with "
          f"{len(trace.payload['trace']['children'])} children.")
    metrics = service.request("GET", "/api/v1/metrics?format=prometheus")
    queries_total = [line for line in metrics.payload.splitlines()
                     if line.startswith("repro_queries_total")]
    print("GET /api/v1/metrics?format=prometheus ->",
          *queries_total[:1])
    service.close()


if __name__ == "__main__":
    main()
