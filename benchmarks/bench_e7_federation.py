"""E7 — mediated-query overhead over 1..8 federated sources.

The same 2000 logical rows are (a) held locally, (b) split across N
mediator sources, (c) attached through a foreign table.  Expected
shape: mediation costs per-source shipping + materialisation, growing
mildly with N at constant total data; the FDW live scan adds a
per-scan penalty relative to local.
"""

from __future__ import annotations

import pytest

from repro.federation import (FederationOptions, Mediator,
                              RemoteTableSource, attach_foreign_table)
from repro.relational import Database

from conftest import scaled

TOTAL_ROWS = scaled(2_000)

#: E7 measures shipping + materialisation per mediated query, so the
#: generation-keyed fragment cache is disabled — with it on, every
#: repetition after the first would be recall, not mediation (that win
#: is E13's to measure).
OPTIONS = FederationOptions(fragment_cache_size=0)

QUERY = """SELECT city, COUNT(*) AS n, AVG(size) AS avg_size
           FROM eu_landfill GROUP BY city ORDER BY n DESC"""


def _source(name: str, start: int, count: int) -> Database:
    db = Database(name)
    db.execute("CREATE TABLE landfill (name TEXT, city TEXT, size REAL)")
    db.insert_rows("landfill", (
        {"name": f"lf{start + i:05d}",
         "city": f"city{(start + i) % 25:02d}",
         "size": float((start + i) % 997)}
        for i in range(count)))
    return db


def _mediator(n_sources: int) -> Mediator:
    mediator = Mediator(OPTIONS)
    fragments = []
    start = 0
    for index in range(n_sources):
        name = f"src{index}"
        # Spread the remainder so the shares always sum to TOTAL_ROWS,
        # whatever the smoke-mode scale is.
        count = TOTAL_ROWS // n_sources \
            + (1 if index < TOTAL_ROWS % n_sources else 0)
        mediator.register_source(name, _source(name, start, count))
        start += count
        fragments.append((name, "SELECT name, city, size FROM landfill"))
    mediator.define_view("eu_landfill", fragments)
    return mediator


@pytest.mark.parametrize("n_sources", [1, 2, 4, 8])
def test_e7_mediated_query(benchmark, n_sources):
    mediator = _mediator(n_sources)
    result, report = benchmark(lambda: mediator.query(QUERY))
    assert sum(report.rows_per_source.values()) == TOTAL_ROWS


def test_e7_local_baseline(benchmark):
    local = _source("local", 0, TOTAL_ROWS)
    sql = QUERY.replace("eu_landfill", "landfill")
    result = benchmark(lambda: local.query(sql))
    assert len(result.rows) == 25


def test_e7_foreign_table_scan(benchmark):
    remote = _source("remote", 0, TOTAL_ROWS)
    front = Database("front")
    attach_foreign_table(front, "eu_landfill",
                         RemoteTableSource(remote, "landfill"))
    result = benchmark(lambda: front.query(QUERY))
    assert len(result.rows) == 25
