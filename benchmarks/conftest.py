"""Shared fixtures for the E1-E8 benchmark harness (DESIGN.md §5).

Run with ``pytest benchmarks/ --benchmark-only``.  Each file regenerates
one experiment; EXPERIMENTS.md records the measured series.
"""

from __future__ import annotations

import pytest

from repro.smartground.ontology import researcher_kb
from repro.workloads import bench_engine, scaled_databank


@pytest.fixture(scope="session")
def databank_1200():
    """~1200 elem_contained rows (the default E1 working set)."""
    return scaled_databank(1200)


@pytest.fixture(scope="session")
def databank_150():
    """Small databank for the quadratic self-join query (ex4.6)."""
    return scaled_databank(150)


@pytest.fixture(scope="session")
def engine_1200(databank_1200):
    return bench_engine(databank_1200)


@pytest.fixture(scope="session")
def engine_150(databank_150):
    return bench_engine(databank_150)


@pytest.fixture(scope="session")
def kb_researcher():
    return researcher_kb()
