"""Shared fixtures for the E1-E10 benchmark harness (DESIGN.md §5).

Run per experiment file: ``pytest benchmarks/bench_e10_planner.py
--benchmark-only``.  Each file regenerates one experiment;
EXPERIMENTS.md records the measured series.

Setting ``BENCH_SMOKE=1`` shrinks every workload to a fraction of its
measured size: CI runs each benchmark end-to-end on tiny data (with
``--benchmark-disable``) so the perf scripts cannot silently rot, while
real measurement runs keep the published scales.
"""

from __future__ import annotations

import os

import pytest

from repro.smartground.ontology import researcher_kb
from repro.workloads import bench_engine, scaled_databank

#: CI smoke mode: run everything, measure nothing meaningful.
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def scaled(n: int, floor: int = 30) -> int:
    """The workload size to use: *n*, or a floored fraction in smoke
    mode (import via ``from conftest import scaled`` in bench modules)."""
    return max(n // 40, floor) if SMOKE else n


@pytest.fixture(scope="session")
def databank_1200():
    """~1200 elem_contained rows (the default E1 working set)."""
    return scaled_databank(scaled(1200))


@pytest.fixture(scope="session")
def databank_150():
    """Small databank for the quadratic self-join query (ex4.6)."""
    return scaled_databank(scaled(150, floor=60))


@pytest.fixture(scope="session")
def engine_1200(databank_1200):
    return bench_engine(databank_1200)


@pytest.fixture(scope="session")
def engine_150(databank_150):
    return bench_engine(databank_150)


@pytest.fixture(scope="session")
def kb_researcher():
    return researcher_kb()
