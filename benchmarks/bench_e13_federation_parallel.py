"""E13 — parallel vs serial fragment shipping over latency-bound sources.

The same mediated query is shipped to 6 sources whose ``query()`` pays
a simulated network hop (sleep-based, so the measured ratio is
scale-robust and asserts at smoke scale too):

* **serial** — ``FederationOptions(max_workers=1)``: fragments run
  inline in dispatch order, the shipping behavior of earlier revisions.
  Wall-clock ≈ 6 hops.
* **parallel** — the default worker pool dispatches all 6 fragments at
  once; wall-clock ≈ 1 hop.  Gate: **≥3x** (the ideal is ~6x; the bar
  leaves room for shared-runner scheduling noise).
* **fragment cache** — a second ship of unchanged sources is served
  from the generation-keyed fragment-result cache: no source is
  consulted at all, so even the single overlapped hop disappears.
  Measured as a series (ungated: the win is effectively unbounded).

Both gated sides disable the fragment cache — the gate measures
shipping overlap, not recall.
"""

from __future__ import annotations

import time

from conftest import scaled
from repro.federation import FederationOptions, Mediator
from repro.relational import Database

N_SOURCES = 6
#: Simulated per-fragment network hop.  Dominates row handling at
#: either scale, so serial/parallel ≈ N_SOURCES even in smoke mode.
LATENCY_S = 0.04
ROWS_PER_SOURCE = scaled(400, floor=40)

QUERY = """SELECT city, COUNT(*) AS n, AVG(size) AS avg_size
           FROM eu_landfill GROUP BY city ORDER BY n DESC, city"""

SERIAL = FederationOptions(max_workers=1, fragment_cache_size=0)
PARALLEL = FederationOptions(fragment_cache_size=0)
CACHED = FederationOptions()


class LatencySource(Database):
    """A source Database whose query() pays a simulated network hop."""

    def __init__(self, name: str, latency_s: float) -> None:
        super().__init__(name)
        self.latency_s = latency_s

    def query(self, sql):
        time.sleep(self.latency_s)
        return super().query(sql)


def _mediator(options: FederationOptions) -> Mediator:
    mediator = Mediator(options)
    fragments = []
    for index in range(N_SOURCES):
        name = f"src{index}"
        db = LatencySource(name, LATENCY_S)
        db.execute(
            "CREATE TABLE landfill (name TEXT, city TEXT, size REAL)")
        db.insert_rows("landfill", (
            {"name": f"lf{index}_{i:05d}",
             "city": f"city{(index + i) % 25:02d}",
             "size": float((index * ROWS_PER_SOURCE + i) % 997)}
            for i in range(ROWS_PER_SOURCE)))
        mediator.register_source(name, db)
        fragments.append((name, "SELECT name, city, size FROM landfill"))
    mediator.define_view("eu_landfill", fragments)
    return mediator


def _ship_once(mediator: Mediator) -> float:
    """Wall-clock of one cold mediated query (fresh session)."""
    started = time.perf_counter()
    mediator.connect().execute(QUERY)
    return time.perf_counter() - started


# -- measured series ---------------------------------------------------------


def test_e13_serial_shipping(benchmark):
    mediator = _mediator(SERIAL)
    _result, report = benchmark(lambda: mediator.query(QUERY))
    assert sum(report.rows_per_source.values()) \
        == N_SOURCES * ROWS_PER_SOURCE


def test_e13_parallel_shipping(benchmark):
    mediator = _mediator(PARALLEL)
    _result, report = benchmark(lambda: mediator.query(QUERY))
    assert sum(report.rows_per_source.values()) \
        == N_SOURCES * ROWS_PER_SOURCE


def test_e13_fragment_cache_recall(benchmark):
    mediator = _mediator(CACHED)
    mediator.query(QUERY)                      # warm the fragment cache
    _result, report = benchmark(lambda: mediator.query(QUERY))
    assert report.fragment_cache_hits == N_SOURCES


# -- acceptance gate ----------------------------------------------------------


def test_e13_parallel_shipping_wins():
    """The acceptance gate: identical results and report shape, ≥3x
    faster than serial shipping across 6 latency-simulated sources."""
    serial = _mediator(SERIAL)
    parallel = _mediator(PARALLEL)
    serial_result, serial_report = serial.query(QUERY)
    parallel_result, parallel_report = parallel.query(QUERY)
    assert parallel_result.rows == serial_result.rows
    assert parallel_report.rows_per_source == serial_report.rows_per_source

    serial_s = min(_ship_once(serial) for _ in range(3))
    parallel_s = min(_ship_once(parallel) for _ in range(3))
    speedup = serial_s / parallel_s
    print(f"\nE13 shipping: serial={serial_s * 1000:.0f}ms "
          f"parallel={parallel_s * 1000:.0f}ms speedup={speedup:.1f}x "
          f"({N_SOURCES} sources, {LATENCY_S * 1000:.0f}ms hop, "
          f"{ROWS_PER_SOURCE} rows/source)")
    assert speedup >= 3.0, (
        f"parallel shipping speedup {speedup:.2f}x below the 3x bar")


def test_e13_cached_ship_skips_sources():
    """Fragment-cache sanity: a warm ship consults no source and a
    source-side write invalidates exactly that source's entry."""
    mediator = _mediator(CACHED)
    session = mediator.connect()
    session.execute(QUERY)
    warm = mediator.connect()                  # fresh session, warm cache
    started = time.perf_counter()
    _result, report = warm.execute(QUERY)
    warm_s = time.perf_counter() - started
    assert report.fragment_cache_hits == N_SOURCES
    assert warm_s < LATENCY_S                  # not even one hop paid
    mediator.source("src0").execute(
        "INSERT INTO landfill VALUES ('fresh', 'city00', 1.0)")
    _result, after = mediator.connect().execute(QUERY)
    assert after.fragment_cache_hits == N_SOURCES - 1
