"""E5 — parser throughput: SQL, SPARQL and SESQL front ends.

Expected shape: SESQL parsing costs SQL parsing plus a small constant
for the tag scanner and the ENRICH grammar — the language front end is
never the bottleneck of the pipeline.
"""

from __future__ import annotations

from repro.core.sqp import parse_sesql
from repro.relational import parse_sql
from repro.smartground import PAPER_EXAMPLES, SQL_BASELINES
from repro.sparql import parse_sparql

SQL_CORPUS = list(SQL_BASELINES.values()) + [
    """SELECT l.city, COUNT(*) AS n, AVG(e.amount) AS avg_amount
       FROM landfill l JOIN elem_contained e ON l.name = e.landfill_name
       WHERE e.purity BETWEEN 0.2 AND 0.9
       GROUP BY l.city HAVING COUNT(*) > 2
       ORDER BY n DESC LIMIT 10""",
    """SELECT name FROM landfill WHERE EXISTS (
         SELECT 1 FROM elem_contained e WHERE e.landfill_name = name
           AND e.elem_name IN ('Mercury', 'Lead', 'Asbestos'))""",
]

SESQL_CORPUS = [query.sesql for query in PAPER_EXAMPLES]

SPARQL_CORPUS = [
    "SELECT ?s ?o WHERE { ?s <http://smartground.eu/ns#dangerLevel> ?o }",
    """PREFIX smg: <http://smartground.eu/ns#>
       SELECT DISTINCT ?e WHERE {
         { ?e smg:isA smg:HazardousWaste } UNION
         { ?e smg:dangerLevel "extreme" }
         FILTER(ISIRI(?e)) } ORDER BY ?e LIMIT 50""",
    """PREFIX smg: <http://smartground.eu/ns#>
       SELECT ?x WHERE { smg:Torino smg:inCountry/smg:inContinent ?x }""",
]


def test_e5_sql_parser(benchmark):
    def run():
        for sql in SQL_CORPUS:
            parse_sql(sql)
    benchmark(run)


def test_e5_sesql_parser(benchmark):
    def run():
        for sesql in SESQL_CORPUS:
            parse_sesql(sesql)
    benchmark(run)


def test_e5_sparql_parser(benchmark):
    def run():
        for sparql in SPARQL_CORPUS:
            parse_sparql(sparql)
    benchmark(run)
