"""E8 — peer/data recommendation at user scale.

Seeded activity for 50..500 users (two overlapping interest
communities).  Expected shape: single-user peer recommendation is
linear in users; the full peer network is quadratic (pairwise cosine) —
the platform cost model for Section I-B's services.
"""

from __future__ import annotations

import pytest

from repro.crosse import PeerRecommender
from repro.workloads import seeded_tracker

SIZES = [50, 200, 500]

_TRACKERS = {}


def _recommender(n_users: int) -> PeerRecommender:
    if n_users not in _TRACKERS:
        _TRACKERS[n_users] = seeded_tracker(n_users)
    return PeerRecommender(_TRACKERS[n_users])


@pytest.mark.parametrize("n_users", SIZES)
def test_e8_peer_recommendation(benchmark, n_users):
    recommender = _recommender(n_users)
    peers = benchmark(
        lambda: recommender.recommend_peers("user0000", count=5))
    assert len(peers) == 5


@pytest.mark.parametrize("n_users", [50, 200])
def test_e8_peer_network_construction(benchmark, n_users):
    recommender = _recommender(n_users)
    graph = benchmark(recommender.peer_network)
    assert graph.number_of_nodes() == n_users


@pytest.mark.parametrize("n_users", SIZES)
def test_e8_resource_recommendation(benchmark, n_users):
    recommender = _recommender(n_users)
    resources = benchmark(
        lambda: recommender.recommend_resources("user0000", count=5))
    assert resources
