"""E10 — the cost-based planner on a skewed multi-join workload.

The workload is the classic star-shaped trap: the query is *written*
fact-first (``fact JOIN mid JOIN dim WHERE dim.kind = 'rare'``), so the
as-written plan builds a fact-sized intermediate before the selective
``dim`` filter ever bites.  The planner pushes the filter below the
joins, re-orders them to start from the two rare ``dim`` rows, and
probes ``fact``'s index on the join key instead of scanning it.

Three measurements plus one assertion-style test:

* **written-order**: planner disabled — execute exactly as written;
* **planner**: planner enabled, statistics ANALYZEd;
* **planner-cold-stats**: planner enabled, nothing ANALYZEd (live row
  counts only) — shows estimates degrade gracefully;
* the assertion test requires the planner to pick a *different* join
  order, a ≥2x wall-clock speedup, and ``explain(analyze=True)`` to
  report estimated and actual rows per operator.
"""

from __future__ import annotations

import time

import pytest

from conftest import SMOKE, scaled
from repro.planner import PlannerOptions
from repro.relational import Database

FACT_ROWS = scaled(40_000, floor=4_000)
MID_ROWS = max(FACT_ROWS // 20, 10)
DIM_ROWS = 20
RARE_DIMS = 2

QUERY = ("SELECT COUNT(*) AS n, AVG(fact.amount) AS avg_amount "
         "FROM fact "
         "JOIN mid ON fact.mid_id = mid.id "
         "JOIN dim ON mid.dim_id = dim.id "
         "WHERE dim.kind = 'rare'")


def build_db(planner: PlannerOptions) -> Database:
    db = Database(planner=planner)
    db.execute_script("""
        CREATE TABLE fact (id INTEGER PRIMARY KEY, mid_id INTEGER,
                           amount REAL);
        CREATE TABLE mid (id INTEGER PRIMARY KEY, dim_id INTEGER);
        CREATE TABLE dim (id INTEGER PRIMARY KEY, kind TEXT);
        CREATE INDEX idx_fact_mid ON fact (mid_id);
    """)
    db.insert_rows("fact", ({"id": i, "mid_id": i % MID_ROWS,
                             "amount": float(i % 97)}
                            for i in range(FACT_ROWS)))
    db.insert_rows("mid", ({"id": i, "dim_id": i % DIM_ROWS}
                           for i in range(MID_ROWS)))
    db.insert_rows("dim", ({"id": i,
                            "kind": "rare" if i < RARE_DIMS else "common"}
                           for i in range(DIM_ROWS)))
    return db


@pytest.fixture(scope="module")
def db_written():
    return build_db(PlannerOptions(enabled=False))


@pytest.fixture(scope="module")
def db_planned():
    db = build_db(PlannerOptions(strict=True))
    db.execute("ANALYZE")
    return db


@pytest.fixture(scope="module")
def db_cold_stats():
    return build_db(PlannerOptions(strict=True))


def test_e10_written_order(benchmark, db_written):
    result = benchmark(lambda: db_written.query(QUERY))
    assert result.rows[0][0] > 0


def test_e10_cost_based_planner(benchmark, db_planned):
    result = benchmark(lambda: db_planned.query(QUERY))
    assert result.rows[0][0] > 0


def test_e10_planner_without_analyze(benchmark, db_cold_stats):
    result = benchmark(lambda: db_cold_stats.query(QUERY))
    assert result.rows[0][0] > 0


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_e10_planner_reorders_and_wins(db_written, db_planned):
    """The acceptance gate: different (cheaper) join order, ≥2x faster,
    estimated vs. actual rows on every join operator."""
    assert db_written.query(QUERY).rows == db_planned.query(QUERY).rows

    planned = db_planned.explain(QUERY, analyze=True)
    assert planned.reordered
    order_note = next(note for note in planned.notes
                      if note.startswith("join order"))
    assert not order_note.startswith("join order: fact")  # dim/mid first
    kinds = {node.kind for node in planned.root.walk()}
    assert "index-join" in kinds                          # fact probed
    joins = [node for node in planned.root.walk()
             if node.kind.endswith("-join")]
    assert joins
    for node in joins:
        assert node.est_rows is not None
        assert node.actual_rows is not None

    if SMOKE:
        # CI smoke runs only prove the harness executes; a wall-clock
        # ratio at toy scale on a shared runner would just be noise.
        return
    written_s = _best_of(lambda: db_written.query(QUERY))
    planned_s = _best_of(lambda: db_planned.query(QUERY))
    speedup = written_s / planned_s
    print(f"\nE10: written={written_s * 1000:.1f}ms "
          f"planned={planned_s * 1000:.1f}ms speedup={speedup:.1f}x")
    assert speedup >= 2.0, (
        f"planner speedup {speedup:.2f}x below the 2x acceptance bar")
