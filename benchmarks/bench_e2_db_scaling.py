"""E2 — SESQL latency scaling in databank size.

Fixed knowledge base, elem_contained rows swept over ~120..2400.
Expected shape: linear in the base result size for SELECT enrichments
(schema extension over a full scan + hash combine).
"""

from __future__ import annotations

import pytest

from repro.workloads import bench_engine, scaled_databank

from conftest import scaled

SIZES = [scaled(n) for n in (120, 600, 1200, 2400)]

SESQL = """
    SELECT elem_name, landfill_name, amount FROM elem_contained
    ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)
"""

_ENGINES = {}


def _engine(rows):
    if rows not in _ENGINES:
        _ENGINES[rows] = bench_engine(scaled_databank(rows))
    return _ENGINES[rows]


@pytest.mark.parametrize("rows", SIZES)
def test_e2_schema_extension_scaling(benchmark, rows):
    engine = _engine(rows)
    result = benchmark(lambda: engine.execute(SESQL))
    assert len(result.rows) >= rows * 0.5


@pytest.mark.parametrize("rows", SIZES)
def test_e2_replace_constant_scaling(benchmark, rows):
    engine = _engine(rows)
    sesql = """
        SELECT landfill_name FROM elem_contained
        WHERE ${elem_name = HazardousWaste:cond1}
        ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)"""
    result = benchmark(lambda: engine.execute(sesql))
    assert result.columns == ["landfill_name"]
