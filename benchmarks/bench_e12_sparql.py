"""E12 — the dictionary-encoded KB engine vs the seed's naive paths.

Two workloads, each measured against a **pinned** naive baseline so the
comparison cannot drift as the production code evolves:

* **multi-pattern BGP join** — a four-pattern join over a synthetic KB
  (``?a relatedTo ?b . ?b relatedTo ?c . ?a dangerLevel ?l .
  ?c dangerLevel ?l``).  The production evaluator hash-joins id-encoded
  solution batches in planner-chosen order; the pinned baseline is the
  in-tree :class:`~repro.sparql.NaiveEvaluator` (the seed's
  solution-at-a-time interpreter).  Gate: **≥5x**, asserted at smoke
  scale too (the ratio is scale-robust, unlike absolute times).
* **bulk load** — load a parsed graph into a fresh store, the shape of
  every effective-KB build and ``copy``/``union``/``update`` on the
  platform.  The production path shares the source's term dictionary
  and moves raw id structures under one write-lock acquisition with
  one generation bump; the pinned baseline (``_SeedTripleStore`` below,
  a faithful replica of the seed's hot path — ``update`` *was*
  ``add_all(other.triples())``) materializes every triple and re-hashes
  full terms into its indexes, re-entering the lock and bumping the
  generation once per triple.  Gate: **≥3x**.  The raw
  list-of-triples ``add_all`` ingest is also measured as a series
  (batched interning beats per-triple adds by ~2.3x, ungated).

Gate timings run best-of-N with the cyclic GC paused (symmetrically for
both sides): generational collections triggered by the benchmark
process's own object graph would otherwise add identical absolute
noise to both paths and compress the measured ratio.
"""

from __future__ import annotations

import gc
import itertools
import time

import pytest

from conftest import scaled
from repro.rdf import TripleStore
from repro.rwlock import RWLock
from repro.smartground import synthetic_kb
from repro.sparql import SparqlEngine

TRIPLES = scaled(50_000, floor=5_000)
LOAD_TRIPLES = scaled(20_000, floor=5_000)

BGP_QUERY = """PREFIX smg: <http://smartground.eu/ns#>
SELECT ?a ?c WHERE {
    ?a smg:relatedTo ?b .
    ?b smg:relatedTo ?c .
    ?a smg:dangerLevel ?l .
    ?c smg:dangerLevel ?l }"""


# -- pinned naive bulk-load baseline -----------------------------------------


class _SeedTripleStore:
    """The seed store's mutation path, pinned for the E12 baseline.

    Term-keyed SPO/POS/OSP dicts; ``add_all`` delegates to ``add`` per
    triple, re-entering the write lock and bumping the generation N
    times per logical batch — exactly the shape the batched loader
    replaced.
    """

    def __init__(self) -> None:
        self._generations = itertools.count(1)
        self.generation = next(self._generations)
        self.rwlock = RWLock()
        self._spo = {}
        self._pos = {}
        self._osp = {}
        self._size = 0

    def add(self, triple) -> bool:
        s, p, o = triple
        with self.rwlock.write_locked():
            objects = self._spo.setdefault(s, {}).setdefault(p, set())
            if o in objects:
                return False
            objects.add(o)
            self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
            self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
            self._size += 1
            self.generation = next(self._generations)
            return True

    def add_all(self, triples) -> int:
        with self.rwlock.write_locked():
            count = 0
            for triple in triples:
                if self.add(triple):
                    count += 1
            return count


# -- fixtures ----------------------------------------------------------------


@pytest.fixture(scope="module")
def kb():
    return synthetic_kb(TRIPLES)


@pytest.fixture(scope="module")
def load_source():
    return synthetic_kb(LOAD_TRIPLES)


@pytest.fixture(scope="module")
def load_triples(load_source):
    return list(load_source.triples())


# -- measured series ---------------------------------------------------------


def test_e12_bgp_join_planned(benchmark, kb):
    engine = SparqlEngine(kb)
    results = benchmark(lambda: engine.query(BGP_QUERY))
    assert len(results) > 0


def test_e12_bgp_join_naive(benchmark, kb):
    engine = SparqlEngine(kb, evaluator="naive")
    results = benchmark(lambda: engine.query(BGP_QUERY))
    assert len(results) > 0


def test_e12_bulk_load_batched(benchmark, load_triples):
    store = benchmark(lambda: _loaded(TripleStore(), load_triples))
    assert len(store) == len(load_triples)


def test_e12_bulk_load_naive(benchmark, load_triples):
    store = benchmark(lambda: _loaded(_SeedTripleStore(), load_triples))
    assert store._size == len(load_triples)


def _loaded(store, triples):
    store.add_all(triples)
    return store


# -- acceptance gates --------------------------------------------------------


def _best_of(fn, repeats: int = 5) -> float:
    """Best wall-clock of N runs with the cyclic GC paused (see module
    docstring); the pause is symmetric across compared measurements."""
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
            gc.enable()
            gc.collect()
            gc.disable()
    finally:
        gc.enable()
    return best


def _multiset(results):
    counts = {}
    for row in results.tuples():
        key = tuple(term.n3() if term is not None else None for term in row)
        counts[key] = counts.get(key, 0) + 1
    return counts


def test_e12_set_at_a_time_evaluator_wins(kb):
    """The acceptance gate: identical solutions, ≥5x faster than the
    pinned naive interpreter on the multi-pattern BGP join."""
    planned = SparqlEngine(kb)
    naive = SparqlEngine(kb, evaluator="naive")
    fast = planned.query(BGP_QUERY)
    slow = naive.query(BGP_QUERY)
    assert _multiset(fast) == _multiset(slow)

    planned_s = _best_of(lambda: planned.query(BGP_QUERY), repeats=3)
    naive_s = _best_of(lambda: naive.query(BGP_QUERY), repeats=3)
    speedup = naive_s / planned_s
    print(f"\nE12 bgp-join: naive={naive_s * 1000:.1f}ms "
          f"planned={planned_s * 1000:.1f}ms speedup={speedup:.1f}x "
          f"({TRIPLES} triples, {len(fast)} solutions)")
    assert speedup >= 5.0, (
        f"set-at-a-time speedup {speedup:.2f}x below the 5x bar")


def test_e12_batched_bulk_load_wins(load_source, load_triples):
    """The acceptance gate: same store contents, one generation bump,
    ≥3x faster than the seed's per-triple bulk-load path."""
    def batched_load():
        target = TripleStore(dictionary=load_source.dictionary)
        target.update(load_source)
        return target

    batched = batched_load()
    assert len(batched) == len(load_source)
    assert set(batched.triples()) == set(load_triples)
    naive = _SeedTripleStore()
    assert naive.add_all(load_source.triples()) == len(batched)
    # One write-lock acquisition, one generation bump per logical batch:
    # the naive path stamps once per triple, so extraction-cache keys
    # churn N times for one logical load.
    stamp = batched.generation
    assert batched.update(load_source) == 0     # idempotent re-load
    assert batched.generation == stamp
    fresh = TripleStore()
    generation_before = fresh.generation
    assert fresh.add_all(load_triples) == len(load_triples)
    assert fresh.generation != generation_before

    batched_s = _best_of(batched_load)
    naive_s = _best_of(
        lambda: _SeedTripleStore().add_all(load_source.triples()))
    speedup = naive_s / batched_s
    print(f"\nE12 bulk-load: naive={naive_s * 1000:.1f}ms "
          f"batched={batched_s * 1000:.1f}ms speedup={speedup:.1f}x "
          f"({len(load_triples)} triples)")
    assert speedup >= 3.0, (
        f"bulk-load speedup {speedup:.2f}x below the 3x bar")
