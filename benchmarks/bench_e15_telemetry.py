"""E15 — telemetry overhead on the hot prepared-execution path.

The telemetry subsystem promises two things about cost:

* **disabled is free** — every instrumented layer guards its hooks
  with one ``telemetry is None`` test, so a session built with
  telemetry off (the default) must run the E9 prepared workload
  within **1%** (plus a per-call noise floor) of a baseline session;
* **enabled is cheap** — with the full bundle attached (metrics,
  tracer, slow-query log) the same workload must stay within **5%**
  (plus a per-call floor that absorbs timer noise on sub-millisecond
  queries).

Shared-runner timing drifts by double-digit percentages round to
round, so each gate uses the **minimum paired delta**: every round
times baseline and candidate back-to-back (same drift regime), and the
candidate passes if *any* round shows it within the budget of its
paired baseline.  Genuine overhead slows every round and still fails;
one-sided scheduler stalls cannot fake a regression.  The measured
series (per-call seconds for baseline / off / on) lands in
``benchmark.extra_info`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.smartground import synthetic_kb
from repro.telemetry import Telemetry, TelemetryOptions
from repro.workloads import bench_engine

from conftest import SMOKE, scaled

KB_TRIPLES = scaled(20_000)
CALLS = 50 if SMOKE else 300
ROUNDS = 7

#: Absolute per-call slack added to each relative gate: the E9 query
#: runs in well under a millisecond, where timer + allocator jitter is
#: a real fraction of the signal.
ON_FLOOR_S = 60e-6
OFF_FLOOR_S = 20e-6

ON_GATE = 0.05
OFF_GATE = 0.01

SESQL = """
    SELECT elem_name, amount FROM elem_contained WHERE amount > 5.0
    ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)
           BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)
"""


@pytest.fixture(scope="module")
def kb_20k():
    return synthetic_kb(KB_TRIPLES)


def _prepared(databank_150, kb_20k, telemetry=None):
    session = repro.connect(
        bench_engine(databank_150, kb_20k, join_strategy="direct"),
        telemetry=telemetry)
    prepared = session.prepare(SESQL)
    prepared.execute()          # warm plan + extraction caches
    return session, prepared


def _run(prepared) -> float:
    started = time.perf_counter()
    for _ in range(CALLS):
        prepared.execute()
    return (time.perf_counter() - started) / CALLS


def test_e15_telemetry_overhead(benchmark, databank_150, kb_20k):
    _, baseline = _prepared(databank_150, kb_20k)
    off_session, disabled = _prepared(
        databank_150, kb_20k,
        telemetry=TelemetryOptions(enabled=False))
    # Bounded tracer ring + no slow-log writes: steady-state cost, not
    # an ever-growing trace history.
    on_session, enabled = _prepared(
        databank_150, kb_20k,
        telemetry=Telemetry(TelemetryOptions(
            trace_retention=32, slow_query_threshold_s=None)))
    assert on_session.telemetry is not None
    assert off_session.telemetry is None

    rounds = []                 # (base_i, off_i, on_i) per round
    for _ in range(ROUNDS):     # back-to-back: drift hits all three
        rounds.append((_run(baseline), _run(disabled), _run(enabled)))
    base = min(b for b, _, _ in rounds)
    off_delta = min(o - b for b, o, _ in rounds)
    on_delta = min(n - b for b, _, n in rounds)

    benchmark(lambda: None)
    benchmark.extra_info["calls"] = CALLS * ROUNDS
    benchmark.extra_info["baseline_percall_s"] = base
    benchmark.extra_info["off_percall_s"] = min(o for _, o, _ in rounds)
    benchmark.extra_info["on_percall_s"] = min(n for _, _, n in rounds)
    benchmark.extra_info["on_delta_s"] = on_delta
    benchmark.extra_info["off_delta_s"] = off_delta

    assert off_delta <= max(OFF_GATE * base, OFF_FLOOR_S), (
        f"telemetry-disabled path costs +{off_delta * 1e6:.1f}µs over "
        f"baseline ({base * 1e6:.1f}µs) in its best paired round; the "
        f"disabled hooks must stay within {OFF_GATE:.0%}")
    assert on_delta <= max(ON_GATE * base, ON_FLOOR_S), (
        f"telemetry-enabled path costs +{on_delta * 1e6:.1f}µs over "
        f"baseline ({base * 1e6:.1f}µs) in its best paired round; the "
        f"instrumented path must stay within {ON_GATE:.0%}")

    # The enabled run really did trace: one root per call, ring bounded.
    tracer = on_session.telemetry.tracer
    assert len(tracer.traces()) == 32
    metrics = on_session.telemetry.metrics.to_dict()
    assert metrics["repro_query_seconds"]["series"][0]["count"] \
        >= CALLS * ROUNDS


def test_e15_span_lifecycle_cost(benchmark):
    """Micro-series: the cost of one traced span open/close pair."""
    telemetry = Telemetry(TelemetryOptions(trace_retention=16))
    tracer = telemetry.tracer

    def one_root():
        with tracer.query_span("bench", statement="x"):
            with tracer.span("child", db="main"):
                pass

    benchmark(one_root)
    assert 1 <= len(tracer.traces()) <= 16
