"""E9 — session-layer speedup for repeated SESQL execution.

Three ways to run the same enriched query N times against a 20k-triple
knowledge base (the regime where parse + SPARQL extraction are a real
share of the per-call cost):

* **cold**: a fresh engine per call — what ``CrossePlatform.run_sesql``
  used to do for every request;
* **engine**: one engine reused, but ``execute`` re-parses and re-runs
  every SPARQL extraction per call;
* **prepared**: one session, one ``prepare()`` — the plan cache skips
  the SQP and the extraction cache (keyed on the KB's mutation
  generation) skips unchanged SPARQL.

Expected shape: prepared < engine ≈ cold, with the gap growing with KB
size and enrichment count, since parse + extraction are exactly the
per-call costs the session API amortises.  The ``direct`` join strategy
is used so the (identical) combine step does not drown the signal.
"""

from __future__ import annotations

import pytest

import repro
from repro.smartground import synthetic_kb
from repro.workloads import bench_engine

from conftest import scaled

KB_TRIPLES = scaled(20_000)

SESQL = """
    SELECT elem_name, amount FROM elem_contained WHERE amount > 5.0
    ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)
           BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)
"""


@pytest.fixture(scope="module")
def kb_20k():
    return synthetic_kb(KB_TRIPLES)


@pytest.fixture(scope="module")
def engine_e9(databank_150, kb_20k):
    return bench_engine(databank_150, kb_20k, join_strategy="direct")


@pytest.fixture(scope="module")
def session_e9(databank_150, kb_20k):
    return repro.connect(
        bench_engine(databank_150, kb_20k, join_strategy="direct"))


def test_e9_cold_engine_per_call(benchmark, databank_150, kb_20k):
    # The KB is shared (as the platform's statement store would be) so
    # the measured cost is engine construction + parse + extractions.
    result = benchmark(lambda: bench_engine(
        databank_150, kb_20k, join_strategy="direct").execute(SESQL))
    assert result.columns


def test_e9_reused_engine_no_caches(benchmark, engine_e9):
    result = benchmark(lambda: engine_e9.execute(SESQL))
    assert result.columns


def test_e9_session_prepared_cached(benchmark, session_e9):
    prepared = session_e9.prepare(SESQL)
    prepared.execute()  # warm the extraction cache once
    result = benchmark(prepared.execute)
    assert result.columns
    assert result.cache_hits == 2       # both extractions memoized
    assert result.timings["parse"] == 0.0


def test_e9_session_adhoc_still_cached(benchmark, session_e9):
    session_e9.execute(SESQL)  # warm plan + extraction caches
    result = benchmark(lambda: session_e9.execute(SESQL))
    assert result.cache_hits == 2
