"""E4 — triple-store index ablation.

The same pattern workload on a fully indexed store (SPO+POS+OSP) and on
the SPO-only ablation.  Expected shape: predicate-bound and object-bound
lookups collapse to full scans without POS/OSP, costing orders of
magnitude at 20k triples; subject-bound lookups are unaffected.
"""

from __future__ import annotations

import pytest

from repro.rdf import SMG, TripleStore
from repro.smartground import synthetic_kb

from conftest import scaled

TRIPLES = scaled(20_000)

_STORES = {}


def _store(indexing):
    if indexing not in _STORES:
        full = synthetic_kb(TRIPLES)
        if indexing == "full":
            _STORES[indexing] = full
        else:
            reduced = TripleStore(indexing="spo")
            reduced.add_all(full.triples())
            _STORES[indexing] = reduced
    return _STORES[indexing]


@pytest.mark.parametrize("indexing", ["full", "spo"])
def test_e4_predicate_bound_lookup(benchmark, indexing):
    store = _store(indexing)
    count = benchmark(lambda: store.count(None, SMG.dangerLevel, None))
    assert count > 0


@pytest.mark.parametrize("indexing", ["full", "spo"])
def test_e4_object_bound_lookup(benchmark, indexing):
    store = _store(indexing)
    benchmark(lambda: store.count(None, None, SMG.Mercury))


@pytest.mark.parametrize("indexing", ["full", "spo"])
def test_e4_subject_bound_lookup(benchmark, indexing):
    store = _store(indexing)
    count = benchmark(lambda: store.count(SMG.Mercury, None, None))
    assert count > 0
