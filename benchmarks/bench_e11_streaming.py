"""E11 — the streaming service layer: time-to-first-row and concurrent
throughput.

Two workloads over a ~100k-row databank:

* **time-to-first-row**: ``Session.stream`` over a ``LIMIT 10`` query
  must produce its first row without materializing the input — the
  acceptance gate requires ≥5x lower latency than the materializing
  ``Session.query`` over the same (unlimited) statement;
* **concurrent throughput**: 8 threads running a read mix through a
  :class:`~repro.api.SessionPool` must return byte-identical results to
  the serial baseline (the reader-writer lock keeps a concurrent DML
  writer statement-atomic), measured in queries/second against the
  1-thread run.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from conftest import SMOKE, scaled
from repro.api import SessionPool
from repro.relational import Database

ROWS = scaled(100_000, floor=4_000)
THREADS = 8
QUERIES_PER_THREAD = 8 if SMOKE else 24

#: The acceptance query: LIMIT 10 over the full table.
LIMITED = "SELECT id, site, value FROM readings LIMIT 10"
#: The materializing strawman: same rows visited, no early exit.
UNLIMITED = "SELECT id, site, value FROM readings"

MIX = [
    "SELECT site, COUNT(*) AS n FROM readings GROUP BY site ORDER BY site",
    "SELECT id, value FROM readings WHERE value > 95 ORDER BY id LIMIT 50",
    "SELECT id, site FROM readings LIMIT 25 OFFSET 1000",
    "SELECT DISTINCT site FROM readings ORDER BY site",
]


def build_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE readings (id INTEGER PRIMARY KEY, "
               "site TEXT, value INTEGER)")
    db.insert_rows("readings", ({"id": i, "site": f"s{i % 13}",
                                 "value": i * 7 % 101}
                                for i in range(ROWS)))
    return db


@pytest.fixture(scope="module")
def db():
    return build_db()


def time_to_first_row(session, sql: str) -> float:
    started = time.perf_counter()
    cursor = session.stream(sql)
    first = cursor.fetchone()
    elapsed = time.perf_counter() - started
    assert first is not None
    cursor.close()
    return elapsed


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_e11_stream_first_row(benchmark, db):
    session = repro.connect(db)
    result = benchmark(lambda: session.stream(LIMITED).fetchall())
    assert len(result) == 10


def test_e11_materialized_query(benchmark, db):
    session = repro.connect(db)
    result = benchmark(lambda: session.query(UNLIMITED))
    assert len(result.rows) == ROWS


def test_e11_time_to_first_row_gate(db):
    """Acceptance: streaming a LIMIT 10 query beats materializing the
    ≥100k-row result by ≥5x on time-to-first-row."""
    session = repro.connect(db)
    streamed = session.stream(LIMITED).fetchall()
    assert streamed == session.query(LIMITED).rows  # same answer

    ttfr = _best_of(lambda: time_to_first_row(session, LIMITED))
    full = _best_of(lambda: session.query(UNLIMITED))
    ratio = full / ttfr
    print(f"\nE11: time-to-first-row={ttfr * 1000:.2f}ms "
          f"full-materialize={full * 1000:.1f}ms ratio={ratio:.1f}x")
    if SMOKE:
        # CI smoke proves the harness runs; wall-clock ratios at toy
        # scale on shared runners are noise.
        return
    assert ratio >= 5.0, (
        f"streaming first-row speedup {ratio:.2f}x below the 5x bar")


def _run_mix(session) -> list:
    return [session.stream(sql).fetchall() for sql in MIX]


def test_e11_concurrent_throughput(db):
    """8 pooled reader threads (with a concurrent writer) must match
    the serial baseline byte for byte."""
    with repro.connect(db) as session:
        serial_started = time.perf_counter()
        for _ in range(QUERIES_PER_THREAD):
            serial = _run_mix(session)
        serial_s = time.perf_counter() - serial_started

    pool = SessionPool(db, capacity=THREADS)
    results: dict[int, list] = {}
    errors: list[Exception] = []

    def reader(worker: int):
        try:
            local = []
            for _ in range(QUERIES_PER_THREAD):
                with pool.checkout() as pooled:
                    local.append(_run_mix(pooled))
            results[worker] = local
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def writer():
        for i in range(50):
            db.execute(
                "UPDATE readings SET value = value WHERE id = "
                f"{i % ROWS}")

    threads = [threading.Thread(target=reader, args=(worker,))
               for worker in range(THREADS)]
    threads.append(threading.Thread(target=writer))
    concurrent_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    concurrent_s = time.perf_counter() - concurrent_started
    pool.close()

    assert not errors
    for worker in range(THREADS):
        for round_results in results[worker]:
            assert round_results == serial, (
                f"worker {worker} diverged from the serial baseline")

    total_queries = THREADS * QUERIES_PER_THREAD * len(MIX)
    print(f"\nE11: serial={QUERIES_PER_THREAD * len(MIX) / serial_s:.0f} "
          f"q/s, {THREADS} threads={total_queries / concurrent_s:.0f} q/s "
          f"(pool peak {pool.stats()['peak_in_use']})")
