"""E6 — JoinManager ablation: paper-faithful tempdb vs direct combine.

The Fig. 6 architecture materialises both partials in the temporary
support database and issues a final SQL query; the `direct` strategy
hash-joins in Python.  Expected shape: direct wins by a constant factor
(no materialisation, no final-query planning), which quantifies the
price of the paper's pluggable-architecture choice.
"""

from __future__ import annotations

import pytest

from repro.core import JoinManager, ResourceMapping
from repro.core.ast import BoolSchemaExtension, SchemaExtension
from repro.core.sqm import Extraction
from repro.rdf import SMG, Literal
from repro.relational import ResultSet

from conftest import scaled

ROWS = scaled(5_000)
DISTINCT_SUBJECTS = scaled(200)


def _base() -> ResultSet:
    rows = [(f"mat{i % DISTINCT_SUBJECTS:04d}", float(i))
            for i in range(ROWS)]
    return ResultSet(["elem_name", "amount"], rows)


def _pairs_extraction() -> Extraction:
    pairs = [(SMG[f"mat{i:04d}"], Literal(f"level{i % 4}"))
             for i in range(DISTINCT_SUBJECTS)]
    return Extraction("", pairs=pairs)


def _subjects_extraction() -> Extraction:
    subjects = {SMG[f"mat{i:04d}"] for i in range(0, DISTINCT_SUBJECTS, 2)}
    return Extraction("", subjects=subjects)


@pytest.mark.parametrize("strategy", ["tempdb", "direct"])
def test_e6_extension_combine(benchmark, strategy):
    manager = JoinManager(ResourceMapping(), strategy)
    base = _base()
    extraction = _pairs_extraction()
    enrichment = SchemaExtension("elem_name", "dangerLevel")
    outcome = benchmark(
        lambda: manager.combine(base, enrichment, extraction))
    assert len(outcome.result.rows) == ROWS


@pytest.mark.parametrize("strategy", ["tempdb", "direct"])
def test_e6_boolean_combine(benchmark, strategy):
    manager = JoinManager(ResourceMapping(), strategy)
    base = _base()
    extraction = _subjects_extraction()
    enrichment = BoolSchemaExtension("elem_name", "isA", "HazardousWaste")
    outcome = benchmark(
        lambda: manager.combine(base, enrichment, extraction))
    assert len(outcome.result.rows) == ROWS
