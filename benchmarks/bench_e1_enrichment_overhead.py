"""E1 — per-strategy enrichment overhead vs plain SQL.

For each of the six paper examples (4.1-4.6) this measures the full
SESQL pipeline and its plain-SQL twin on the same databank.  The
expected shape: every enrichment costs a bounded factor over its SQL
baseline, dominated by SPARQL extraction plus the combine join; the
WHERE strategies (4.5/4.6) pay for the rewritten correlated predicate.
"""

from __future__ import annotations

import pytest

from repro.smartground import PAPER_EXAMPLES, SQL_BASELINES

_QUERIES = {query.name: query for query in PAPER_EXAMPLES}

#: ex4.6 cross-joins elem_contained with itself; it runs on the small DB.
_SMALL = {"ex4.6-replace-variable"}


def _fixture_for(name):
    return "engine_150" if name in _SMALL else "engine_1200"


@pytest.mark.parametrize("name", list(_QUERIES))
def test_e1_sesql(benchmark, name, request):
    engine = request.getfixturevalue(_fixture_for(name))
    sesql = _QUERIES[name].sesql
    result = benchmark(lambda: engine.execute(sesql))
    assert result.columns


@pytest.mark.parametrize("name", list(_QUERIES))
def test_e1_sql_baseline(benchmark, name, request):
    engine = request.getfixturevalue(_fixture_for(name))
    sql = SQL_BASELINES[name]
    result = benchmark(lambda: engine.databank.query(sql))
    assert result.columns
