"""E3 — SESQL latency scaling in knowledge-base size.

Fixed databank (~600 rows), synthetic KB swept over 1k..50k triples.
Expected shape: flat-ish for property extraction (the POS index touches
only matching triples), linear for the full pipeline as the extraction
result grows with the dangerLevel share of the KB.
"""

from __future__ import annotations

import pytest

from repro.smartground import synthetic_kb
from repro.workloads import bench_engine, scaled_databank

from conftest import scaled

SIZES = [scaled(n) for n in (1_000, 5_000, 20_000, 50_000)]

SESQL = """
    SELECT elem_name, landfill_name FROM elem_contained
    ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)
"""

_KBS = {}
_DB = None


def _engine(triples):
    global _DB
    if _DB is None:
        _DB = scaled_databank(600)
    if triples not in _KBS:
        _KBS[triples] = synthetic_kb(triples)
    return bench_engine(_DB, _KBS[triples])


@pytest.mark.parametrize("triples", SIZES)
def test_e3_pipeline_vs_kb_size(benchmark, triples):
    engine = _engine(triples)
    result = benchmark(lambda: engine.execute(SESQL))
    assert result.columns[-1] == "dangerLevel"


@pytest.mark.parametrize("triples", SIZES)
def test_e3_sparql_extraction_only(benchmark, triples):
    engine = _engine(triples)
    kb = engine.knowledge_base
    result = benchmark(
        lambda: engine.sqm.pairs_for(kb, "dangerLevel"))
    assert result.pairs
