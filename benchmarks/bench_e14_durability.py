"""E14 — durability: WAL overhead on DML and crash-recovery time.

Two gated properties of the durability subsystem (plus measured
series):

* **WAL overhead** — the same bulk DML workload runs bare and under a
  ``fsync="batch"`` WAL.  Group commit amortizes the fsyncs (one per
  64 records / 256 KiB), so journaling must cost **≤1.3x** the bare
  run.  Measured as best-of-3 on both sides to shave scheduler noise.
* **Recovery time** — a 50k-row / 50k-triple durable workload (scaled
  in smoke mode) is closed and recovered from snapshot + WAL tail; the
  cold restart must finish inside a generous wall-clock budget and
  reproduce the exact row/triple counts and generations.
"""

from __future__ import annotations

import time

from conftest import scaled
from repro.durability import DurabilityManager, DurabilityOptions
from repro.rdf import IRI, Literal, TripleStore
from repro.relational import Database

ROWS = scaled(50_000, floor=1_000)
TRIPLES = scaled(50_000, floor=1_000)
BATCH = 500

#: Wall-clock budget for the full cold restart (snapshot load + WAL
#: tail replay + generation restore) at either scale.
RECOVERY_BUDGET_S = 30.0
WAL_OVERHEAD_GATE = 1.3


def _dml_workload(db: Database) -> None:
    db.execute("CREATE TABLE measurements ("
               "id INTEGER PRIMARY KEY, site TEXT, value REAL)")
    for start in range(0, ROWS, BATCH):
        db.insert_rows("measurements", (
            {"id": i, "site": f"site{i % 97:02d}",
             "value": float(i % 1009)}
            for i in range(start, min(start + BATCH, ROWS))))
    db.execute("UPDATE measurements SET value = value + 1 "
               "WHERE id % 10 = 0")
    db.execute("DELETE FROM measurements WHERE id % 100 = 99")


def _kb_workload(store: TripleStore) -> None:
    level = IRI("urn:smg:level")
    store.add_all((IRI(f"urn:smg:elem{i}"), level,
                   Literal(float(i % 13)))
                  for i in range(TRIPLES))


def _bare_run() -> float:
    started = time.perf_counter()
    _dml_workload(Database())
    return time.perf_counter() - started


def _durable_run(directory: str) -> float:
    manager = DurabilityManager(
        DurabilityOptions(directory=directory, fsync="batch"))
    db = Database()
    manager.attach_database(db, name="main")
    manager.recover()
    started = time.perf_counter()
    _dml_workload(db)
    manager.sync()
    elapsed = time.perf_counter() - started
    manager.close()
    return elapsed


def test_e14_wal_overhead_on_dml(tmp_path, benchmark):
    bare = min(_bare_run() for _ in range(3))
    durable = min(
        _durable_run(str(tmp_path / f"run{attempt}"))
        for attempt in range(3))
    benchmark(lambda: None)  # series recorded via benchmark.extra_info
    benchmark.extra_info["bare_s"] = bare
    benchmark.extra_info["durable_s"] = durable
    benchmark.extra_info["overhead"] = durable / bare
    assert durable <= bare * WAL_OVERHEAD_GATE, (
        f"WAL overhead {durable / bare:.2f}x exceeds "
        f"{WAL_OVERHEAD_GATE}x (bare {bare:.3f}s, durable {durable:.3f}s)")


def test_e14_recovery_time(tmp_path, benchmark):
    directory = str(tmp_path / "dur")
    manager = DurabilityManager(
        DurabilityOptions(directory=directory, fsync="batch"))
    db, store = Database(), TripleStore()
    manager.attach_database(db, name="main")
    manager.attach_store(store, name="kb")
    manager.recover()
    _dml_workload(db)
    manager.snapshot()          # half the history compacted ...
    _kb_workload(store)         # ... half replayed from the WAL tail
    expected_rows = db.query(
        "SELECT COUNT(*) FROM measurements").rows[0][0]
    expected = (expected_rows, len(store), db.generation,
                store.generation)
    manager.close()

    started = time.perf_counter()
    manager2 = DurabilityManager(
        DurabilityOptions(directory=directory, fsync="batch"))
    db2, store2 = Database(), TripleStore()
    manager2.attach_database(db2, name="main")
    manager2.attach_store(store2, name="kb")
    report = manager2.recover()
    elapsed = time.perf_counter() - started

    got_rows = db2.query("SELECT COUNT(*) FROM measurements").rows[0][0]
    assert (got_rows, len(store2), db2.generation, store2.generation) \
        == expected
    assert report.replay_errors == 0
    manager2.close()
    benchmark(lambda: None)
    benchmark.extra_info["recovery_s"] = elapsed
    benchmark.extra_info["rows"] = expected_rows
    benchmark.extra_info["triples"] = len(store2)
    assert elapsed <= RECOVERY_BUDGET_S, (
        f"recovery took {elapsed:.2f}s for {expected_rows} rows + "
        f"{len(store2)} triples (budget {RECOVERY_BUDGET_S}s)")
