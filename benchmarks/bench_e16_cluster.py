"""E16 — multi-process cluster scaling for pooled read-heavy load.

The scarce resources in a sharded deployment are **per-shard session
pool slots** and **worker processes**, not this machine's core count:
every statement pays a fixed simulated source latency (a GIL-releasing
``time.sleep`` inside the shard's databank, the same technique E13 uses
for network hops), so throughput is bounded by how many statements can
be *in flight* at once — ``n_workers × pool_capacity``.  That makes the
measured ratio scale-robust: it asserts identically at smoke scale and
on a single-core runner.

* **1 worker** — every user hashes to the same shard; at
  ``pool_capacity=2`` only 2 statements overlap, so the driver's
  12 threads queue on the pool.
* **4 workers** — the ring spreads users over 4 processes × 2 slots =
  8 overlapping statements.  Ideal ratio 4x; gate: **≥2.5x** (room for
  spawn jitter and coordinator overhead on shared runners).

Correctness rides along: the scatter-gathered ``/api/v1/cluster/query``
answer must be byte-identical to the same query run serially on a
single-process platform over identically seeded data.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from conftest import scaled
from repro.cluster import start_cluster
from repro.cluster.testing import seed_readings
from repro.crosse.platform import CrossePlatform
from repro.relational import Database

#: Simulated per-statement source latency (dominates row handling).
LATENCY_S = 0.03
POOL_CAPACITY = 2
DRIVER_THREADS = 12
SEED_ROWS = 40
N_USERS = 16
#: Routed read requests per throughput phase.
REQUESTS = scaled(240, floor=48)

QUERY = ("SELECT sensor, COUNT(*) AS n, SUM(value) AS total "
         "FROM readings GROUP BY sensor ORDER BY sensor")

USERS = [f"user-{index:02d}" for index in range(N_USERS)]


def _start(n_workers: int):
    cluster = start_cluster(
        n_workers, "repro.cluster.testing:build_platform_shard",
        builder_args={"seed_rows": SEED_ROWS, "latency_s": LATENCY_S},
        pool_capacity=POOL_CAPACITY)
    for user in USERS:
        response = cluster.request("POST", "/api/v1/users",
                                   {"username": user})
        assert response.status == 200
    return cluster


def _drive(cluster, requests: int) -> float:
    """Wall-clock of *requests* routed reads from 12 driver threads."""

    def one(index: int) -> None:
        response = cluster.request(
            "POST", "/api/v1/query",
            {"username": USERS[index % N_USERS], "query": QUERY})
        assert response.status == 200, response.payload

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=DRIVER_THREADS) as pool:
        for future in [pool.submit(one, index)
                       for index in range(requests)]:
            future.result()
    return time.perf_counter() - started


def _serial_reference():
    """The single-process answer the cluster must reproduce exactly."""
    databank = Database()
    seed_readings(databank, SEED_ROWS)
    platform = CrossePlatform(databank)
    for user in USERS:
        platform.register_user(user)
    return platform.connect().as_user(USERS[0]).query(QUERY)


# -- measured series ---------------------------------------------------------


def test_e16_single_worker_throughput(benchmark):
    with _start(1) as cluster:
        benchmark(lambda: _drive(cluster, scaled(48, floor=24)))


def test_e16_four_worker_throughput(benchmark):
    with _start(4) as cluster:
        benchmark(lambda: _drive(cluster, scaled(48, floor=24)))


# -- acceptance gates --------------------------------------------------------


def test_e16_cluster_throughput_scales():
    """The acceptance gate: ≥2.5x read-heavy throughput from 1 → 4
    worker processes (pool slots × processes bound the overlap)."""
    with _start(1) as single:
        single_s = _drive(single, REQUESTS)
    with _start(4) as quad:
        quad_s = _drive(quad, REQUESTS)
    single_qps = REQUESTS / single_s
    quad_qps = REQUESTS / quad_s
    speedup = quad_qps / single_qps
    print(f"\nE16 cluster scaling: 1 worker={single_qps:.0f} q/s "
          f"4 workers={quad_qps:.0f} q/s speedup={speedup:.1f}x "
          f"({REQUESTS} requests, {LATENCY_S * 1000:.0f}ms statement "
          f"latency, pool={POOL_CAPACITY}/shard)")
    assert speedup >= 2.5, (
        f"cluster speedup {speedup:.2f}x below the 2.5x bar "
        f"(1w: {single_s:.2f}s, 4w: {quad_s:.2f}s)")


def test_e16_scatter_gather_matches_serial():
    """Correctness gate: the scattered per-user answers are
    byte-identical to the serial single-process run."""
    reference = _serial_reference()
    with _start(4) as cluster:
        response = cluster.request("POST", "/api/v1/cluster/query",
                                   {"query": QUERY})
        assert response.status == 200
        results = response.payload["results"]
        assert sorted(results) == USERS
        for entry in results.values():
            assert entry["columns"] == reference.columns
            assert [tuple(row) for row in entry["rows"]] \
                == reference.rows
