"""E17 — columnar storage and vectorized batch execution.

The same 100k-row table is queried through both executors: the default
vectorized engine (columnar scans, kernel filters, batch aggregation)
and a ``Database(vectorized=False)`` twin that forces the original
row-at-a-time path over identical data.  Three shapes are measured:

* **scan**: ``SELECT * FROM events`` — pure column-to-row throughput;
* **filtered scan**: one comparison kernel producing a selection mask;
* **group by**: ``GROUP BY`` with COUNT/SUM/AVG folded column-wise.

The assertion test is the acceptance gate: identical results on both
paths, ``explain()`` marking the batched operators, and a ≥5x speedup
on the scan and GROUP BY shapes at full scale (smoke runs assert only
direction — vectorized no slower — since toy-scale ratios are noise).
"""

from __future__ import annotations

import time

import pytest

from conftest import SMOKE, scaled
from repro.relational import Database

ROWS = scaled(100_000, floor=5_000)
GROUPS = 64

SCAN = "SELECT * FROM events"
FILTERED = "SELECT * FROM events WHERE amount > 48.0"
GROUP_BY = ("SELECT kind, COUNT(*) AS n, SUM(amount) AS total, "
            "AVG(amount) AS mean FROM events GROUP BY kind")


def build_db(vectorized: bool) -> Database:
    db = Database(vectorized=vectorized)
    db.execute("CREATE TABLE events (id INTEGER, kind TEXT, "
               "amount REAL, flagged BOOLEAN)")
    db.insert_rows("events", ({"id": i, "kind": f"k{i % GROUPS}",
                               "amount": float(i % 97),
                               "flagged": i % 7 == 0}
                              for i in range(ROWS)))
    return db


@pytest.fixture(scope="module")
def db_vector():
    return build_db(vectorized=True)


@pytest.fixture(scope="module")
def db_row():
    return build_db(vectorized=False)


def test_e17_scan_vectorized(benchmark, db_vector):
    result = benchmark(lambda: db_vector.query(SCAN))
    assert len(result.rows) == ROWS


def test_e17_scan_row_path(benchmark, db_row):
    result = benchmark(lambda: db_row.query(SCAN))
    assert len(result.rows) == ROWS


def test_e17_filter_vectorized(benchmark, db_vector):
    result = benchmark(lambda: db_vector.query(FILTERED))
    assert result.rows


def test_e17_filter_row_path(benchmark, db_row):
    result = benchmark(lambda: db_row.query(FILTERED))
    assert result.rows


def test_e17_group_by_vectorized(benchmark, db_vector):
    result = benchmark(lambda: db_vector.query(GROUP_BY))
    assert len(result.rows) == GROUPS


def test_e17_group_by_row_path(benchmark, db_row):
    result = benchmark(lambda: db_row.query(GROUP_BY))
    assert len(result.rows) == GROUPS


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_e17_vectorized_wins(db_vector, db_row):
    """Acceptance gate: identical rows, batched operators visible in
    the plan, ≥5x on scan and GROUP BY against the row path."""
    for query in (SCAN, FILTERED, GROUP_BY):
        assert db_vector.query(query).rows == db_row.query(query).rows

    planned = db_vector.explain(FILTERED, analyze=True)
    marks = {node.kind for node in planned.root.walk() if node.vectorized}
    assert {"scan", "filter"} <= marks
    planned = db_vector.explain(GROUP_BY, analyze=True)
    marks = {node.kind for node in planned.root.walk() if node.vectorized}
    assert {"scan", "aggregate"} <= marks
    assert any(note.startswith("vectorized:") for note in planned.notes)

    timings = {}
    for name, query in (("scan", SCAN), ("filter", FILTERED),
                        ("group-by", GROUP_BY)):
        vector_s = _best_of(lambda: db_vector.query(query))
        row_s = _best_of(lambda: db_row.query(query))
        timings[name] = (vector_s, row_s, row_s / vector_s)
    print("\nE17: " + "  ".join(
        f"{name} vec={vector_s * 1000:.1f}ms row={row_s * 1000:.1f}ms "
        f"({ratio:.1f}x)"
        for name, (vector_s, row_s, ratio) in timings.items()))

    if SMOKE:
        # Toy-scale ratios on shared CI runners are noise; just require
        # the batch path not to lose outright.
        for name, (vector_s, row_s, _ratio) in timings.items():
            assert vector_s <= row_s * 1.5, (
                f"vectorized {name} slower than row path even directionally")
        return
    for name in ("scan", "group-by"):
        ratio = timings[name][2]
        assert ratio >= 5.0, (
            f"vectorized {name} speedup {ratio:.2f}x below the 5x bar")
