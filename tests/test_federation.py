"""Federation: foreign tables, GAV mediation, REST integration."""

import pytest

from repro.crosse import CrossePlatform
from repro.federation import (CsvSource, ForeignTableError, MediationError,
                              Mediator, QuerySource, RemoteTableSource,
                              CrosseRestService, attach_foreign_table)
from repro.relational import Database
from repro.smartground import SmartGroundConfig, generate_databank


@pytest.fixture
def sources():
    italy = Database("italy")
    france = Database("france")
    for db, rows in ((italy, [("lf_it_1", "Torino", 12.0),
                              ("lf_it_2", "Milano", 7.5)]),
                     (france, [("lf_fr_1", "Lyon", 9.0),
                               ("lf_it_2", "Milano", 7.5)])):
        db.execute(
            "CREATE TABLE landfill (name TEXT, city TEXT, size REAL)")
        for name, city, size in rows:
            db.execute(f"INSERT INTO landfill VALUES "
                       f"('{name}', '{city}', {size})")
    return italy, france


# -- foreign tables -------------------------------------------------------


def test_remote_table_joins_locally(sources):
    italy, france = sources
    attach_foreign_table(italy, "landfill_fr",
                         RemoteTableSource(france, "landfill"))
    result = italy.query("""
        SELECT f.name FROM landfill_fr f WHERE f.size > 8""")
    assert result.rows == [("lf_fr_1",)]


def test_live_mode_sees_remote_updates(sources):
    italy, france = sources
    attach_foreign_table(italy, "landfill_fr",
                         RemoteTableSource(france, "landfill"))
    before = italy.query("SELECT COUNT(*) FROM landfill_fr").scalar()
    france.execute("INSERT INTO landfill VALUES ('new', 'Nice', 1.0)")
    after = italy.query("SELECT COUNT(*) FROM landfill_fr").scalar()
    assert after == before + 1


def test_snapshot_mode_is_frozen_until_refresh(sources):
    italy, france = sources
    table = attach_foreign_table(
        italy, "landfill_fr", RemoteTableSource(france, "landfill"),
        mode="snapshot")
    before = italy.query("SELECT COUNT(*) FROM landfill_fr").scalar()
    france.execute("INSERT INTO landfill VALUES ('new', 'Nice', 1.0)")
    assert italy.query("SELECT COUNT(*) FROM landfill_fr").scalar() == before
    table.refresh()
    assert italy.query(
        "SELECT COUNT(*) FROM landfill_fr").scalar() == before + 1


def test_foreign_table_rejects_writes(sources):
    italy, france = sources
    attach_foreign_table(italy, "landfill_fr",
                         RemoteTableSource(france, "landfill"))
    with pytest.raises(ForeignTableError):
        italy.execute("INSERT INTO landfill_fr VALUES ('x', 'y', 1)")
    with pytest.raises(ForeignTableError):
        italy.execute("DELETE FROM landfill_fr")


def test_query_source_exposes_remote_view(sources):
    italy, france = sources
    attach_foreign_table(
        italy, "fr_big",
        QuerySource(france, "SELECT name FROM landfill WHERE size > 8",
                    "fr_big"))
    assert italy.query("SELECT * FROM fr_big").rows == [("lf_fr_1",)]


def test_csv_source_types_inferred():
    db = Database()
    source = CsvSource("elem,amount,flag\nHg,3.5,true\nPb,7,false\n")
    attach_foreign_table(db, "t", source, mode="snapshot")
    rows = db.query("SELECT elem, amount, flag FROM t ORDER BY elem").rows
    assert rows == [("Hg", 3.5, True), ("Pb", 7.0, False)]


def test_csv_source_rejects_ragged_rows():
    with pytest.raises(ForeignTableError):
        CsvSource("a,b\n1\n")


def test_csv_source_mixed_numeric_column_widens_to_real():
    # Regression: inference used only the first non-null value, so a
    # mixed 1 / 2.5 column was INTEGER and every scan raised
    # TypeMismatchError on the 2.5.
    db = Database()
    source = CsvSource("elem,amount\nHg,1\nPb,2.5\n")
    attach_foreign_table(db, "t", source)
    rows = db.query("SELECT elem, amount FROM t ORDER BY amount").rows
    assert rows == [("Hg", 1.0), ("Pb", 2.5)]


def test_csv_source_mixed_number_and_text_widens_to_text():
    db = Database()
    source = CsvSource("amount\n1\nn/a\n", name="m")
    attach_foreign_table(db, "m", source, mode="snapshot")
    assert sorted(db.query("SELECT amount FROM m").rows) == [
        ("1",), ("n/a",)]


def test_csv_source_null_then_mixed_values_still_widen():
    source = CsvSource("amount\n\n3\n0.5\n")
    rows = sorted(row for row in source.rows() if row[0] is not None)
    from repro.relational.types import DataType
    assert source.schema().columns[0].data_type is DataType.REAL
    assert rows == [(0.5,), (3,)]


def test_scan_count_tracks_remote_hits(sources):
    italy, france = sources
    table = attach_foreign_table(
        italy, "landfill_fr", RemoteTableSource(france, "landfill"))
    italy.query("SELECT * FROM landfill_fr")
    italy.query("SELECT * FROM landfill_fr")
    assert table.scan_count == 2


def test_len_charges_remote_accounting_in_live_mode(sources):
    # Regression: a cardinality probe ran the full remote query but
    # charged no latency and never bumped scan_count.
    italy, france = sources
    table = attach_foreign_table(
        italy, "landfill_fr", RemoteTableSource(france, "landfill"))
    assert table.scan_count == 0
    assert len(table) == 2
    assert table.scan_count == 1


def test_len_serves_cached_count_in_snapshot_mode(sources):
    italy, france = sources
    table = attach_foreign_table(
        italy, "landfill_fr", RemoteTableSource(france, "landfill"),
        mode="snapshot")
    assert len(table) == 2
    assert table.scan_count == 0   # local copy: no remote hop


def test_snapshot_scans_charge_no_remote_accounting(sources):
    italy, france = sources
    table = attach_foreign_table(
        italy, "landfill_fr", RemoteTableSource(france, "landfill"),
        mode="snapshot")
    italy.query("SELECT * FROM landfill_fr")
    assert table.scan_count == 0   # scans read the local copy too


def test_query_source_schema_computed_once(sources):
    # Regression: attaching a remote view cost one extra full remote
    # execution per schema consultation.
    italy, france = sources

    class CountingDatabase:
        def __init__(self, inner):
            self.inner = inner
            self.queries = 0

        def query(self, sql):
            self.queries += 1
            return self.inner.query(sql)

    counting = CountingDatabase(france)
    source = QuerySource(counting, "SELECT name FROM landfill", "fr_v")
    attach_foreign_table(italy, "fr_v", source)
    after_attach = counting.queries
    source.schema()
    source.schema()
    assert counting.queries == after_attach == 1
    # rows() stays live: every scan re-executes the remote query.
    italy.query("SELECT * FROM fr_v")
    assert counting.queries == 2


# -- mediator -------------------------------------------------------------------


def make_mediator(sources):
    italy, france = sources
    mediator = Mediator()
    mediator.register_source("italy", italy)
    mediator.register_source("france", france)
    return mediator


def test_union_all_reconciliation(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill"),
        ("france", "SELECT name, city, size FROM landfill")])
    result, report = mediator.query("SELECT COUNT(*) FROM eu")
    assert result.scalar() == 4
    assert report.rows_per_source == {"italy": 2, "france": 2}


def test_union_dedupes_identical_rows(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill"),
        ("france", "SELECT name, city, size FROM landfill")],
        reconciliation="union")
    result, _report = mediator.query("SELECT COUNT(*) FROM eu")
    assert result.scalar() == 3  # lf_it_2 appears in both sources


def test_prefer_first_resolves_key_conflicts(sources):
    italy, france = sources
    france.execute(
        "UPDATE landfill SET size = 999 WHERE name = 'lf_it_2'")
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill"),
        ("france", "SELECT name, city, size FROM landfill")],
        reconciliation="prefer_first", key_columns=["name"])
    result, _report = mediator.query(
        "SELECT size FROM eu WHERE name = 'lf_it_2'")
    assert result.scalar() == 7.5  # italy's value wins


def test_mediated_query_over_view_join(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill"),
        ("france", "SELECT name, city, size FROM landfill")])
    result, _report = mediator.query("""
        SELECT city, COUNT(*) AS n FROM eu GROUP BY city
        ORDER BY n DESC, city LIMIT 1""")
    assert result.rows == [("Milano", 2)]


def test_view_definition_validation(sources):
    mediator = make_mediator(sources)
    with pytest.raises(MediationError):
        mediator.define_view("v", [])
    with pytest.raises(MediationError):
        mediator.define_view("v", [("nowhere", "SELECT 1")])
    with pytest.raises(MediationError):
        mediator.define_view("v", [("italy", "SELECT 1")],
                             reconciliation="prefer_first")
    with pytest.raises(MediationError):
        mediator.query("SELECT 1", views=["missing"])


def test_fragment_arity_mismatch_detected(sources):
    mediator = make_mediator(sources)
    mediator.define_view("bad", [
        ("italy", "SELECT name, city FROM landfill"),
        ("france", "SELECT name FROM landfill")])
    with pytest.raises(MediationError):
        mediator.query("SELECT * FROM bad")


def test_query_ships_only_referenced_views(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill"),
        ("france", "SELECT name, city, size FROM landfill")])
    mediator.define_view("it_only", [
        ("italy", "SELECT name FROM landfill")])
    _result, report = mediator.query("SELECT COUNT(*) FROM eu")
    # Pruning: it_only is defined but unreferenced, so no sub-query of
    # it is shipped and it is never materialised.
    assert [sql for _src, sql in report.sub_queries] == [
        "SELECT name, city, size FROM landfill",
        "SELECT name, city, size FROM landfill"]
    assert list(report.view_rows) == ["eu"]


def test_pruning_sees_views_in_subqueries(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill")])
    mediator.define_view("big", [
        ("france", "SELECT name FROM landfill WHERE size > 8")])
    _result, report = mediator.query(
        "SELECT name FROM eu WHERE name IN (SELECT name FROM big)")
    assert set(report.view_rows) == {"eu", "big"}


def test_pruning_falls_back_to_all_views_on_parse_failure(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name FROM landfill")])
    assert mediator.referenced_views("THIS IS NOT SQL") == ["eu"]


def test_explicit_views_argument_still_wins(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill")])
    mediator.define_view("extra", [
        ("france", "SELECT name, city, size FROM landfill")])
    _result, report = mediator.query("SELECT COUNT(*) FROM eu",
                                     views=["eu", "extra"])
    assert set(report.view_rows) == {"eu", "extra"}


# -- mediator sessions -------------------------------------------------------


def test_mediator_session_reuses_materializations(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill"),
        ("france", "SELECT name, city, size FROM landfill")])
    session = mediator.connect()
    _result, first = session.execute("SELECT COUNT(*) FROM eu")
    result, second = session.execute("SELECT COUNT(*) FROM eu")
    assert len(first.sub_queries) == 2     # cold: both fragments shipped
    assert second.sub_queries == []        # warm: local copy reused
    assert result.scalar() == 4
    assert (session.hits, session.misses) == (1, 1)


def test_mediator_session_refresh_picks_up_source_changes(sources):
    italy, france = sources
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill")])
    session = mediator.connect()
    before = session.query("SELECT COUNT(*) FROM eu").scalar()
    italy.execute("INSERT INTO landfill VALUES ('new', 'Bari', 2.0)")
    assert session.query("SELECT COUNT(*) FROM eu").scalar() == before
    session.refresh()
    assert session.query("SELECT COUNT(*) FROM eu").scalar() == before + 1


def test_mediator_session_explain_shows_pruning_and_cache(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill")])
    mediator.define_view("other", [
        ("france", "SELECT name FROM landfill")])
    session = mediator.connect()
    cold = session.explain("SELECT * FROM eu")
    assert [stage.name for stage in cold.stages] == [
        "prune", "materialize", "sql"]
    assert cold.cache_misses == 1
    session.query("SELECT * FROM eu")
    warm = session.explain("SELECT * FROM eu")
    assert warm.cache_hits == 1


def test_stored_query_always_carries_parsed_form():
    from repro.core import StoredQueryRegistry
    registry = StoredQueryRegistry()
    stored = registry.register("anyPair", "SELECT ?s ?o WHERE { ?s ?p ?o }")
    assert stored.query is not None
    assert registry.get("anyPair").query is stored.query


# -- REST integration --------------------------------------------------------------


@pytest.fixture
def service():
    platform = CrossePlatform(
        generate_databank(SmartGroundConfig(n_landfills=10, seed=3)))
    return CrosseRestService(platform)


def test_rest_user_lifecycle(service):
    created = service.request("POST", "/api/users",
                              {"username": "giulia"})
    assert created.status == 200
    listed = service.request("GET", "/api/users")
    assert "giulia" in listed.payload["users"]


def test_rest_annotation_and_acceptance_flow(service):
    service.request("POST", "/api/users", {"username": "giulia"})
    service.request("POST", "/api/users", {"username": "marco"})
    created = service.request("POST", "/api/annotations", {
        "username": "giulia", "subject": "Mercury",
        "property": "dangerLevel", "object": "high"})
    assert created.status == 200
    statement_id = created.payload["statement_id"]
    listed = service.request("GET", "/api/annotations/marco")
    assert any(a["statement_id"] == statement_id
               for a in listed.payload["annotations"])
    accepted = service.request(
        "POST", f"/api/statements/{statement_id}/accept",
        {"username": "marco"})
    assert accepted.payload["accepted_by"] == ["marco"]


def test_rest_sesql_round_trip(service):
    service.request("POST", "/api/users", {"username": "giulia"})
    service.request("POST", "/api/annotations", {
        "username": "giulia", "subject": "Iron",
        "property": "dangerLevel", "object": "low"})
    response = service.request("POST", "/api/sesql", {
        "username": "giulia",
        "query": "SELECT DISTINCT elem_name FROM elem_contained "
                 "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"})
    assert response.status == 200
    assert response.payload["columns"] == ["elem_name", "dangerLevel"]


def test_rest_missing_route_and_fields(service):
    assert service.request("GET", "/api/nothing").status == 404
    assert service.request("POST", "/api/users", {}).status == 400


def test_rest_handler_error_becomes_422(service):
    service.request("POST", "/api/users", {"username": "giulia"})
    response = service.request("POST", "/api/annotations", {
        "username": "giulia", "scenario": "integrated",
        "table": "elem_contained", "column": "elem_name",
        "value": "Unobtainium", "property": "dangerLevel",
        "object": "high"})
    assert response.status == 422


# -- planner-era mediation: AST reuse, pushdown, cost ranking ---------------


def test_session_falls_back_to_all_views_on_parse_failure(sources):
    from repro.relational.errors import SqlSyntaxError

    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill")])
    session = mediator.connect()
    with pytest.raises(SqlSyntaxError):
        session.execute("THIS IS NOT SQL")
    # The unparseable text fell back to materializing every view before
    # the scratch database reported the real syntax error.
    assert session.misses == 1
    # ... and a later good query reuses that materialization.
    _result, report = session.execute("SELECT COUNT(*) FROM eu")
    assert report.sub_queries == []
    assert session.hits == 1


def test_filter_pushdown_ships_filtered_fragments(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill"),
        ("france", "SELECT name, city, size FROM landfill")])
    result, report = mediator.query(
        "SELECT name FROM eu WHERE size > 8.0")
    assert sorted(result.rows) == [("lf_fr_1",), ("lf_it_1",)]
    assert "eu" in report.pushed_filters
    assert all("WHERE" in sql for _src, sql in report.sub_queries)
    # Sources filtered before shipping: 1 matching row each.
    assert report.rows_per_source == {"italy": 1, "france": 1}


def test_pushdown_matches_unpushed_results(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill"),
        ("france", "SELECT name, city, size FROM landfill")])
    sql = ("SELECT city, COUNT(*) AS n FROM eu WHERE size >= 7.5 "
           "GROUP BY city ORDER BY n DESC, city")
    pushed, _r1 = mediator.query(sql, pushdown=True)
    plain, _r2 = mediator.query(sql, pushdown=False)
    assert pushed.rows == plain.rows


def test_pushdown_skips_prefer_first_views(sources):
    mediator = make_mediator(sources)
    mediator.define_view(
        "eu", [("italy", "SELECT name, city, size FROM landfill"),
               ("france", "SELECT name, city, size FROM landfill")],
        reconciliation="prefer_first", key_columns=["name"])
    result, report = mediator.query(
        "SELECT name FROM eu WHERE city = 'Milano'")
    # Pre-filtering could change which duplicate wins, so nothing is
    # pushed and every full fragment ships.
    assert report.pushed_filters == {}
    assert result.rows == [("lf_it_2",)]


def test_partial_materializations_are_not_cached(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill")])
    session = mediator.connect()
    _result, first = session.execute("SELECT name FROM eu WHERE size > 8")
    assert "eu" in first.pushed_filters
    # The filtered copy must not serve the next (wider) query.
    result, second = session.execute("SELECT COUNT(*) FROM eu")
    assert result.scalar() == 2
    assert len(second.sub_queries) == 1  # re-shipped, this time in full
    # The full copy *is* cached from here on.
    _result, third = session.execute("SELECT COUNT(*) FROM eu")
    assert third.sub_queries == []


def test_views_materialize_cheapest_first(sources):
    italy, _france = sources
    mediator = make_mediator(sources)
    italy.execute("CREATE TABLE big (n INTEGER)")
    for i in range(500):
        italy.table("big").insert_row({"n": i})
    mediator.define_view("huge", [("italy", "SELECT n FROM big")])
    mediator.define_view("tiny", [
        ("italy", "SELECT name FROM landfill")])
    _result, report = mediator.query(
        "SELECT COUNT(*) FROM huge CROSS JOIN tiny")
    assert report.view_costs["tiny"] < report.view_costs["huge"]
    shipped = [sql for _src, sql in report.sub_queries]
    assert shipped.index("SELECT name FROM landfill") \
        < shipped.index("SELECT n FROM big")


def test_pushdown_skips_views_also_referenced_in_subqueries(sources):
    mediator = make_mediator(sources)
    mediator.define_view("eu", [
        ("italy", "SELECT name, city, size FROM landfill"),
        ("france", "SELECT name, city, size FROM landfill")])
    sql = ("SELECT name FROM eu WHERE size >= 7.5 "
           "AND city IN (SELECT city FROM eu WHERE size < 8.0)")
    pushed, report = mediator.query(sql, pushdown=True)
    plain, _plain_report = mediator.query(sql, pushdown=False)
    # Both references read one shared materialization: nothing may be
    # pushed, and the results must match the unpushed run.
    assert report.pushed_filters == {}
    assert sorted(pushed.rows) == sorted(plain.rows)
    assert pushed.rows  # the Milano duplicate satisfies both branches
