"""Property-based SPARQL equivalence: the set-at-a-time evaluator and
the pinned naive interpreter must return the same solution multisets
(and the same headers) over generated stores and BGP / OPTIONAL /
FILTER / UNION / BIND / ORDER BY queries — mirroring what
``test_planner_properties.py`` asserts for the relational planner.

The naive interpreter probes the store once per intermediate solution;
the production evaluator hash-joins id-encoded batches in an order the
BGP planner picks from store statistics.  Any disagreement between the
two is a bug in the new path by definition.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Literal, Triple, TripleStore, term_sort_key
from repro.sparql import NaiveEvaluator, parse_sparql
from repro.sparql.evaluator import Evaluator

NS = "http://example.org/"
PREFIX = "PREFIX ex: <http://example.org/>\n"

nodes = [IRI(NS + f"s{i}") for i in range(6)]
subjects = st.sampled_from(nodes)
predicates = st.sampled_from([IRI(NS + f"p{i}") for i in range(3)])
objects = st.one_of(st.sampled_from(nodes),
                    st.integers(0, 5).map(Literal))
triples = st.lists(st.builds(Triple, subjects, predicates, objects),
                   max_size=40)

#: Query shapes chosen to cover every operator pairing the evaluator
#: special-cases: multi-pattern BGP joins (hash-join fast path),
#: OPTIONAL followed by a BGP over its maybe-bound variable (the
#: heterogeneous-boundness "loose rows" path), FILTER/BIND expression
#: evaluation, UNION schema merging, variable predicates, property
#: paths, and the blocking modifiers.
QUERIES = [
    "SELECT ?x ?y WHERE { ?x ex:p0 ?y }",
    "SELECT ?x ?z WHERE { ?x ex:p0 ?y . ?y ex:p1 ?z }",
    "SELECT * WHERE { ?x ex:p0 ?y . ?x ex:p1 ?z . ?z ex:p2 ?w }",
    "SELECT * WHERE { ?x ex:p0 ?x }",
    "SELECT ?x ?y ?z WHERE { ?x ex:p0 ?y OPTIONAL { ?x ex:p1 ?z } }",
    "SELECT * WHERE { ?x ex:p0 ?y OPTIONAL { ?y ex:p1 ?z } "
    "?z ex:p2 ?w }",
    "SELECT * WHERE { ?x ex:p0 ?y OPTIONAL { ?y ex:p1 ?z "
    "FILTER(?z > 1) } }",
    "SELECT ?x WHERE { ?x ex:p0 ?n FILTER(?n > 2) }",
    "SELECT ?x WHERE { ?x ex:p0 ?n FILTER(!BOUND(?m)) }",
    "SELECT ?x ?y WHERE { { ?x ex:p0 ?y } UNION { ?x ex:p1 ?y } }",
    "SELECT * WHERE { { ?x ex:p0 ?y } UNION { ?y ex:p1 ?z } "
    "?y ex:p2 ?w }",
    "SELECT DISTINCT ?x WHERE { ?x ?p ?y }",
    "SELECT ?x ?m WHERE { ?x ex:p0 ?n BIND(?n + 1 AS ?m) }",
    "SELECT ?x ?y WHERE { ?x ex:p0/ex:p1 ?y }",
    "SELECT ?x ?y WHERE { ?x ex:p0+ ?y . ?y ex:p1 ?z }",
    "SELECT DISTINCT ?x ?y WHERE { ?x ex:p0|ex:p1 ?y . "
    "?y ex:p2 ?w }",
]


def build(batch) -> TripleStore:
    store = TripleStore()
    store.add_all(batch)
    return store


def multiset(results) -> Counter:
    return Counter(
        tuple(term.n3() if term is not None else None for term in row)
        for row in results.tuples())


@given(batch=triples, query=st.sampled_from(QUERIES))
@settings(max_examples=300, deadline=None)
def test_select_equivalence(batch, query):
    store = build(batch)
    parsed = parse_sparql(PREFIX + query)
    fast = Evaluator(store).select(parsed)
    naive = NaiveEvaluator(store).select(parsed)
    assert fast.var_names() == naive.var_names()
    assert multiset(fast) == multiset(naive)


@given(batch=triples, limit=st.integers(0, 5), offset=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_order_by_limit_equivalence(batch, limit, offset):
    """ORDER BY output must be key-sorted in both engines and carry the
    same multiset of rows once the slice is applied to a total order
    (the single integer-literal sort key makes ties value-identical)."""
    store = build(batch)
    parsed = parse_sparql(
        PREFIX + f"SELECT ?n WHERE {{ ?x ex:p0 ?n FILTER(?n >= 0) }} "
        f"ORDER BY ?n LIMIT {limit} OFFSET {offset}")
    fast = Evaluator(store).select(parsed)
    naive = NaiveEvaluator(store).select(parsed)
    fast_keys = [term_sort_key(term) for term in fast.values("n")]
    assert fast_keys == sorted(fast_keys)
    assert multiset(fast) == multiset(naive)


@given(batch=triples)
@settings(max_examples=60, deadline=None)
def test_ask_and_construct_equivalence(batch):
    store = build(batch)
    ask = parse_sparql(PREFIX + "ASK { ?x ex:p0 ?y . ?y ex:p1 ?z }")
    assert Evaluator(store).ask(ask) == NaiveEvaluator(store).ask(ask)
    construct = parse_sparql(
        PREFIX + "CONSTRUCT { ?x ex:flagged ?z } "
        "WHERE { ?x ex:p0 ?y . ?y ex:p1 ?z }")
    fast = Evaluator(store).construct(construct)
    naive = NaiveEvaluator(store).construct(construct)
    assert set(fast.triples()) == set(naive.triples())


@given(batch=triples, query=st.sampled_from(QUERIES))
@settings(max_examples=60, deadline=None)
def test_equivalence_on_spo_only_stores(batch, query):
    """The ablated store (no POS/OSP indexes) must not change results —
    only the access paths the statistics can price."""
    store = TripleStore(indexing="spo")
    store.add_all(batch)
    parsed = parse_sparql(PREFIX + query)
    fast = Evaluator(store).select(parsed)
    naive = NaiveEvaluator(store).select(parsed)
    assert multiset(fast) == multiset(naive)
