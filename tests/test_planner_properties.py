"""Property-based planner equivalence: for generated multi-join queries
over generated data, the planner-on and planner-off executions must
return identical row multisets (and identical column headers).

Planner-on runs in *strict* mode, so a silent fall-back to the written
plan cannot make these tests vacuous: any internal planner error fails
the test instead of hiding.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner import PlannerOptions
from repro.relational import Database

STRICT = PlannerOptions(strict=True)
OFF = PlannerOptions(enabled=False)

values = st.one_of(st.none(), st.integers(0, 4))
table_rows = st.lists(st.tuples(values, values), min_size=0, max_size=12)
join_column = st.sampled_from(["x", "y"])


def build(planner: PlannerOptions, data: dict[str, list],
          indexed: bool) -> Database:
    db = Database(planner=planner)
    for name, rows in data.items():
        db.execute(f"CREATE TABLE {name} (x INTEGER, y INTEGER)")
        for x, y in rows:
            db.table(name).insert_row({"x": x, "y": y})
    if indexed:
        db.execute("CREATE INDEX idx_tb_x ON tb (x)")
    db.analyze()
    return db


def equivalent(data: dict[str, list], sql: str,
               indexed: bool = False) -> None:
    on = build(STRICT, data, indexed)
    off = build(OFF, data, indexed)
    got = on.query(sql)
    expected = off.query(sql)
    assert got.columns == expected.columns
    assert Counter(got.rows) == Counter(expected.rows)


@given(ta=table_rows, tb=table_rows, tc=table_rows,
       left=join_column, right=join_column,
       threshold=st.integers(0, 4), indexed=st.booleans())
@settings(max_examples=50, deadline=None)
def test_three_way_inner_join_equivalence(ta, tb, tc, left, right,
                                          threshold, indexed):
    sql = (f"SELECT ta.x, tb.y, tc.x FROM ta "
           f"JOIN tb ON ta.{left} = tb.{right} "
           f"JOIN tc ON tb.y = tc.y "
           f"WHERE tc.x > {threshold} AND 1 = 1")
    equivalent({"ta": ta, "tb": tb, "tc": tc}, sql, indexed)


@given(ta=table_rows, tb=table_rows, tc=table_rows,
       threshold=st.integers(0, 4))
@settings(max_examples=40, deadline=None)
def test_left_join_mix_equivalence(ta, tb, tc, threshold):
    sql = (f"SELECT ta.x, tb.y, tc.y FROM ta "
           f"JOIN tb ON ta.x = tb.x "
           f"LEFT JOIN tc ON tb.y = tc.y "
           f"WHERE ta.y >= {threshold}")
    equivalent({"ta": ta, "tb": tb, "tc": tc}, sql)


@given(ta=table_rows, tb=table_rows, indexed=st.booleans())
@settings(max_examples=40, deadline=None)
def test_star_select_equivalence(ta, tb, indexed):
    sql = ("SELECT * FROM ta JOIN tb ON ta.x = tb.x "
           "WHERE tb.y IS NOT NULL")
    equivalent({"ta": ta, "tb": tb}, sql, indexed)


@given(ta=table_rows, tb=table_rows, tc=table_rows)
@settings(max_examples=40, deadline=None)
def test_aggregate_over_joins_equivalence(ta, tb, tc):
    sql = ("SELECT ta.x, COUNT(*) AS n FROM ta "
           "JOIN tb ON ta.y = tb.y "
           "JOIN tc ON tb.x = tc.x "
           "GROUP BY ta.x ORDER BY n DESC, ta.x")
    equivalent({"ta": ta, "tb": tb, "tc": tc}, sql)


@given(ta=table_rows, tb=table_rows, threshold=st.integers(0, 4))
@settings(max_examples=40, deadline=None)
def test_derived_table_equivalence(ta, tb, threshold):
    sql = (f"SELECT s.x FROM (SELECT x, y FROM ta WHERE x <= 4) AS s "
           f"JOIN tb ON s.y = tb.y WHERE tb.x >= {threshold}")
    equivalent({"ta": ta, "tb": tb}, sql)
