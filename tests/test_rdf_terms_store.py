"""RDF terms and triple store: identity, indexes, pattern matching."""

import pytest

from repro.rdf import (IRI, BNode, Literal, Namespace, RdfError, RdfTermError,
                       Triple, TripleStore, term_from_python, term_sort_key)

SMG = Namespace("http://smartground.eu/ns#")


def test_iri_validation():
    with pytest.raises(RdfTermError):
        IRI("")
    with pytest.raises(RdfTermError):
        IRI("has space")


def test_iri_local_name():
    assert IRI("http://x.org/ns#Mercury").local_name() == "Mercury"
    assert IRI("http://x.org/path/Lead").local_name() == "Lead"


def test_literal_datatype_inference():
    assert Literal("x").datatype.endswith("string")
    assert Literal(3).datatype.endswith("integer")
    assert Literal(3.5).datatype.endswith("double")
    assert Literal(True).datatype.endswith("boolean")


def test_literal_lang_requires_string():
    with pytest.raises(RdfTermError):
        Literal(3, lang="en")


def test_terms_are_hashable_and_equal_by_value():
    assert IRI("http://a") == IRI("http://a")
    assert hash(Literal("x")) == hash(Literal("x"))
    assert Literal("x") != Literal("x", lang="en")


def test_bnode_ids_unique_by_default():
    assert BNode() != BNode()
    assert BNode("same") == BNode("same")


def test_term_from_python():
    assert term_from_python("x") == Literal("x")
    assert term_from_python(IRI("http://a")) == IRI("http://a")
    with pytest.raises(RdfTermError):
        term_from_python(object())


def test_term_sort_order():
    order = [None, BNode("a"), IRI("http://a"), Literal(1), Literal("z")]
    keys = [term_sort_key(term) for term in order]
    assert keys == sorted(keys)


@pytest.fixture
def store():
    s = TripleStore()
    s.add(SMG.Mercury, SMG.dangerLevel, Literal("high"))
    s.add(SMG.Mercury, SMG.isA, SMG.HazardousWaste)
    s.add(SMG.Iron, SMG.dangerLevel, Literal("low"))
    s.add(SMG.Torino, SMG.inCountry, SMG.Italy)
    return s


def test_add_is_idempotent(store):
    before = len(store)
    assert store.add(SMG.Mercury, SMG.isA, SMG.HazardousWaste) is False
    assert len(store) == before


def test_contains_and_remove(store):
    triple = Triple(SMG.Iron, SMG.dangerLevel, Literal("low"))
    assert triple in store
    assert store.remove(triple) is True
    assert triple not in store
    assert store.remove(triple) is False


def test_pattern_matching_each_shape(store):
    assert store.count(SMG.Mercury, None, None) == 2
    assert store.count(None, SMG.dangerLevel, None) == 2
    assert store.count(None, None, SMG.HazardousWaste) == 1
    assert store.count(SMG.Mercury, SMG.dangerLevel, None) == 1
    assert store.count(None, SMG.dangerLevel, Literal("low")) == 1
    assert store.count(SMG.Mercury, None, SMG.HazardousWaste) == 1
    assert store.count(None, None, None) == 4
    assert store.count(SMG.Mercury, SMG.dangerLevel, Literal("high")) == 1


def test_python_values_accepted_in_patterns(store):
    assert store.count(None, SMG.dangerLevel, "high") == 1


def test_subjects_objects_predicates_deduped(store):
    store.add(SMG.Mercury, SMG.dangerLevel, Literal("very-high"))
    assert len(list(store.subjects(SMG.dangerLevel, None))) == 2
    assert len(list(store.objects(SMG.Mercury, SMG.dangerLevel))) == 2
    assert SMG.isA in set(store.predicates(SMG.Mercury, None))


def test_value_helper(store):
    assert store.value(SMG.Torino, SMG.inCountry) == SMG.Italy
    assert store.value(SMG.Torino, SMG.dangerLevel) is None


def test_remove_pattern(store):
    removed = store.remove_pattern(None, SMG.dangerLevel, None)
    assert removed == 2
    assert store.count(None, SMG.dangerLevel, None) == 0


def test_union_and_copy_do_not_alias(store):
    other = TripleStore()
    other.add(SMG.Lead, SMG.dangerLevel, Literal("mid"))
    merged = store.union(other)
    assert len(merged) == len(store) + 1
    merged.add(SMG.X, SMG.isA, SMG.Y)
    assert store.count(SMG.X, None, None) == 0


def test_spo_only_indexing_matches_full(store):
    reduced = TripleStore(indexing="spo")
    reduced.add_all(store.triples())
    for pattern in [(None, SMG.dangerLevel, None),
                    (None, None, SMG.HazardousWaste),
                    (SMG.Mercury, None, None)]:
        full_result = set(store.triples(*pattern))
        reduced_result = set(reduced.triples(*pattern))
        assert full_result == reduced_result


def test_predicate_must_be_iri():
    store = TripleStore()
    with pytest.raises(RdfError):
        store.add(SMG.a, Literal("not-a-predicate"), SMG.b)


def test_remove_cleans_empty_index_levels():
    store = TripleStore()
    store.add(SMG.a, SMG.p, SMG.b)
    store.remove(SMG.a, SMG.p, SMG.b)
    assert len(store) == 0
    assert list(store.triples()) == []
    # Internal dicts must not leak empty shells.
    assert store._spo == {} and store._pos == {} and store._osp == {}


# -- dictionary encoding, statistics, batch mutation -------------------------


def test_term_dictionary_interns_once():
    from repro.rdf import TermDictionary
    d = TermDictionary()
    first = d.intern(SMG.Mercury)
    assert d.intern(SMG.Mercury) == first
    assert d.intern(IRI(str(SMG.Mercury))) == first  # equal by value
    assert d.lookup(SMG.Mercury) == first
    assert d.lookup(SMG.NeverSeen) is None
    assert d.term(first) == SMG.Mercury
    assert len(d) == 1


def test_shared_dictionary_across_stores(store):
    other = TripleStore(dictionary=store.dictionary)
    other.add(SMG.Mercury, SMG.dangerLevel, Literal("high"))
    assert other.dictionary is store.dictionary
    assert (other.dictionary.lookup(SMG.Mercury)
            == store.dictionary.lookup(SMG.Mercury))


def test_statistics_match_scan_counts(store):
    store.add(SMG.Mercury, SMG.dangerLevel, Literal("very-high"))
    patterns = [
        (None, None, None),
        (SMG.Mercury, None, None),
        (None, SMG.dangerLevel, None),
        (None, None, Literal("high")),
        (SMG.Mercury, SMG.dangerLevel, None),
        (None, SMG.dangerLevel, Literal("low")),
        (SMG.Mercury, None, Literal("high")),
        (SMG.Mercury, SMG.dangerLevel, Literal("high")),
        (SMG.Absent, None, None),
    ]
    for pattern in patterns:
        assert store.stats.count(*pattern) \
            == sum(1 for _ in store.triples(*pattern)), pattern
    assert store.stats.triple_count() == len(store)
    assert store.stats.distinct_predicates() == 3


def test_statistics_survive_removal(store):
    store.remove(SMG.Mercury, SMG.isA, SMG.HazardousWaste)
    assert store.stats.count(None, SMG.isA, None) == 0
    assert store.stats.count(SMG.Mercury, None, None) == 1
    assert store.stats.distinct_predicates() == 2


def test_statistics_on_spo_only_store(store):
    reduced = TripleStore(indexing="spo")
    reduced.add_all(store.triples())
    for pattern in [(None, SMG.dangerLevel, None),
                    (None, None, SMG.Italy),
                    (None, SMG.inCountry, SMG.Italy),
                    (SMG.Mercury, None, SMG.HazardousWaste)]:
        assert reduced.stats.count(*pattern) == store.stats.count(*pattern)


def test_add_all_bumps_generation_once(store):
    before = store.generation
    added = store.add_all([
        Triple(SMG.Lead, SMG.dangerLevel, Literal("high")),
        Triple(SMG.Zinc, SMG.dangerLevel, Literal("mid")),
        Triple(SMG.Lead, SMG.dangerLevel, Literal("high")),  # batch dupe
    ])
    assert added == 2
    first_bump = store.generation
    assert first_bump != before
    # A no-op batch (all duplicates) must not invalidate caches.
    assert store.add_all([
        Triple(SMG.Lead, SMG.dangerLevel, Literal("high"))]) == 0
    assert store.generation == first_bump


def test_update_shares_interned_ids(store):
    other = TripleStore(dictionary=store.dictionary)
    other.add(SMG.Lead, SMG.dangerLevel, Literal("mid"))
    before = store.generation
    assert store.update(other) == 1
    assert store.generation != before
    assert store.count(SMG.Lead, None, None) == 1
    # Self-update is a no-op and keeps the generation stable.
    stable = store.generation
    assert store.update(store) == 0
    assert store.generation == stable


def test_id_triples_roundtrip(store):
    d = store.dictionary
    decoded = {Triple(d.term(s), d.term(p), d.term(o))
               for s, p, o in store.id_triples()}
    assert decoded == set(store.triples())
    p_id = d.lookup(SMG.dangerLevel)
    assert sum(1 for _ in store.id_triples(None, p_id, None)) == 2


def test_add_all_mid_batch_error_keeps_store_consistent():
    store = TripleStore()
    good = Triple(SMG.a, SMG.p, SMG.b)
    before = store.generation
    with pytest.raises(RdfError):
        store.add_all([good, (SMG.c, Literal("not-an-iri"), SMG.d)])
    # The triple inserted before the error is committed: size, stats
    # and generation all reflect it.
    assert len(store) == 1
    assert store.stats.triple_count() == 1
    assert store.generation != before
    assert list(store.triples()) == [good]
    assert store.remove(good) is True
    assert len(store) == 0
    assert store._spo == {} and store._pos == {} and store._osp == {}
