"""The ${condition:id} scanner of Remark 4.1."""

import pytest

from repro.core import SesqlSyntaxError, scan_condition_tags
from repro.relational import ast as sql_ast
from repro.relational import parse_sql


def test_single_tag_extracted_and_cleaned():
    scan = scan_condition_tags(
        "SELECT x FROM t WHERE ${a = b:cond1} AND c = 1")
    assert scan.clean_text == "SELECT x FROM t WHERE a = b AND c = 1"
    assert set(scan.conditions) == {"cond1"}
    assert scan.conditions["cond1"].text == "a = b"


def test_clean_text_parses_as_sql():
    scan = scan_condition_tags(
        "SELECT x FROM t WHERE ${a <> b : c1} AND ${a = 3 : c2}")
    statement = parse_sql(scan.clean_text)
    assert isinstance(statement, sql_ast.SelectQuery)
    assert set(scan.conditions) == {"c1", "c2"}


def test_condition_ast_matches_cleaned_subtree():
    scan = scan_condition_tags("SELECT x FROM t WHERE ${a = b:c1}")
    statement = parse_sql(scan.clean_text)
    assert sql_ast.node_key(statement.core.where) == sql_ast.node_key(
        scan.conditions["c1"].expr)


def test_whitespace_in_tags_tolerated():
    scan = scan_condition_tags("WHERE ${  a  =  b  :  cond1  }")
    assert scan.conditions["cond1"].text == "a  =  b"


def test_colon_inside_parens_not_a_separator():
    # Parentheses shield inner colons; the last depth-0 colon splits.
    scan = scan_condition_tags("WHERE ${ x IN (1, 2) : c9 }")
    assert set(scan.conditions) == {"c9"}


def test_dollar_inside_string_ignored():
    scan = scan_condition_tags("SELECT '${not a tag:x}' FROM t")
    assert scan.conditions == {}
    assert "${" in scan.clean_text


def test_string_inside_condition_preserved():
    scan = scan_condition_tags(
        "WHERE ${name = 'He}llo:world':c1} AND x = 1")
    assert scan.conditions["c1"].text == "name = 'He}llo:world'"


def test_duplicate_tag_id_rejected():
    with pytest.raises(SesqlSyntaxError):
        scan_condition_tags("WHERE ${a=1:c} AND ${b=2:c}")


def test_missing_id_rejected():
    with pytest.raises(SesqlSyntaxError):
        scan_condition_tags("WHERE ${a = b}")


def test_unterminated_tag_rejected():
    with pytest.raises(SesqlSyntaxError):
        scan_condition_tags("WHERE ${a = b : c1")


def test_invalid_id_rejected():
    with pytest.raises(SesqlSyntaxError):
        scan_condition_tags("WHERE ${a = b : not ok}")


def test_unparsable_condition_rejected():
    with pytest.raises(SesqlSyntaxError):
        scan_condition_tags("WHERE ${SELECT FROM : c1}")


def test_text_without_tags_passes_through():
    text = "SELECT a FROM t WHERE b = 'x'"
    scan = scan_condition_tags(text)
    assert scan.clean_text == text
    assert scan.conditions == {}
