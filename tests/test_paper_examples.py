"""The six worked examples of Section IV, reproduced verbatim.

Each test runs the exact query text from the paper (Examples 4.1-4.6)
against a miniature SmartGround databank plus a contextual KB shaped
like the scenarios those examples describe, and checks the semantics
stated in the surrounding prose.
"""

import pytest

from repro.core import SESQLEngine, StoredQueryRegistry
from repro.rdf import parse_turtle
from repro.relational import Database


@pytest.fixture
def engine():
    db = Database()
    db.execute_script("""
        CREATE TABLE landfill (name TEXT PRIMARY KEY, city TEXT);
        CREATE TABLE elem_contained (
            landfill_name TEXT, elem_name TEXT, amount REAL);
        INSERT INTO landfill VALUES
            ('a','Torino'), ('b','Lyon'), ('c','Torino');
        INSERT INTO elem_contained VALUES
            ('a','Mercury',12.0), ('a','Asbestos',3.5), ('a','Iron',140.0),
            ('b','Mercury',7.25), ('b','Copper',55.0),
            ('c','Lead',9.0), ('c','Cinnabar',4.0);
    """)
    kb = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury smg:dangerLevel "high" ; smg:isA smg:HazardousWaste .
        smg:Asbestos smg:dangerLevel "extreme" ; smg:isA smg:HazardousWaste .
        smg:Lead smg:isA smg:HazardousWaste .
        smg:Torino smg:inCountry smg:Italy .
        smg:Lyon smg:inCountry smg:France .
        smg:Mercury smg:oreAssemblage smg:Cinnabar .
    """)
    registry = StoredQueryRegistry()
    registry.register("dangerQuery", """
        PREFIX smg: <http://smartground.eu/ns#>
        SELECT ?e WHERE { ?e smg:isA smg:HazardousWaste }""",
        description="the list of dangerous elements (Example 4.5)")
    return SESQLEngine(db, kb, stored_queries=registry)


def test_example_4_1_schema_extension(engine):
    result = engine.execute("""
        SELECT elem_name, landfill_name
        FROM elem_contained
        WHERE landfill_name = 'a'
        ENRICH
        SCHEMAEXTENSION( elem_name, dangerLevel)""")
    assert result.columns == ["elem_name", "landfill_name", "dangerLevel"]
    assert sorted(result.rows) == [
        ("Asbestos", "a", "extreme"),
        ("Iron", "a", None),           # no contextual knowledge -> NULL
        ("Mercury", "a", "high"),
    ]


def test_example_4_2_schema_replacement(engine):
    result = engine.execute("""
        SELECT name, city
        FROM landfill
        ENRICH
        SCHEMAREPLACEMENT(city, inCountry)""")
    # The city column is replaced by the country information.
    assert result.columns == ["name", "inCountry"]
    assert sorted(result.rows) == [
        ("a", "Italy"), ("b", "France"), ("c", "Italy")]


def test_example_4_3_bool_schema_extension(engine):
    result = engine.execute("""
        SELECT elem_name
        FROM elem_contained
        WHERE landfill_name = 'a'
        ENRICH
        BOOLSCHEMAEXTENSION( elem_name, isA,
        HazardousWaste)""")
    assert result.columns == ["elem_name", "isA_HazardousWaste"]
    assert sorted(result.rows) == [
        ("Asbestos", True), ("Iron", False), ("Mercury", True)]


def test_example_4_4_bool_schema_replacement(engine):
    result = engine.execute("""
        SELECT name, city
        FROM landfill
        ENRICH
        BOOLSCHEMAREPLACEMENT(city, inCountry,
        Italy)""")
    assert result.columns == ["name", "inCountry_Italy"]
    assert sorted(result.rows) == [
        ("a", True), ("b", False), ("c", True)]


def test_example_4_5_replace_constant(engine):
    result = engine.execute("""
        SELECT landfill_name
        FROM elem_contained
        WHERE ${elem_name = HazardousWaste:cond1}
        ENRICH
        REPLACECONSTANT(cond1, HazardousWaste,
        dangerQuery)""")
    # Landfills containing any element the stored dangerQuery lists:
    # a has Mercury+Asbestos, b has Mercury, c has Lead.
    assert sorted(result.rows) == [("a",), ("a",), ("b",), ("c",)]
    # The rewritten condition is visible in the executed SQL.
    assert "IN (SELECT" in result.executed_sql


def test_example_4_6_replace_variable(engine):
    result = engine.execute("""
        SELECT Elecond1.landfill_name AS l_name1,
               Elecond2.landfill_name AS l_name2,
               Elecond1.elem_name
        FROM elem_contained AS Elecond1,
             elem_contained AS Elecond2
        WHERE ${ Elecond1.elem_name <>
              Elecond2.elem_name:cond1} AND
              Elecond1.landfill_name <> Elecond2.landfill_name
        ENRICH
        REPLACEVARIABLE(cond1, Elecond2.elem_name,
        oreAssemblage)""")
    assert result.columns == ["l_name1", "l_name2", "elem_name"]
    # Only Mercury has an oreAssemblage (Cinnabar); the tagged condition
    # compares Elecond1's element against the *assemblage* of Elecond2's.
    for _l1, _l2, elem in result.rows:
        assert elem != "Cinnabar"
    assert ("a", "b", "Mercury") in result.rows
    assert ("c", "a", "Lead") in result.rows


def test_example_4_5_includes_original_constant_when_asked(engine):
    engine.databank.execute(
        "INSERT INTO elem_contained VALUES ('c', 'HazardousWaste', 1.0)")
    with_original = engine.execute("""
        SELECT landfill_name FROM elem_contained
        WHERE ${elem_name = HazardousWaste:cond1}
        ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)""",
        include_original=True)
    without = engine.execute("""
        SELECT landfill_name FROM elem_contained
        WHERE ${elem_name = HazardousWaste:cond1}
        ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)""")
    # The "user preference" of Section III-B: the replacement set may or
    # may not contain the initial value.
    assert len(with_original.rows) == len(without.rows) + 1


def test_pipeline_observability(engine):
    result = engine.execute("""
        SELECT name, city FROM landfill
        ENRICH SCHEMAEXTENSION(city, inCountry)""")
    assert len(result.sparql_queries) == 1
    assert "inCountry" in result.sparql_queries[0]
    assert len(result.final_sqls) == 1
    assert "LEFT JOIN" in result.final_sqls[0]
    assert result.timings["total"] > 0
