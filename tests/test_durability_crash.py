"""Crash-point matrix: recovery from a fault at every write boundary.

The harness runs a fixed workload once under a recording
:class:`FaultyOpener` to learn every OS write boundary the durability
layer produces, then re-runs it once per fault budget — crashing
exactly *at* each boundary (the next write vanishes) and one byte
*before* it (the write tears mid-frame).  After every simulated power
cut, recovery with a healthy opener must land on a state byte-identical
(by canonical digest) to a never-crashed reference that applied some
prefix of the same operations — no torn frame applied, no acknowledged
record silently dropped, no half-written snapshot trusted.
"""

from __future__ import annotations

import pytest

from repro.crosse import CrossePlatform
from repro.durability import (CrashPoint, DurabilityManager,
                              DurabilityOptions, FaultyOpener,
                              crash_budgets, database_state,
                              platform_state, state_digest, store_state)
from repro.rdf import Literal, Namespace, TripleStore
from repro.relational import Database

SMG = Namespace("http://smartground.eu/ns#")


# -- the workload: one journaled record per op, all deterministic ------------

OPS = [
    lambda db, store: db.execute(
        "CREATE TABLE landfill (id INTEGER PRIMARY KEY, name TEXT, "
        "area REAL)"),
    lambda db, store: db.execute(
        "INSERT INTO landfill VALUES (1, 'a', 120.5)"),
    lambda db, store: db.execute(
        "INSERT INTO landfill VALUES (2, 'b', NULL)"),
    lambda db, store: store.add(SMG.Mercury, SMG.dangerLevel,
                                Literal("high")),
    lambda db, store: db.execute(
        "UPDATE landfill SET area = 7.0 WHERE id = 2"),
    lambda db, store: store.add(SMG.Iron, SMG.dangerLevel,
                                Literal("low")),
    lambda db, store: db.execute(
        "INSERT INTO landfill VALUES (3, 'c', 45.25)"),
    lambda db, store: store.remove(SMG.Iron, SMG.dangerLevel,
                                   Literal("low")),
    lambda db, store: db.execute("DELETE FROM landfill WHERE id = 1"),
    lambda db, store: db.execute("CREATE TABLE elem (x TEXT)"),
]

EXTRA_OPS = [  # applicable on top of *any* recovered prefix
    lambda db, store: db.execute("CREATE TABLE after_crash (v INTEGER)"),
    lambda db, store: db.execute("INSERT INTO after_crash VALUES (42)"),
    lambda db, store: store.add(SMG.Lead, SMG.dangerLevel,
                                Literal("high")),
]


def stack_digest(db: Database, store: TripleStore) -> tuple[str, str]:
    return (state_digest(database_state(db)),
            state_digest(store_state(store)))


def reference_digest(ops) -> tuple[str, str]:
    db, store = Database(), TripleStore()
    for op in ops:
        op(db, store)
    return stack_digest(db, store)


@pytest.fixture(scope="module")
def prefix_digests() -> list[tuple[str, str]]:
    """Digest of the never-crashed stack after every op prefix."""
    digests = [reference_digest(OPS[:k]) for k in range(len(OPS) + 1)]
    # Every op must change observable state, or digest→prefix lookups
    # would be ambiguous.
    assert len(set(digests)) == len(digests)
    return digests


def run_workload(directory: str, opener, snapshots_at=()) -> bool:
    """Apply OPS under durability; True if the simulated crash fired."""
    manager = DurabilityManager(DurabilityOptions(
        directory=directory, fsync="always", file_opener=opener))
    db, store = Database(), TripleStore()
    manager.attach_database(db, name="main")
    manager.attach_store(store, name="kb")
    crashed = False
    try:
        manager.recover()
        for index, op in enumerate(OPS):
            if index in snapshots_at:
                manager.snapshot()
            op(db, store)
    except CrashPoint:
        crashed = True
    try:
        manager.close()
    except CrashPoint:
        crashed = True
    return crashed


def recover_stack(directory: str):
    manager = DurabilityManager(DurabilityOptions(
        directory=directory, fsync="never"))
    db, store = Database(), TripleStore()
    manager.attach_database(db, name="main")
    manager.attach_store(store, name="kb")
    report = manager.recover()
    return manager, db, store, report


def record_boundaries(tmp_path, snapshots_at=()) -> list[int]:
    opener = FaultyOpener()
    crashed = run_workload(str(tmp_path / "clean"), opener, snapshots_at)
    assert not crashed
    assert opener.write_boundaries
    return crash_budgets(opener.write_boundaries)


# -- the matrix --------------------------------------------------------------


def test_crash_at_every_wal_boundary(tmp_path, prefix_digests):
    budgets = record_boundaries(tmp_path)
    saw_torn_frame = False
    saw_full_history = False
    for budget in budgets:
        directory = str(tmp_path / f"crash-{budget}")
        crashed = run_workload(directory, FaultyOpener(budget))
        assert crashed or budget == budgets[-1]
        manager, db, store, report = recover_stack(directory)
        digest = stack_digest(db, store)
        assert digest in prefix_digests, \
            f"budget {budget}: recovered state matches no op prefix"
        assert report.replay_errors == 0
        saw_torn_frame = saw_torn_frame or report.truncated_bytes > 0
        saw_full_history = saw_full_history or digest == prefix_digests[-1]
        manager.close()
    # The matrix must have exercised both a mid-frame tear and at least
    # one crash late enough that the whole history survived.
    assert saw_torn_frame
    assert saw_full_history


def test_crash_matrix_with_snapshots(tmp_path, prefix_digests):
    """Faults across two snapshot rotations, including mid-snapshot-write.

    A crash while the snapshot body is being written must fall back to
    the previous epoch (or plain WAL replay) with a longer tail — and
    still land on a consistent op prefix.
    """
    snapshots_at = (3, 7)
    budgets = record_boundaries(tmp_path, snapshots_at)
    observed_epochs = set()
    for budget in budgets:
        directory = str(tmp_path / f"crash-{budget}")
        run_workload(directory, FaultyOpener(budget), snapshots_at)
        manager, db, store, report = recover_stack(directory)
        assert stack_digest(db, store) in prefix_digests, \
            f"budget {budget}: recovered state matches no op prefix"
        assert report.replay_errors == 0
        observed_epochs.add(report.snapshot_epoch)
        manager.close()
    # Early crashes predate any snapshot; mid-range ones crash inside
    # the second snapshot write and fall back to epoch 1; late ones
    # recover from epoch 2.
    assert {None, 1, 2} <= observed_epochs


def test_writes_continue_after_recovery(tmp_path, prefix_digests):
    budgets = record_boundaries(tmp_path)
    for budget in budgets[:: max(1, len(budgets) // 5)]:
        directory = str(tmp_path / f"crash-{budget}")
        run_workload(directory, FaultyOpener(budget))
        manager, db, store, _report = recover_stack(directory)
        prefix = prefix_digests.index(stack_digest(db, store))
        for op in EXTRA_OPS:
            op(db, store)
        expected = reference_digest(OPS[:prefix] + EXTRA_OPS)
        assert stack_digest(db, store) == expected
        manager.close()
        # The post-recovery records are durable in their own right.
        manager2, db2, store2, report2 = recover_stack(directory)
        assert stack_digest(db2, store2) == expected
        assert report2.replay_errors == 0
        manager2.close()


def test_clean_shutdown_recovers_every_acknowledged_record(tmp_path):
    directory = str(tmp_path / "clean-close")
    crashed = run_workload(directory, FaultyOpener())
    assert not crashed
    manager, db, store, report = recover_stack(directory)
    assert stack_digest(db, store) == reference_digest(OPS)
    assert report.truncated_bytes == 0
    assert report.replay_errors == 0
    manager.close()


# -- the platform stack under the same harness -------------------------------

# One WAL record per op — the durability atomicity unit.  A compound
# platform call like ``register_user`` journals a "user" record plus a
# "context" record, and a crash *between* them legitimately recovers
# the half-applied compound; the matrix therefore enumerates the
# record-level steps.
PLATFORM_OPS = [
    lambda p: p.users.register("giulia", "Giulia", "polito", ["mining"]),
    lambda p: p.context.record_concepts("giulia", ["mining"], "declare"),
    lambda p: p.users.register("dirk", "Dirk", "tu-berlin", ["recycling"]),
    lambda p: p.context.record_concepts("dirk", ["recycling"], "declare"),
    lambda p: p.annotate_free("giulia", SMG.Mercury, SMG.dangerLevel,
                              Literal("high")),
    lambda p: p.accept_statement("dirk", 0),
    lambda p: p.register_stored_query(
        "danger", "SELECT ?s WHERE { ?s smg:dangerLevel ?o }", "giulia"),
    lambda p: p.add_document("d1", "Survey", "heavy metals", ["mercury"]),
    lambda p: p.context.record_resource("giulia", "table:landfill"),
]


def platform_prefix_digests() -> list[str]:
    digests = []
    for k in range(len(PLATFORM_OPS) + 1):
        platform = CrossePlatform(Database())
        for op in PLATFORM_OPS[:k]:
            op(platform)
        digests.append(state_digest(platform_state(platform)))
    assert len(set(digests)) == len(digests)
    return digests


def run_platform_workload(directory: str, opener) -> None:
    options = DurabilityOptions(directory=directory, fsync="always",
                                file_opener=opener)
    try:
        platform = CrossePlatform(Database(), durability=options)
        for op in PLATFORM_OPS:
            op(platform)
    except CrashPoint:
        return
    try:
        platform.durability.close()
    except CrashPoint:
        pass


def test_platform_crash_matrix(tmp_path):
    prefixes = platform_prefix_digests()
    opener = FaultyOpener()
    run_platform_workload(str(tmp_path / "clean"), opener)
    assert not opener.crashed
    for budget in crash_budgets(opener.write_boundaries):
        directory = str(tmp_path / f"crash-{budget}")
        run_platform_workload(directory, FaultyOpener(budget))
        platform = CrossePlatform(
            Database(),
            durability=DurabilityOptions(directory=directory,
                                         fsync="never"))
        digest = state_digest(platform_state(platform))
        assert digest in prefixes, \
            f"budget {budget}: platform state matches no op prefix"
        assert platform.durability.last_recovery.replay_errors == 0
        platform.durability.close()
