"""The versioned REST surface: routing, errors, pagination, batch.

Covers the route table, the structured error envelope on every failure
path (400/404/405/422), pagination-token round trips on list and query
endpoints, and the concurrent batch endpoint running through the
session pool.
"""

from __future__ import annotations

import pytest

from repro.crosse.platform import CrossePlatform
from repro.federation import CrosseRestService, RestError
from repro.federation.rest import RestRouter
from repro.smartground.datagen import SmartGroundConfig, generate_databank


@pytest.fixture
def service():
    platform = CrossePlatform(
        generate_databank(SmartGroundConfig(n_landfills=12, seed=7)))
    service = CrosseRestService(platform, pool_capacity=4)
    yield service
    service.close()


def _register_users(service, names):
    for name in names:
        response = service.request("POST", "/api/v1/users",
                                   {"username": name})
        assert response.status == 200


# -- route table ---------------------------------------------------------------


def test_route_table_lists_both_generations(service):
    response = service.request("GET", "/api/v1/routes")
    assert response.status == 200
    routes = {(entry["method"], entry["path"])
              for entry in response.payload["routes"]}
    assert ("POST", "/api/sesql") in routes               # legacy kept
    assert ("POST", "/api/v1/query") in routes
    assert ("POST", "/api/v1/batch") in routes
    assert ("GET", "/api/v1/annotations/{username}") in routes


# -- error paths ---------------------------------------------------------------


def test_404_uses_structured_envelope(service):
    response = service.request("GET", "/api/v1/nothing")
    assert response.status == 404
    error = response.payload["error"]
    assert error["code"] == "not_found"
    assert "/api/v1/nothing" in error["message"]


def test_405_lists_allowed_methods(service):
    response = service.request("DELETE", "/api/v1/users")
    assert response.status == 405
    assert response.payload["allow"] == ["GET", "POST"]
    assert response.payload["error"]["code"] == "method_not_allowed"
    assert response.payload["error"]["detail"]["allow"] == ["GET", "POST"]


def test_405_on_legacy_routes_too(service):
    response = service.request("PUT", "/api/sesql")
    assert response.status == 405
    assert response.payload["allow"] == ["POST"]


def test_400_missing_field(service):
    response = service.request("POST", "/api/v1/users", {})
    assert response.status == 400
    assert response.payload["error"]["code"] == "missing_field"
    assert "username" in response.payload["error"]["message"]


def test_400_bad_limit(service):
    _register_users(service, ["anna"])
    for bad in ("0", "-3", "nope", str(10_000)):
        response = service.request("GET", f"/api/v1/users?limit={bad}")
        assert response.status == 400
        assert response.payload["error"]["code"] == "invalid_limit"


def test_422_handler_error(service):
    _register_users(service, ["anna"])
    response = service.request("POST", "/api/v1/query", {
        "username": "anna", "query": "SELECT FROM WHERE"})
    assert response.status == 422
    assert response.payload["error"]["code"] == "unprocessable"


def test_rest_error_maps_status_and_detail():
    router = RestRouter()

    def boom(_params, _body):
        raise RestError("gone", status=410, code="gone",
                        detail={"hint": "x"})

    router.register("GET", "/boom", boom)
    response = router.handle("GET", "/boom")
    assert response.status == 410
    assert response.payload["error"] == {
        "code": "gone", "message": "gone", "detail": {"hint": "x"}}


# -- pagination ----------------------------------------------------------------


def test_user_listing_paginates_round_trip(service):
    names = [f"user{i:02d}" for i in range(7)]
    _register_users(service, names)
    seen, token = [], None
    for _ in range(10):
        path = "/api/v1/users?limit=3"
        if token:
            path += f"&next_token={token}"
        response = service.request("GET", path)
        assert response.status == 200
        seen.extend(response.payload["users"])
        token = response.payload["next_token"]
        if token is None:
            break
    assert seen == sorted(names)


def test_query_pagination_round_trip_matches_single_shot(service):
    _register_users(service, ["anna"])
    query = "SELECT name FROM landfill ORDER BY name"
    single = service.request("POST", "/api/v1/query", {
        "username": "anna", "query": query, "limit": 100})
    assert single.status == 200
    assert single.payload["next_token"] is None

    paged, token = [], None
    for _ in range(20):
        body = {"username": "anna", "query": query, "limit": 5}
        if token:
            body["next_token"] = token
        response = service.request("POST", "/api/v1/query", body)
        assert response.status == 200
        assert response.payload["columns"] == single.payload["columns"]
        paged.extend(response.payload["rows"])
        token = response.payload["next_token"]
        if token is None:
            break
    assert paged == single.payload["rows"]


def test_query_token_bound_to_request(service):
    _register_users(service, ["anna", "bob"])
    first = service.request("POST", "/api/v1/query", {
        "username": "anna", "query": "SELECT name FROM landfill",
        "limit": 2})
    token = first.payload["next_token"]
    assert token is not None
    # Same token, different user: rejected instead of paginating the
    # wrong result.
    response = service.request("POST", "/api/v1/query", {
        "username": "bob", "query": "SELECT name FROM landfill",
        "limit": 2, "next_token": token})
    assert response.status == 400
    assert response.payload["error"]["code"] == "invalid_cursor"


def test_annotation_listing_paginates(service):
    # Exploration lists statements authored by *other* users, so anna
    # annotates and bob paginates.
    _register_users(service, ["anna", "bob"])
    for index in range(5):
        response = service.request("POST", "/api/v1/annotations", {
            "username": "anna", "subject": f"Elem{index}",
            "property": "dangerLevel", "object": "high"})
        assert response.status == 200
    response = service.request("GET", "/api/v1/annotations/bob?limit=2")
    assert response.status == 200
    assert len(response.payload["annotations"]) == 2
    assert response.payload["next_token"] is not None


# -- batch ----------------------------------------------------------------------


def test_batch_runs_independent_requests(service):
    _register_users(service, ["anna", "bob"])
    response = service.request("POST", "/api/v1/batch", {"requests": [
        {"method": "GET", "path": "/api/v1/users?limit=10"},
        {"method": "POST", "path": "/api/v1/query",
         "body": {"username": "anna",
                  "query": "SELECT COUNT(*) AS n FROM landfill"}},
        {"method": "POST", "path": "/api/v1/query",
         "body": {"username": "bob",
                  "query": "SELECT COUNT(*) AS n FROM landfill"}},
        {"method": "GET", "path": "/api/v1/missing"},
    ]})
    assert response.status == 200
    statuses = [entry["status"]
                for entry in response.payload["responses"]]
    assert statuses == [200, 200, 200, 404]
    bodies = response.payload["responses"]
    assert bodies[0]["body"]["users"] == ["anna", "bob"]
    assert bodies[1]["body"]["rows"] == bodies[2]["body"]["rows"]
    assert service.pool.stats()["checkouts"] >= 2


def test_batch_mutations_are_in_order_barriers(service):
    """A query after a mutation in the same batch observes it: reads
    run concurrently only within waves between mutating requests."""
    response = service.request("POST", "/api/v1/batch", {"requests": [
        {"method": "POST", "path": "/api/v1/users",
         "body": {"username": "anna"}},
        {"method": "GET", "path": "/api/v1/users?limit=10"},
        {"method": "POST", "path": "/api/v1/users",
         "body": {"username": "bob"}},
        {"method": "GET", "path": "/api/v1/users?limit=10"},
    ]})
    assert [entry["status"]
            for entry in response.payload["responses"]] == [200] * 4
    bodies = response.payload["responses"]
    assert bodies[1]["body"]["users"] == ["anna"]
    assert bodies[3]["body"]["users"] == ["anna", "bob"]


def test_batch_rejects_nesting_and_bad_entries(service):
    response = service.request("POST", "/api/v1/batch", {"requests": [
        {"method": "POST", "path": "/api/v1/batch", "body": {}}]})
    assert response.status == 400
    assert response.payload["error"]["code"] == "invalid_batch"

    response = service.request("POST", "/api/v1/batch",
                               {"requests": ["nope"]})
    assert response.status == 400

    response = service.request("POST", "/api/v1/batch", {"requests": []})
    assert response.status == 200
    assert response.payload["responses"] == []


def test_batch_requires_requests_field(service):
    response = service.request("POST", "/api/v1/batch", {})
    assert response.status == 400
    assert response.payload["error"]["code"] == "missing_field"
