"""Property-based tests (hypothesis) on core invariants.

Covers: 3-valued logic laws, value comparison consistency, LIKE vs a
regex model, SQL engine vs a naive Python evaluator, expression
render/parse round-trips, triple-store index coherence, Turtle and
N-Triples round-trips, condition-tag scanning, and enrichment row-count
invariants.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResourceMapping, JoinManager, scan_condition_tags
from repro.core.ast import SchemaExtension, BoolSchemaExtension
from repro.core.sqm import Extraction
from repro.rdf import (IRI, Literal, Triple, TripleStore, parse_ntriples,
                       parse_turtle, serialize_ntriples, serialize_turtle)
from repro.relational import Database, ResultSet, parse_expr, render_expr
from repro.relational.ast import node_key
from repro.relational.compiler import like_match
from repro.relational.types import (and3, compare_values, not3, or3,
                                    values_equal)

# -- 3VL laws -----------------------------------------------------------------

tv = st.sampled_from([True, False, None])


@given(tv, tv)
def test_and3_commutative(a, b):
    assert and3(a, b) == and3(b, a)


@given(tv, tv)
def test_or3_commutative(a, b):
    assert or3(a, b) == or3(b, a)


@given(tv, tv)
def test_de_morgan(a, b):
    assert not3(and3(a, b)) == or3(not3(a), not3(b))
    assert not3(or3(a, b)) == and3(not3(a), not3(b))


@given(tv)
def test_double_negation(a):
    assert not3(not3(a)) == a


@given(tv, tv, tv)
def test_and3_associative(a, b, c):
    assert and3(and3(a, b), c) == and3(a, and3(b, c))


# -- value comparison ------------------------------------------------------------

scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6),
    st.text(max_size=12))


@given(scalars, scalars)
def test_values_equal_symmetric(a, b):
    assert values_equal(a, b) == values_equal(b, a)


@given(scalars)
def test_values_equal_reflexive_for_non_null(a):
    expected = None if a is None else True
    assert values_equal(a, a) is expected


@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
def test_compare_values_is_total_order_on_ints(a, b):
    result = compare_values(a, b)
    assert result == (a > b) - (a < b)


@given(st.floats(allow_nan=False, allow_infinity=False), st.integers())
def test_compare_values_cross_numeric(a, b):
    result = compare_values(a, b)
    assert (result < 0) == (a < b)


# -- LIKE vs a reference model -------------------------------------------------------

@given(st.text(alphabet="ab%_c", max_size=8),
       st.text(alphabet="abc", max_size=8))
def test_like_matches_naive_model(pattern, text):
    import re
    regex = "^" + "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern) + "$"
    expected = re.match(regex, text, re.DOTALL) is not None
    assert like_match(text, pattern) == expected


# -- engine vs naive evaluator ----------------------------------------------------------

rows_strategy = st.lists(
    st.tuples(st.integers(-50, 50),
              st.sampled_from(["x", "y", "z", None])),
    min_size=0, max_size=30)


@given(rows_strategy, st.integers(-50, 50))
@settings(max_examples=40, deadline=None)
def test_where_filter_matches_python(rows, threshold):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    for a, b in rows:
        db.table("t").insert_row({"a": a, "b": b})
    got = sorted(db.query(
        f"SELECT a FROM t WHERE a > {threshold}").rows)
    expected = sorted((a,) for a, _b in rows
                      if a is not None and a > threshold)
    assert got == expected


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_group_count_matches_python(rows):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    for a, b in rows:
        db.table("t").insert_row({"a": a, "b": b})
    got = dict(db.query(
        "SELECT b, COUNT(*) FROM t GROUP BY b").rows)
    expected: dict = {}
    for _a, b in rows:
        expected[b] = expected.get(b, 0) + 1
    assert got == expected


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_order_by_sorts_non_nulls(rows):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    for a, b in rows:
        db.table("t").insert_row({"a": a, "b": b})
    got = [row[0] for row in db.query(
        "SELECT a FROM t ORDER BY a").rows]
    assert got == sorted(got, key=lambda v: (v is None, v if v is not None
                                             else 0))


# -- expression render/parse round trip ----------------------------------------------------

expr_text = st.sampled_from([
    "a + b * 2", "NOT (a = 1 OR b < 3)", "x BETWEEN 1 AND 9",
    "name LIKE 'a%'", "c IS NOT NULL", "COALESCE(a, b, 0)",
    "CASE WHEN a > 0 THEN 'p' ELSE 'n' END",
    "x IN (1, 2, 3)", "CAST(a AS TEXT) || 'x'", "-a % 3",
])


@given(expr_text)
def test_render_parse_fixpoint(text):
    parsed = parse_expr(text)
    rendered = render_expr(parsed)
    reparsed = parse_expr(rendered)
    assert node_key(parsed) == node_key(reparsed)
    # Rendering is a fixpoint after one normalisation pass.
    assert render_expr(reparsed) == rendered


# -- triple store invariants ---------------------------------------------------------------

iris = st.integers(0, 20).map(lambda i: IRI(f"http://x/{i}"))
literals = st.one_of(st.integers(-5, 5), st.text(max_size=4),
                     st.booleans()).map(Literal)
terms = st.one_of(iris, literals)
triples = st.builds(Triple, iris, iris, terms)


@given(st.lists(triples, max_size=40))
def test_store_size_equals_distinct_triples(batch):
    store = TripleStore()
    store.add_all(batch)
    assert len(store) == len(set(batch))
    assert set(store.triples()) == set(batch)


@given(st.lists(triples, max_size=40))
def test_indexes_agree_on_every_pattern(batch):
    full = TripleStore()
    full.add_all(batch)
    reduced = TripleStore(indexing="spo")
    reduced.add_all(batch)
    for triple in batch[:5]:
        for pattern in [(triple.subject, None, None),
                        (None, triple.predicate, None),
                        (None, None, triple.object),
                        (triple.subject, triple.predicate, None)]:
            assert set(full.triples(*pattern)) \
                == set(reduced.triples(*pattern))


@given(st.lists(triples, max_size=30), st.lists(triples, max_size=30))
def test_union_is_set_union(left_batch, right_batch):
    left = TripleStore()
    left.add_all(left_batch)
    right = TripleStore()
    right.add_all(right_batch)
    merged = left.union(right)
    assert set(merged.triples()) == set(left_batch) | set(right_batch)


@given(st.lists(triples, max_size=30))
def test_remove_inverts_add(batch):
    store = TripleStore()
    store.add_all(batch)
    for triple in batch:
        store.remove(triple)
    assert len(store) == 0
    assert store._spo == {} and store._pos == {} and store._osp == {}


# -- serialization round trips ----------------------------------------------------------------

safe_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=10)
safe_literals = st.one_of(
    st.integers(-99, 99),
    st.booleans(),
    safe_text,
).map(Literal)
safe_triples = st.builds(Triple, iris, iris,
                         st.one_of(iris, safe_literals))


@given(st.lists(safe_triples, max_size=25))
def test_turtle_round_trip(batch):
    store = TripleStore()
    store.add_all(batch)
    again = parse_turtle(serialize_turtle(store))
    assert set(again.triples()) == set(store.triples())


@given(st.lists(safe_triples, max_size=25))
def test_ntriples_round_trip(batch):
    store = TripleStore()
    store.add_all(batch)
    again = parse_ntriples(serialize_ntriples(store))
    assert set(again.triples()) == set(store.triples())


# -- condition tags ------------------------------------------------------------------------------

cond_ids = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)


@given(st.lists(cond_ids, min_size=1, max_size=4, unique=True))
def test_scan_extracts_every_tag(ids):
    conditions = [f"${{a{i} = {i}:{cid}}}" for i, cid in enumerate(ids)]
    text = "SELECT x FROM t WHERE " + " AND ".join(conditions)
    scan = scan_condition_tags(text)
    assert set(scan.conditions) == set(ids)
    assert "${" not in scan.clean_text
    from repro.relational import parse_sql
    parse_sql(scan.clean_text)  # cleaned text is valid SQL


# -- enrichment invariants --------------------------------------------------------------------------

subjects = st.lists(st.sampled_from(["Hg", "Pb", "Fe", "Cu", "Zn"]),
                    min_size=0, max_size=25)
pair_lists = st.lists(
    st.tuples(st.sampled_from(["Hg", "Pb", "Fe"]),
              st.sampled_from(["low", "high"])),
    max_size=10)


@given(subjects, pair_lists, st.sampled_from(["tempdb", "direct"]))
@settings(max_examples=30, deadline=None)
def test_extension_row_count_invariant(values, pairs, strategy):
    """Each base row yields max(1, matches) output rows; none are lost."""
    base = ResultSet(["elem"], [(value,) for value in values])
    mapping = ResourceMapping()
    extraction = Extraction("", pairs=[
        (mapping.to_term("elem", s), Literal(o)) for s, o in pairs])
    manager = JoinManager(mapping, strategy)
    outcome = manager.combine(base, SchemaExtension("elem", "p"),
                              extraction)
    match_counts = {}
    for s, _o in pairs:
        match_counts[s] = match_counts.get(s, 0) + 1
    expected = sum(max(1, match_counts.get(value, 0)) for value in values)
    assert len(outcome.result.rows) == expected
    produced_subjects = [row[0] for row in outcome.result.rows]
    assert set(produced_subjects) == set(values)


@given(subjects, st.sets(st.sampled_from(["Hg", "Pb", "Fe"])),
       st.sampled_from(["tempdb", "direct"]))
@settings(max_examples=30, deadline=None)
def test_boolean_extension_preserves_rows_exactly(values, flagged,
                                                  strategy):
    base = ResultSet(["elem"], [(value,) for value in values])
    mapping = ResourceMapping()
    extraction = Extraction("", subjects={
        mapping.to_term("elem", s) for s in flagged})
    manager = JoinManager(mapping, strategy)
    outcome = manager.combine(
        base, BoolSchemaExtension("elem", "isA", "Hazard"), extraction)
    assert len(outcome.result.rows) == len(values)
    for value, row in zip(values, outcome.result.rows):
        assert row[-1] == (value in flagged)
