"""Cost-based planner: statistics, estimation, rewrites, join ordering,
EXPLAIN (ANALYZE) and the index/NULL normalization regressions."""

from __future__ import annotations

import pytest

from repro.planner import (PlannerOptions, StatisticsCatalog, plan_select)
from repro.planner.estimate import (equality_selectivity,
                                    range_selectivity)
from repro.planner.rewrite import fold_expr
from repro.relational import Database
from repro.relational.ast import Literal
from repro.relational.indexes import _normalize
from repro.relational.parser import parse_expr, parse_sql
from repro.relational.render import render_expr, render_query
from repro.relational.types import values_equal

STRICT = PlannerOptions(strict=True)
OFF = PlannerOptions(enabled=False)


def make_db(planner: PlannerOptions = STRICT) -> Database:
    db = Database(planner=planner)
    db.execute_script("""
        CREATE TABLE fact (id INTEGER PRIMARY KEY, mid_id INTEGER,
                           amount REAL);
        CREATE TABLE mid (id INTEGER PRIMARY KEY, dim_id INTEGER);
        CREATE TABLE dim (id INTEGER PRIMARY KEY, kind TEXT);
        CREATE INDEX idx_fact_mid ON fact (mid_id);
    """)
    for i in range(300):
        db.table("fact").insert_row(
            {"id": i, "mid_id": i % 30, "amount": float(i % 7)})
    for i in range(30):
        db.table("mid").insert_row({"id": i, "dim_id": i % 6})
    for i in range(6):
        db.table("dim").insert_row(
            {"id": i, "kind": "rare" if i == 0 else "common"})
    return db


SKEWED = ("SELECT fact.id FROM fact "
          "JOIN mid ON fact.mid_id = mid.id "
          "JOIN dim ON mid.dim_id = dim.id "
          "WHERE dim.kind = 'rare'")


# -- normalization regressions (index vs executor semantics) ----------------


def test_normalize_is_exact_beyond_float_precision():
    big = 2 ** 53
    assert _normalize(big) != _normalize(big + 1)
    assert values_equal(big, big + 1) is False
    assert values_equal(big, float(big)) is True
    assert _normalize(big) == _normalize(float(big))


def test_normalize_null_and_type_families():
    assert _normalize(None) == ("null",)
    assert _normalize(None) != _normalize(0)
    assert _normalize(True) != _normalize(1)   # 1 = TRUE is false in SQL
    assert _normalize(1) == _normalize(1.0)


def test_index_lookup_agrees_with_equality_for_big_integers():
    db = Database(planner=OFF)
    db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
    db.execute("CREATE INDEX idx_k ON t (k)")
    big = 2 ** 53
    db.execute(f"INSERT INTO t VALUES ({big}, 'a'), ({big + 1}, 'b')")
    # The single-table index fast path must not collapse the two keys.
    assert db.query(f"SELECT v FROM t WHERE k = {big}").rows == [("a",)]
    assert db.query(f"SELECT v FROM t WHERE k = {big + 1}").rows \
        == [("b",)]


def test_index_skips_null_keys_and_mixed_numerics():
    db = Database(planner=OFF)
    db.execute("CREATE TABLE t (k REAL, v TEXT)")
    db.execute("CREATE INDEX idx_k ON t (k)")
    db.execute("INSERT INTO t VALUES (1.0, 'one'), (NULL, 'null')")
    index = db.table("t").indexes["idx_k"]
    assert index.lookup((1,)) == index.lookup((1.0,)) != set()
    assert index.lookup((None,)) == set()
    assert db.query("SELECT v FROM t WHERE k = 1").rows == [("one",)]


# -- statistics catalog ------------------------------------------------------


def test_analyze_collects_counts_distinct_minmax_histogram():
    db = make_db()
    (stats,) = db.analyze("fact")
    assert stats.row_count == 300
    column = stats.column("mid_id")
    assert column.distinct == 30
    assert column.min_value == 0 and column.max_value == 29
    assert column.histogram is not None
    assert column.histogram.total == 300


def test_stats_maintained_incrementally_on_dml():
    db = make_db()
    db.execute("ANALYZE dim")
    stats = db.stats.get("dim")
    assert stats.row_count == 6
    db.execute("INSERT INTO dim VALUES (99, 'new-kind')")
    assert stats.row_count == 7
    assert stats.column("id").max_value == 99
    db.execute("DELETE FROM dim WHERE id = 99")
    assert stats.row_count == 6
    db.execute("DROP TABLE dim")
    assert db.stats.get("dim") is None


def test_analyze_statement_covers_all_tables():
    db = make_db()
    db.execute("ANALYZE")
    assert set(name.lower() for name in db.stats.table_names()) \
        == {"fact", "mid", "dim"}


# -- estimation --------------------------------------------------------------


def test_equality_and_range_selectivity_use_stats():
    db = make_db()
    db.analyze()
    column = db.stats.get("fact").column("mid_id")
    eq = equality_selectivity(column, 3)
    assert 0.01 <= eq <= 0.1          # ~1/30
    assert equality_selectivity(column, 10_000) <= 0.001  # out of range
    low = range_selectivity(column, "<", 3)
    high = range_selectivity(column, "<", 27)
    assert low < high <= 1.0


# -- logical rewrites --------------------------------------------------------


def test_constant_folding_simplifies_literal_math_and_booleans():
    assert fold_expr(parse_expr("1 + 2 * 3")) == Literal(7)
    assert fold_expr(parse_expr("1 = 1 AND 2 > 3")) == Literal(False)
    assert fold_expr(parse_expr("FALSE AND a = 1")) == Literal(False)
    assert fold_expr(parse_expr("TRUE AND a = 1")) == parse_expr("a = 1")
    # Runtime errors must not be hoisted to plan time.
    assert render_expr(fold_expr(parse_expr("1 / 0"))) == "(1 / 0)"


def test_predicate_pushdown_moves_filter_below_join():
    db = make_db()
    db.analyze()
    planned = db.explain(SKEWED)
    rendered = render_query(planned.query)
    assert "SELECT" in rendered
    # The dim filter became a derived-table wrapper under the join.
    assert "(SELECT" in rendered and "WHERE (dim.kind = 'rare')" in rendered
    kinds = [node.kind for node in planned.root.walk()]
    assert "filter" in kinds


def test_join_reorder_starts_from_the_selective_relation():
    db = make_db()
    db.analyze()
    planned = db.explain(SKEWED)
    assert planned.reordered
    note = next(note for note in planned.notes
                if note.startswith("join order"))
    # fact (10x larger) must not be the driving relation any more.
    assert not note.startswith("join order: fact")


def test_planned_and_unplanned_results_agree_on_the_skewed_join():
    on = make_db(STRICT)
    on.analyze()
    off = make_db(OFF)
    assert sorted(on.query(SKEWED).rows) == sorted(off.query(SKEWED).rows)


def test_left_join_is_not_reordered_and_null_side_not_pushed():
    # IS NULL over the nullable side is exactly the predicate an unsafe
    # pushdown would corrupt (filtered rows would turn into padding).
    sql = ("SELECT dim.id, mid.id FROM dim "
           "LEFT JOIN mid ON dim.id = mid.dim_id AND mid.id > 20 "
           "WHERE mid.id IS NULL")
    results = []
    for options in (STRICT, OFF):
        db = make_db(options)
        db.analyze()
        results.append(sorted(db.query(sql).rows))
    assert results[0] == results[1]


def test_star_select_column_order_survives_reordering():
    on = make_db(STRICT)
    on.analyze()
    off = make_db(OFF)
    sql = ("SELECT * FROM fact JOIN mid ON fact.mid_id = mid.id "
           "JOIN dim ON mid.dim_id = dim.id WHERE dim.kind = 'rare'")
    a, b = on.query(sql), off.query(sql)
    assert a.columns == b.columns
    assert sorted(a.rows) == sorted(b.rows)


def test_projection_pruning_narrows_derived_tables():
    db = make_db()
    planned = db.explain(
        "SELECT s.id FROM (SELECT id, amount, mid_id FROM fact) AS s "
        "JOIN mid ON s.mid_id = mid.id")
    rendered = render_query(planned.query)
    assert "amount" not in rendered


# -- physical join strategies ------------------------------------------------


def test_equi_join_probes_inner_index():
    db = make_db()
    db.analyze()
    planned = db.explain(SKEWED, analyze=True)
    kinds = {node.kind for node in planned.root.walk()}
    assert "index-join" in kinds
    # The probed side is never scanned: its scan counter stays unset.
    fact_scan = next(node for node in planned.root.walk()
                     if node.kind == "scan" and "fact" in node.label)
    assert fact_scan.actual_rows is None


def test_index_probe_join_matches_hash_join_results():
    with_probe = make_db(STRICT)
    with_probe.analyze()
    no_probe = make_db(STRICT.replace(index_probe_joins=False))
    no_probe.analyze()
    sql = ("SELECT fact.id, mid.dim_id FROM mid "
           "JOIN fact ON fact.mid_id = mid.id WHERE mid.dim_id = 2")
    assert sorted(with_probe.query(sql).rows) \
        == sorted(no_probe.query(sql).rows)


def test_left_join_with_index_probe_pads_unmatched_rows():
    db = Database(planner=STRICT)
    db.execute_script("""
        CREATE TABLE big (k INTEGER, v INTEGER);
        CREATE INDEX idx_big_k ON big (k);
        CREATE TABLE probe_left (k INTEGER);
    """)
    for i in range(200):
        db.table("big").insert_row({"k": i % 100, "v": i})
    for k in (1, 2, 999):
        db.table("probe_left").insert_row({"k": k})
    rows = db.query(
        "SELECT probe_left.k, big.v FROM probe_left "
        "LEFT JOIN big ON probe_left.k = big.k").rows
    assert (999, None) in rows
    assert len([row for row in rows if row[0] == 1]) == 2


# -- EXPLAIN (ANALYZE) -------------------------------------------------------


def test_explain_analyze_reports_estimated_and_actual_rows():
    db = make_db()
    db.analyze()
    planned = db.explain(SKEWED, analyze=True)
    operators = list(planned.root.walk())
    with_both = [node for node in operators
                 if node.est_rows is not None
                 and node.actual_rows is not None]
    assert len(with_both) >= 3
    formatted = planned.format()
    assert "est=" in formatted and "actual=" in formatted


def test_explain_without_analyze_runs_nothing():
    db = make_db()
    db.analyze()
    planned = db.explain(SKEWED)
    assert all(node.actual_rows is None
               for node in planned.root.walk())


def test_plain_execution_skips_row_counters():
    db = make_db()
    db.query(SKEWED)
    assert db.last_plan is not None
    joins = [node for node in db.last_plan.root.walk()
             if node.kind.endswith("-join")]
    assert joins and all(node.actual_rows is None for node in joins)


def test_explain_requires_a_select():
    db = make_db()
    with pytest.raises(Exception):
        db.explain("DELETE FROM dim")


def test_planner_failure_degrades_to_as_written(monkeypatch):
    db = make_db(PlannerOptions())  # strict off: failures must not raise
    import repro.planner.plan as plan_module

    def boom(*args, **kwargs):
        raise RuntimeError("injected planner bug")
    monkeypatch.setattr(plan_module, "_plan_query", boom)
    result = db.query(SKEWED)
    assert len(result.rows) == 50
    assert any("planning failed" in note for note in db.last_plan.notes)


# -- session explain surfaces the databank plan ------------------------------


def test_session_explain_includes_db_operators():
    import repro

    db = make_db()
    db.analyze()
    session = repro.connect(db)
    plan = session.explain("SELECT fact.id FROM fact "
                           "JOIN mid ON fact.mid_id = mid.id "
                           "WHERE mid.dim_id = 1", analyze=True)
    assert plan.db_plan is not None
    assert any(node.actual_rows is not None for node in plan.operators())
    assert "databank operators" in plan.format()


def test_parse_sql_supports_analyze_statement():
    stmt = parse_sql("ANALYZE fact")
    from repro.relational.ast import AnalyzeStmt
    assert stmt == AnalyzeStmt("fact")
    assert parse_sql("ANALYZE") == AnalyzeStmt(None)


def test_sorted_index_probe_reverifies_float_collapsed_keys():
    # SortedIndex coerces keys to float, collapsing ints beyond 2**53;
    # the probe join must re-verify candidates with exact equality.
    db = Database(planner=STRICT)
    db.execute_script("""
        CREATE TABLE t (id INTEGER);
        CREATE INDEX ix_t ON t (id) USING sorted;
        CREATE TABLE u (id INTEGER);
    """)
    big = 2 ** 53
    for i in range(70):          # above INDEX_PROBE_THRESHOLD
        db.table("t").insert_row({"id": i})
    db.table("t").insert_row({"id": big})
    db.table("t").insert_row({"id": big + 1})
    db.table("u").insert_row({"id": big + 1})
    rows = db.query("SELECT t.id FROM u JOIN t ON u.id = t.id").rows
    assert rows == [(big + 1,)]


def test_last_plan_resets_when_planner_toggled_off():
    db = make_db()
    db.query(SKEWED)
    assert db.last_plan is not None
    db.planner = db.planner.replace(enabled=False)
    db.query(SKEWED)
    assert db.last_plan is None
