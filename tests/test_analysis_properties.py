"""Property-based tests (hypothesis) for the query analyzer.

The analyzer's severity taxonomy is a *promise*: an ``E-`` diagnostic
means the executor is certain to reject the statement, while warnings
never block anything.  Random queries check both directions of that
promise against the real engine:

* soundness — a statement that executes successfully never carries an
  error-severity diagnostic;
* the reported direction — a statement the analyzer marks with errors
  really is rejected by the executor;
* totality — the analyzer itself never raises, even on garbage input.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_sql
from repro.relational import Database


def build_db() -> Database:
    db = Database("props")
    db.execute_script("""
        CREATE TABLE t (a INTEGER, b TEXT, c REAL);
        CREATE TABLE u (a INTEGER, d TEXT);
        CREATE INDEX idx_t_b ON t (b);
        INSERT INTO t (a, b, c) VALUES (1, 'x', 0.5);
        INSERT INTO t (a, b, c) VALUES (2, 'y', 1.5);
        INSERT INTO u (a, d) VALUES (1, 'z');
    """)
    return db


#: Read-only throughout: every generated statement is a SELECT.
DB = build_db()

COLUMNS = {"t": ["a", "b", "c"], "u": ["a", "d"]}

literals = st.one_of(
    st.integers(-5, 5).map(str),
    st.sampled_from(["0.5", "'x'", "'zz'", "NULL", "TRUE"]))

operators = st.sampled_from(["=", "<>", "<", ">", "<=", ">="])


@st.composite
def select_queries(draw) -> str:
    """A SELECT that may or may not be valid — names are sometimes
    wrong, types sometimes clash, ordinals sometimes out of range."""
    table = draw(st.sampled_from(["t", "u", "t, u", "t AS s"]))
    base = "s" if "AS" in table else table.split(",")[0]
    pool = COLUMNS[base if base in COLUMNS else "t"] + ["nope"]
    items = draw(st.one_of(
        st.just("*"),
        st.just("COUNT(*)"),
        st.lists(st.sampled_from(pool), min_size=1, max_size=3)
          .map(", ".join),
        st.sampled_from(pool).map(lambda c: f"UPPER({c})")))
    sql = f"SELECT {items} FROM {table}"
    if draw(st.booleans()):
        column = draw(st.sampled_from(pool))
        sql += (f" WHERE {column} {draw(operators)} {draw(literals)}")
    if draw(st.booleans()):
        sql += f" ORDER BY {draw(st.integers(0, 4))}"
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(0, 10))}"
    return sql


@given(select_queries())
@settings(max_examples=200, deadline=None)
def test_executing_statements_carry_no_errors(sql):
    try:
        DB.execute(sql)
    except Exception:
        return                     # invalid statements checked below
    report = analyze_sql(sql, DB)
    assert not report.has_errors, \
        f"{sql!r} executed fine but analyzer said:\n{report.format()}"


@given(select_queries())
@settings(max_examples=200, deadline=None)
def test_error_diagnostics_mean_execution_fails(sql):
    report = analyze_sql(sql, DB)
    if not report.has_errors:
        return
    try:
        DB.execute(sql)
    except Exception:
        return
    raise AssertionError(
        f"{sql!r} got {sorted(report.codes())} but executed fine")


@given(select_queries())
@settings(max_examples=100, deadline=None)
def test_analyzer_is_total_on_generated_queries(sql):
    report = analyze_sql(sql, DB)
    assert report.to_dict()["statement"]


@given(st.text(
    alphabet="SELECT FROM WHERE()*,'=<>;-%?abct123 \n", max_size=80))
@settings(max_examples=150, deadline=None)
def test_analyzer_is_total_on_garbage(text):
    report = analyze_sql(text, DB)
    for diagnostic in report:
        assert diagnostic.code
