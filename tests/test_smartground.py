"""SmartGround generators: determinism, shape, workload executability."""

import pytest

from repro.core import SESQLEngine, StoredQueryRegistry
from repro.rdf import SMG
from repro.smartground import (DANGER_QUERY_SPARQL, HAZARDOUS,
                               PAPER_EXAMPLES, SQL_BASELINES,
                               SmartGroundConfig, WORKLOAD,
                               assemblage_ontology, city_planner_kb,
                               generate_databank, hazard_ontology,
                               lab_ontology, regulation_ontology,
                               researcher_kb, synthetic_kb, TABLES)


@pytest.fixture(scope="module")
def databank():
    return generate_databank(SmartGroundConfig(n_landfills=25, seed=42))


def test_all_tables_populated(databank):
    for table in TABLES:
        assert len(databank.table(table)) > 0, table


def test_generation_is_deterministic():
    config = SmartGroundConfig(n_landfills=10, seed=7)
    first = generate_databank(config)
    second = generate_databank(config)
    rows_first = first.query(
        "SELECT * FROM elem_contained ORDER BY landfill_name, elem_name")
    rows_second = second.query(
        "SELECT * FROM elem_contained ORDER BY landfill_name, elem_name")
    assert rows_first.rows == rows_second.rows


def test_different_seeds_differ():
    first = generate_databank(SmartGroundConfig(n_landfills=10, seed=1))
    second = generate_databank(SmartGroundConfig(n_landfills=10, seed=2))
    assert first.query("SELECT city FROM landfill ORDER BY id").rows != \
        second.query("SELECT city FROM landfill ORDER BY id").rows


def test_referential_shape(databank):
    """Every contained element references an existing landfill."""
    orphans = databank.query("""
        SELECT COUNT(*) FROM elem_contained e
        WHERE NOT EXISTS (SELECT 1 FROM landfill l
                          WHERE l.name = e.landfill_name)""")
    assert orphans.scalar() == 0


def test_occurrence_skew(databank):
    """Early pool materials (Mercury, Lead...) occur more than the tail."""
    counts = databank.query("""
        SELECT elem_name, COUNT(*) AS n FROM elem_contained
        GROUP BY elem_name ORDER BY n DESC""")
    top = counts.rows[0][1]
    bottom = counts.rows[-1][1]
    assert top > bottom


def test_hazard_ontology_contents():
    kb = hazard_ontology()
    assert kb.count(SMG.Mercury, SMG.isA, SMG.HazardousWaste) == 1
    assert kb.count(None, SMG.dangerLevel, None) == len(HAZARDOUS)


def test_assemblage_is_symmetric():
    kb = assemblage_ontology()
    for triple in kb.triples(None, SMG.oreAssemblage, None):
        assert kb.count(triple.object, SMG.oreAssemblage,
                        triple.subject) == 1


def test_lab_ontology_roles():
    kb = lab_ontology(n_labs=3)
    assert kb.count(None, SMG.isA, SMG.Laboratory) == 3
    assert kb.count(None, SMG.worksAt, None) > 0


def test_regulation_thresholds_are_literals():
    kb = regulation_ontology()
    thresholds = [t.object.value
                  for t in kb.triples(None, SMG.maxAmount, None)]
    assert thresholds and all(isinstance(v, float) for v in thresholds)


def test_personas_differ():
    researcher = researcher_kb()
    planner = city_planner_kb()
    # The planner flags Zinc (urban concern); the researcher does not.
    assert planner.count(SMG.Zinc, SMG.dangerLevel, None) == 1
    assert researcher.count(SMG.Zinc, SMG.dangerLevel, None) == 0
    # The researcher knows geology; the planner does not.
    assert researcher.count(None, SMG.oreAssemblage, None) > 0
    assert planner.count(None, SMG.oreAssemblage, None) == 0


def test_synthetic_kb_size_and_determinism():
    kb = synthetic_kb(500, seed=5)
    assert len(kb) == 500
    again = synthetic_kb(500, seed=5)
    assert set(kb.triples()) == set(again.triples())


def test_full_workload_executes(databank):
    registry = StoredQueryRegistry()
    registry.register("dangerQuery", DANGER_QUERY_SPARQL)
    engine = SESQLEngine(databank, researcher_kb(),
                         stored_queries=registry)
    for query in WORKLOAD:
        outcome = engine.execute(query.sesql)
        assert outcome.columns, query.name


def test_baselines_cover_all_paper_examples(databank):
    assert set(SQL_BASELINES) == {q.name for q in PAPER_EXAMPLES}
    for sql in SQL_BASELINES.values():
        databank.query(sql)  # must be plain executable SQL
