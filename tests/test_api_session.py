"""The unified session API: connect, prepare, bind, explain, caches."""

import pytest

import repro
from repro.api import ExtractionCache, LRUCache, SessionError
from repro.core import ParameterError, SESQLEngine
from repro.crosse import CrossePlatform
from repro.federation import Mediator
from repro.rdf import Namespace, TripleStore, parse_turtle
from repro.relational import Database
from repro.smartground import SmartGroundConfig, generate_databank

SMG = Namespace("http://smartground.eu/ns#")


@pytest.fixture
def db():
    database = Database()
    database.execute_script("""
        CREATE TABLE elem_contained (
            landfill_name TEXT, elem_name TEXT, amount REAL);
        INSERT INTO elem_contained VALUES
            ('a','Mercury',12.0), ('a','Iron',140.0), ('b','Mercury',7.0);
    """)
    return database


@pytest.fixture
def kb():
    return parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury smg:dangerLevel "high" .
        smg:Iron smg:dangerLevel "low" .
    """)


@pytest.fixture
def session(db, kb):
    return repro.connect(db, knowledge_base=kb)


ENRICHED = ("SELECT elem_name FROM elem_contained WHERE amount > ? "
            "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")


# -- connect dispatch -------------------------------------------------------


def test_connect_wraps_database_and_engine(db, kb):
    assert repro.connect(db).databank is db
    engine = SESQLEngine(db, kb)
    assert repro.connect(engine).engine is engine


def test_connect_rejects_unknown_sources():
    with pytest.raises(SessionError):
        repro.connect(42)


def test_connect_rejects_inapplicable_kwargs(db, kb):
    engine = SESQLEngine(db, kb)
    with pytest.raises(SessionError):
        repro.connect(engine, knowledge_base=TripleStore())
    mediator = Mediator()
    with pytest.raises(SessionError):
        repro.connect(mediator, join_strategy="direct")


def test_connect_matches_direct_engine_execution(session, db, kb):
    sesql = ("SELECT elem_name FROM elem_contained "
             "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")
    via_session = session.query(sesql)
    via_engine = SESQLEngine(db, kb).query(sesql)
    assert via_session.columns == via_engine.columns
    assert via_session.same_rows(via_engine)


# -- prepared queries and parameter binding ---------------------------------


def test_prepared_binding_preserves_types(session):
    prepared = session.prepare(
        "SELECT elem_name FROM elem_contained WHERE amount > ?")
    assert prepared.parameter_count == 1
    as_float = prepared.execute([10.0])
    as_int = prepared.execute([10])
    assert sorted(as_float.rows) == sorted(as_int.rows) \
        == [("Iron",), ("Mercury",)]
    # The bound literal keeps its Python type in the rendered SQL.
    assert "10.0" in as_float.executed_sql
    assert "(amount > 10)" in as_int.executed_sql


def test_prepared_binding_is_injection_safe(session):
    prepared = session.prepare(
        "SELECT elem_name FROM elem_contained WHERE elem_name = ?")
    hostile = "x' OR '1'='1"
    assert prepared.execute([hostile]).rows == []
    # The value is spliced as a literal, quoted, not interpreted.
    assert prepared.execute(["Iron"]).rows == [("Iron",)]


def test_placeholder_inside_string_literal_is_not_a_parameter(session):
    prepared = session.prepare(
        "SELECT elem_name FROM elem_contained WHERE elem_name = 'who?'")
    assert prepared.parameter_count == 0
    assert prepared.execute().rows == []


def test_placeholder_inside_comments_is_not_a_parameter(session):
    prepared = session.prepare(
        "SELECT elem_name FROM elem_contained -- really?\n"
        "WHERE /* sure? */ amount > ?")
    assert prepared.parameter_count == 1
    assert sorted(prepared.execute([10.0]).rows) == [
        ("Iron",), ("Mercury",)]


def test_parameter_count_mismatch_rejected(session):
    prepared = session.prepare(
        "SELECT elem_name FROM elem_contained WHERE amount > ?")
    with pytest.raises(ParameterError):
        prepared.execute()
    with pytest.raises(ParameterError):
        prepared.execute([1, 2])


def test_sentinel_namespace_is_reserved(session):
    # A literal spelling the internal parameter sentinel could be
    # confused with a ? slot; prepare() rejects it outright.
    with pytest.raises(ParameterError):
        session.prepare("SELECT elem_name FROM elem_contained "
                        "WHERE elem_name = '__sesql_param_0__'")


def test_unbindable_parameter_type_rejected(session):
    prepared = session.prepare(
        "SELECT elem_name FROM elem_contained WHERE amount > ?")
    with pytest.raises(ParameterError):
        prepared.execute([object()])


def test_placeholder_in_enrich_clause_rejected_at_bind(session):
    # A ? in the ENRICH clause has no literal to bind to; it must fail
    # loudly rather than leak the sentinel into the SPARQL extraction.
    prepared = session.prepare(
        "SELECT elem_name FROM elem_contained "
        "ENRICH SCHEMAEXTENSION(elem_name, ?)")
    assert prepared.parameter_count == 1
    with pytest.raises(ParameterError, match="no binding site"):
        prepared.execute(["dangerLevel"])


def test_parameters_work_inside_tagged_conditions(session):
    outcome = session.execute(
        "SELECT landfill_name FROM elem_contained "
        "WHERE ${elem_name = Dangerous:c1} AND amount > ? "
        "ENRICH REPLACECONSTANT(c1, Dangerous, dangerLevel)",
        [8.0])
    # dangerLevel values ("high"/"low") never match elem_name, so the
    # rewritten condition filters everything out — but it must bind.
    assert outcome.rows == []
    assert "(amount > 8.0)" in outcome.executed_sql


def test_prepared_template_survives_execution(session):
    prepared = session.prepare(ENRICHED)
    first = prepared.execute([10.0])
    second = prepared.execute([10.0])
    assert first.result.same_rows(second.result)


# -- caching ----------------------------------------------------------------


def test_plan_cache_skips_reparsing(session):
    session.execute(ENRICHED, [10.0])
    assert session.plan_cache.misses == 1
    prepared = session.prepare(ENRICHED)
    assert prepared.from_cache
    assert session.plan_cache.hits == 1


def test_repeated_execution_hits_extraction_cache(session):
    first = session.execute(ENRICHED, [10.0])
    second = session.execute(ENRICHED, [5.0])
    assert first.cache_hits == 0 and first.cache_misses == 1
    assert second.cache_hits == 1 and second.cache_misses == 0


def test_kb_mutation_invalidates_extractions(session, kb):
    session.execute(ENRICHED, [10.0])
    kb.add(SMG.Copper, SMG.dangerLevel, "medium")
    outcome = session.execute(ENRICHED, [10.0])
    assert outcome.cache_misses == 1  # new KB generation, fresh SPARQL


def test_lru_cache_evicts_oldest():
    cache = LRUCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")
    cache.put("c", 3)          # evicts "b" (least recently used)
    assert "a" in cache and "c" in cache and "b" not in cache


def test_zero_sized_cache_is_disabled():
    cache = ExtractionCache(maxsize=0)
    cache.put("k", "v")
    assert cache.get("k") is None
    assert len(cache) == 0


def test_closed_session_rejects_queries(session):
    session.close()
    with pytest.raises(SessionError):
        session.execute("SELECT 1")


# -- execute_many -----------------------------------------------------------


def test_execute_many_equals_looped_execute(session):
    rows = [[5.0], [10.0], [100.0]]
    batched = session.execute_many(ENRICHED, rows)
    for params, outcome in zip(rows, batched):
        solo = session.execute(ENRICHED, params)
        assert outcome.result.same_rows(solo.result)
    assert len(batched) == 3


# -- explain ----------------------------------------------------------------


def test_explain_reports_stages_without_running(session, db):
    tables_before = set(db.table_names())
    plan = session.explain(
        "SELECT landfill_name FROM elem_contained "
        "WHERE ${elem_name = Dangerous:c1} "
        "ENRICH REPLACECONSTANT(c1, Dangerous, dangerLevel) "
        "SCHEMAEXTENSION(elem_name, dangerLevel)")
    assert [stage.name for stage in plan.stages] == [
        "parse", "extract", "rewrite", "sql", "extract", "combine"]
    assert len(plan.sparql_queries) == 2
    assert "dangerLevel" in plan.sparql_queries[0]
    assert "IN (SELECT" in plan.rewritten_sql   # the WHERE rewrite fired
    assert plan.join_strategy == "tempdb"
    assert set(db.table_names()) == tables_before  # temp tables cleaned
    assert "plan for:" in plan.format()


def test_explain_sees_cache_hits_after_execute(session):
    session.execute(ENRICHED, [10.0])
    plan = session.explain(ENRICHED, [10.0])
    assert plan.parse_cached
    assert plan.cache_hits == 1 and plan.cache_misses == 0
    extract = [s for s in plan.stages if s.name == "extract"]
    assert extract and all(stage.cached for stage in extract)


# -- platform sessions ------------------------------------------------------


@pytest.fixture
def platform():
    p = CrossePlatform(
        generate_databank(SmartGroundConfig(n_landfills=10, seed=3)))
    p.register_user("giulia")
    p.register_user("marco")
    return p


PLATFORM_SESQL = ("SELECT DISTINCT elem_name FROM elem_contained "
                  "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")


def test_platform_reuses_one_engine_per_user(platform):
    platform.run_sesql("giulia", PLATFORM_SESQL)
    engine = platform.connect().as_user("giulia").engine
    outcome = platform.run_sesql("giulia", PLATFORM_SESQL)
    assert platform.connect().as_user("giulia").engine is engine
    assert outcome.cache_hits >= 1  # second run reused the extraction


def test_platform_connect_dispatch(platform):
    assert repro.connect(platform) is platform.connect()


def test_accept_statement_invalidates_user_session(platform):
    value = platform.databank.query(
        "SELECT elem_name FROM elem_contained LIMIT 1").scalar()
    record = platform.annotate_free(
        "marco", SMG[value], SMG.dangerLevel, "high")
    before = platform.run_sesql("giulia", PLATFORM_SESQL)
    assert all(row[1] is None for row in before.rows)
    platform.accept_statement("giulia", record.statement_id)
    after = platform.run_sesql("giulia", PLATFORM_SESQL)
    assert any(row[1] == "high" for row in after.rows)


def test_session_queries_still_feed_context(platform):
    platform.connect().as_user("giulia").execute(PLATFORM_SESQL)
    assert platform.context.profile("giulia").weight("dangerLevel") > 0


def test_stored_query_registration_reaches_cached_session(platform):
    platform.connect().as_user("giulia")  # warm the cache
    platform.register_stored_query(
        "anyPair", "SELECT ?s ?o WHERE { ?s ?p ?o }", username="giulia")
    engine = platform.connect().as_user("giulia").engine
    assert "anyPair" in engine.stored_queries


def test_held_session_survives_invalidation(platform):
    # Accepting a statement refreshes the engine in place; a session
    # (or prepared query) the caller still holds keeps working and
    # sees the new knowledge.
    held = platform.session_for("giulia")
    prepared = held.prepare(PLATFORM_SESQL)
    assert all(row[1] is None for row in prepared.execute().rows)
    value = platform.databank.query(
        "SELECT elem_name FROM elem_contained LIMIT 1").scalar()
    record = platform.annotate_free(
        "marco", SMG[value], SMG.dangerLevel, "high")
    platform.accept_statement("giulia", record.statement_id)
    assert any(row[1] == "high" for row in prepared.execute().rows)
    assert platform.session_for("giulia") is held


def test_closed_platform_session_is_replaced(platform):
    shared = platform.connect()
    shared.close()
    from repro.api import SessionError as SE
    with pytest.raises(SE):
        shared.as_user("giulia")
    replacement = platform.connect()
    assert replacement is not shared
    assert replacement.as_user("giulia") is not None


def test_closing_user_session_does_not_poison_platform(platform):
    # The documented context-manager use must not permanently break
    # run_sesql for that user: as_user replaces a closed session.
    with platform.connect().as_user("giulia") as session:
        session.execute(PLATFORM_SESQL)
    outcome = platform.run_sesql("giulia", PLATFORM_SESQL)
    assert outcome.columns == ["elem_name", "dangerLevel"]


def test_typoed_execute_override_raises(session):
    prepared = session.prepare("SELECT elem_name FROM elem_contained")
    with pytest.raises(TypeError):
        prepared.execute(None, strategy="direct")


def test_invalidation_is_lazy(platform):
    held = platform.session_for("giulia")
    engine = held.engine
    platform.register_stored_query(
        "anyPair", "SELECT ?s ?o WHERE { ?s ?p ?o }")
    assert held.engine is engine          # nothing rebuilt yet
    held.execute(PLATFORM_SESQL)          # first query swaps it in
    assert held.engine is not engine
    assert "anyPair" in held.engine.stored_queries


def test_custom_options_session_is_independent_and_invalidated(platform):
    from repro.api import QueryOptions
    shared = platform.connect()
    custom = platform.connect(QueryOptions(join_strategy="direct"))
    assert custom is not shared
    assert platform.connect() is shared  # defaults untouched by custom
    custom.as_user("giulia")  # warm the custom session's engine
    platform.register_stored_query(
        "anyPair", "SELECT ?s ?o WHERE { ?s ?p ?o }", username="giulia")
    assert "anyPair" in custom.as_user("giulia").engine.stored_queries


def test_close_leaves_shared_engine_cache_warm(db, kb):
    from repro.api import ExtractionCache
    engine = SESQLEngine(db, kb, extraction_cache=ExtractionCache(16))
    with repro.connect(engine) as wrapper:
        wrapper.execute("SELECT elem_name FROM elem_contained "
                        "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")
        assert len(engine.sqm.cache) == 1
    assert len(engine.sqm.cache) == 1  # close() must not wipe it


# -- KB generation stamps ---------------------------------------------------


def test_triple_store_state_key_is_unique_per_state():
    """Generations are per-store counters; paired with the
    process-unique ``store_id`` they form the cache key, so two stores
    at the same generation never collide (and a recovered store can
    restore its counter monotonically — see repro.durability)."""
    first, second = TripleStore(), TripleStore()
    assert first.store_id != second.store_id
    assert (first.store_id, first.generation) \
        != (second.store_id, second.generation)
    before = first.generation
    first.add(SMG.Mercury, SMG.dangerLevel, "high")
    assert first.generation != before
    unchanged = first.generation
    first.add(SMG.Mercury, SMG.dangerLevel, "high")  # duplicate: no-op
    assert first.generation == unchanged


def test_explain_reports_deduped_extractions_once(session):
    """explain() lists every logical extraction, but duplicates within
    the statement execute (at most) one SPARQL query."""
    before = session.engine.sqm.sparql_execution_count()
    plan = session.explain("""
        SELECT elem_name FROM elem_contained
        WHERE ${ elem_name = 'Mercury' : cond1 }
           OR ${ elem_name = 'Mercury' : cond2 }
        ENRICH REPLACECONSTANT(cond1, Mercury, dangerLevel)
               REPLACECONSTANT(cond2, Mercury, dangerLevel)""")
    assert len(plan.sparql_queries) == 2
    assert session.engine.sqm.sparql_execution_count() - before == 1
    extract_stages = [stage for stage in plan.stages
                      if stage.name == "extract"]
    assert [stage.cached for stage in extract_stages] == [False, True]
