"""Concurrent readers vs. writers through the service layer.

The contract: any number of threads may read (materialized or
streaming) while DML / annotation-accept writers get exclusive,
statement-atomic access — every read observes a consistent snapshot and
matches what a serial execution would have produced.

The heavier tests carry the ``stress`` marker (CI runs them in a
dedicated ``pytest -m stress`` job on every push); they stay small
enough for the tier-1 suite too.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.api import PoolTimeoutError, SessionError, SessionPool
from repro.crosse.platform import CrossePlatform
from repro.relational import Database
from repro.rwlock import RWLock
from repro.smartground.datagen import SmartGroundConfig, generate_databank

READERS = 8
READS_PER_THREAD = 25


def _run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


# -- the lock itself -----------------------------------------------------------


def test_rwlock_reentrant_read_and_write():
    lock = RWLock()
    with lock.read_locked():
        with lock.read_locked():
            pass
    with lock.write_locked():
        with lock.write_locked():
            with lock.read_locked():     # read inside own write is fine
                pass
    assert not lock.write_held
    assert lock.active_readers == 0


def test_rwlock_refuses_upgrade():
    lock = RWLock()
    with lock.read_locked():
        with pytest.raises(RuntimeError):
            lock.acquire_write()


def test_cursor_released_from_another_thread_unblocks_writers():
    """A cursor opened in one thread and closed in another (hand-off,
    or GC finalizing on an arbitrary thread) must still release its
    read unit, or every later writer would deadlock."""
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER)")
    db.insert_rows("t", ({"id": i} for i in range(10)))
    cursor = db.stream("SELECT id FROM t")
    assert cursor.fetchone() == (0,)      # read lock held by this thread

    closer = threading.Thread(target=cursor.close)
    closer.start()
    closer.join()
    assert db.rwlock.active_readers == 0

    # A writer (from any thread) proceeds instead of deadlocking.
    done = []

    def writer():
        db.execute("INSERT INTO t VALUES (99)")
        done.append(True)

    thread = threading.Thread(target=writer)
    thread.start()
    thread.join(timeout=5)
    assert done == [True]


def test_rwlock_excludes_writers_from_readers():
    lock = RWLock()
    state = {"writers_inside": 0, "readers_inside": 0, "violations": 0}
    guard = threading.Lock()

    def reader():
        for _ in range(200):
            with lock.read_locked():
                with guard:
                    state["readers_inside"] += 1
                    if state["writers_inside"]:
                        state["violations"] += 1
                with guard:
                    state["readers_inside"] -= 1

    def writer():
        for _ in range(100):
            with lock.write_locked():
                with guard:
                    state["writers_inside"] += 1
                    if state["readers_inside"] \
                            or state["writers_inside"] > 1:
                        state["violations"] += 1
                with guard:
                    state["writers_inside"] -= 1

    _run_threads([reader] * 4 + [writer] * 2)
    assert state["violations"] == 0


@pytest.mark.stress
def test_rwlock_writers_progress_under_reader_load():
    """Writers must not starve while readers hammer the lock.

    Six reader threads re-acquire the read side in a tight loop for the
    whole test; one writer tries to get 30 write acquisitions through.
    With reader-preferring semantics the read side never drains and the
    writer stalls until the readers stop — so the assertion is that the
    writer finishes (well) before the readers are told to stop.
    """
    lock = RWLock()
    stop_readers = threading.Event()
    writer_done = threading.Event()
    write_acquisitions = 0

    def reader():
        while not stop_readers.is_set():
            with lock.read_locked():
                pass

    def writer():
        nonlocal write_acquisitions
        for _ in range(30):
            with lock.write_locked():
                write_acquisitions += 1
            time.sleep(0.001)       # give readers time to pile back in
        writer_done.set()

    threads = [threading.Thread(target=reader) for _ in range(6)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    try:
        finished = writer_done.wait(timeout=10.0)
    finally:
        stop_readers.set()
        for thread in threads:
            thread.join()
    assert finished, (
        f"writer starved: only {write_acquisitions}/30 write "
        f"acquisitions completed under sustained reader load")
    assert write_acquisitions == 30


# -- database-level invariants --------------------------------------------------


@pytest.mark.stress
def test_readers_see_statement_atomic_updates():
    """8 reader threads against one writer: the single-statement
    transfer keeps SUM(balance) invariant, so every concurrent read
    must report exactly the serial value."""
    db = Database()
    db.execute("CREATE TABLE accounts (id INTEGER PRIMARY KEY, "
               "balance INTEGER)")
    db.insert_rows("accounts", ({"id": i, "balance": 10}
                                for i in range(100)))
    expected_total = 1000
    observed: list[int] = []
    errors: list[Exception] = []
    done = threading.Event()

    def reader():
        try:
            local = []
            while not done.is_set() or len(local) < READS_PER_THREAD:
                local.append(db.query(
                    "SELECT SUM(balance) AS total FROM accounts"
                ).scalar())
                if len(local) >= READS_PER_THREAD and done.is_set():
                    break
            observed.extend(local)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def writer():
        try:
            # Each statement moves 1 from account 0 to account 1 (or
            # back): atomic per statement, invariant-preserving.
            for round_no in range(60):
                sign = "+" if round_no % 2 == 0 else "-"
                flip = "-" if round_no % 2 == 0 else "+"
                db.execute(
                    "UPDATE accounts SET balance = CASE "
                    f"WHEN id = 0 THEN balance {sign} 1 "
                    f"WHEN id = 1 THEN balance {flip} 1 "
                    "ELSE balance END")
        finally:
            done.set()

    _run_threads([reader] * READERS + [writer])
    assert not errors
    assert observed and set(observed) == {expected_total}


@pytest.mark.stress
def test_concurrent_streams_match_serial_baseline():
    """8 threads streaming through a SessionPool produce byte-identical
    results to a serial run, while a writer mutates an unrelated
    table."""
    db = Database()
    db.execute_script("""
        CREATE TABLE readings (id INTEGER PRIMARY KEY, site TEXT,
                               value INTEGER);
        CREATE TABLE scratchpad (id INTEGER);
    """)
    db.insert_rows("readings", ({"id": i, "site": f"s{i % 7}",
                                 "value": i * 3 % 101}
                                for i in range(2000)))
    queries = [
        "SELECT site, COUNT(*) AS n FROM readings GROUP BY site "
        "ORDER BY site",
        "SELECT id, value FROM readings WHERE value > 90 ORDER BY id "
        "LIMIT 40",
        "SELECT DISTINCT site FROM readings ORDER BY site",
        "SELECT id FROM readings ORDER BY id LIMIT 10 OFFSET 500",
    ]
    with repro.connect(db) as session:
        serial = [session.stream(q).fetchall() for q in queries]

    pool = SessionPool(db, capacity=READERS)
    results: dict[int, list] = {}
    errors: list[Exception] = []
    done = threading.Event()

    def reader(worker: int):
        try:
            local = []
            for _ in range(READS_PER_THREAD):
                for query in queries:
                    with pool.checkout() as session:
                        local.append(session.stream(query).fetchall())
            results[worker] = local
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def writer():
        try:
            for i in range(200):
                db.execute(f"INSERT INTO scratchpad VALUES ({i})")
        finally:
            done.set()

    workers = [lambda worker=w: reader(worker) for w in range(READERS)]
    _run_threads(workers + [writer])
    pool.close()
    assert not errors
    assert len(results) == READERS
    expected = serial * READS_PER_THREAD
    for worker in range(READERS):
        assert results[worker] == expected
    assert db.query("SELECT COUNT(*) AS n FROM scratchpad").scalar() == 200


@pytest.mark.stress
def test_platform_readers_with_annotation_writer():
    """Readers querying per-user sessions while another thread accepts
    statements (KB writes): no torn reads, and post-acceptance queries
    see the enrichment."""
    platform = CrossePlatform(
        generate_databank(SmartGroundConfig(n_landfills=8, seed=11)))
    for name in ("writer", *[f"reader{i}" for i in range(4)]):
        platform.register_user(name)
    from repro.rdf.namespace import SMG
    record = platform.annotate_free(
        "writer", SMG["Mercury"], SMG["dangerLevel"], "high")

    pool = SessionPool(platform, capacity=4)
    errors: list[Exception] = []
    sesql = ("SELECT DISTINCT elem_name FROM elem_contained "
             "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")

    def reader(name: str):
        try:
            for _ in range(15):
                with pool.checkout(name) as session:
                    rows = session.stream(sesql).fetchall()
                assert rows  # never torn/empty
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def accepter():
        try:
            for name in ("reader0", "reader1", "reader2", "reader3"):
                platform.accept_statement(name, record.statement_id)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    _run_threads([lambda n=f"reader{i}": reader(n) for i in range(4)]
                 + [accepter])
    pool.close()
    assert not errors
    # After acceptance every reader's context includes the statement.
    session = platform.session_for("reader0")
    rows = session.query(sesql).rows
    assert ("Mercury", "high") in rows


# -- pool semantics --------------------------------------------------------------


def test_pool_capacity_blocks_and_times_out():
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER)")
    pool = SessionPool(db, capacity=1)
    lease = pool.checkout()
    with pytest.raises(PoolTimeoutError):
        pool.checkout(timeout=0.05)
    lease.release()
    with pool.checkout(timeout=0.05) as session:
        assert session is not None
    stats = pool.stats()
    assert stats["timeouts"] == 1
    assert stats["peak_in_use"] == 1
    pool.close()
    with pytest.raises(SessionError):
        pool.checkout()


def test_pool_does_not_leak_slots_on_bad_username():
    platform = CrossePlatform(
        generate_databank(SmartGroundConfig(n_landfills=4, seed=2)))
    platform.register_user("anna")
    pool = SessionPool(platform, capacity=2)
    for _ in range(5):                    # > capacity bad requests
        with pytest.raises(Exception) as excinfo:
            pool.checkout("ghost")
        assert not isinstance(excinfo.value, PoolTimeoutError)
    assert pool.stats()["in_use"] == 0    # every slot came back
    with pool.checkout("anna", timeout=0.5) as session:
        assert session.query("SELECT COUNT(*) AS n FROM landfill")
    pool.close()


def test_analyze_all_skips_concurrent_enrichment_temp_tables():
    """ANALYZE with no table argument must ignore the lock-free
    ``__sesql_*`` scratch tables of in-flight enriched queries."""
    from repro.core.tempdb import materialize

    db = Database()
    db.execute("CREATE TABLE t (id INTEGER)")
    db.insert_rows("t", ({"id": i} for i in range(10)))
    temp = materialize(db, "vals", ["value"], [(1,), (2,)])
    stats = db.analyze()
    assert len(stats) == 1                # only t, not the temp table
    assert db.stats.get(temp.name) is None
    db.drop_temp_table(temp.name)


def test_last_plan_is_thread_local():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    db.insert_rows("t", ({"a": i, "b": i % 3} for i in range(200)))
    db.execute("ANALYZE")
    join = "SELECT t.a FROM t JOIN t AS u ON t.a = u.a"
    db.query(join)
    mine = db.last_plan
    assert mine is not None

    seen = []

    def other():
        db.query(join + " WHERE t.b = 1")
        seen.append(db.last_plan)

    thread = threading.Thread(target=other)
    thread.start()
    thread.join()
    assert seen[0] is not None
    assert db.last_plan is mine           # not clobbered by the other thread


def test_pool_username_rules():
    db = Database()
    pool = SessionPool(db, capacity=2)
    with pytest.raises(SessionError):
        pool.checkout(username="anna")
    pool.close()

    platform = CrossePlatform(
        generate_databank(SmartGroundConfig(n_landfills=4, seed=1)))
    platform.register_user("anna")
    platform_pool = SessionPool(platform, capacity=2)
    with pytest.raises(SessionError):
        platform_pool.checkout()
    with platform_pool.checkout("anna") as session:
        assert session.query("SELECT COUNT(*) AS n FROM landfill")
    platform_pool.close()


def test_pool_reuses_warm_slots():
    db = Database()
    db.execute("CREATE TABLE t (id INTEGER)")
    pool = SessionPool(db, capacity=4)
    with pool.checkout() as first:
        pass
    with pool.checkout() as second:
        assert second is first        # the warm slot came back
    assert pool.stats()["idle"] == 1
    pool.close()
