"""The static-analysis subsystem: every diagnostic code on the
statement type that produces it, analyzer options, session / explain /
REST wiring, the lint CLI, and the architecture linter.

The contract under test is severity-is-a-promise: every ``E-`` code
comes from a statement the executor *provably* rejects (each error test
also executes the statement and expects a raise), while every ``W-``
code comes from a statement that parses, prepares and — data
permitting — runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import (AnalysisError, AnalysisOptions, AnalysisReport,
                            CODES, analyze_federated, analyze_sparql,
                            analyze_sql, analyze_statement)
from repro.analysis.__main__ import main as cli_main, split_statements
from repro.analysis.archlint import (DEFAULT_CONFIG, check_tree,
                                     load_config)
from repro.analysis.archlint import main as archlint_main
from repro.analysis.query import analyze_enriched, analyze_script
from repro.api import QueryOptions
from repro.core.sqp import SemanticQueryParser
from repro.federation import Mediator
from repro.relational import Database
from repro.smartground.schema import create_schema

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture()
def db() -> Database:
    database = create_schema()
    database.execute(
        "INSERT INTO landfill (id, name, city, landfill_type, area_m2, "
        "opened_year) VALUES (1, 'lf0000', 'Turin', 'urban', 120000.0, "
        "1998)")
    database.execute(
        "INSERT INTO elem_contained (landfill_name, elem_name, amount, "
        "purity) VALUES ('lf0000', 'Mercury', 4.5, 0.2)")
    database.execute(
        "INSERT INTO lab (lab_name, city) VALUES ('EnvLab', 'Turin')")
    return database


def codes_of(report: AnalysisReport) -> set:
    return set(report.codes())


def expect(db, sql, code):
    """Analyzer flags *code*; for E- codes the executor must raise."""
    report = analyze_sql(sql, db)
    assert code in codes_of(report), \
        f"expected {code} for {sql!r}, got {report.format()!r}"
    if CODES[code].severity == "error":
        with pytest.raises(Exception):
            db.execute(sql)
    return report


# ---------------------------------------------------------------------------
# error codes: the executor agrees every time


class TestErrorCodes:
    def test_syntax(self, db):
        expect(db, "SELEC name FORM landfill", "E-SYNTAX")

    def test_unknown_table(self, db):
        expect(db, "SELECT a FROM missing_table", "E-UNKNOWN-TABLE")

    def test_unknown_column(self, db):
        expect(db, "SELECT nope FROM landfill", "E-UNKNOWN-COLUMN")

    def test_unknown_column_qualified(self, db):
        expect(db, "SELECT landfill.nope FROM landfill",
               "E-UNKNOWN-COLUMN")

    def test_ambiguous_column(self, db):
        expect(db, "SELECT city FROM landfill, lab",
               "E-AMBIGUOUS-COLUMN")

    def test_unknown_function(self, db):
        expect(db, "SELECT NOSUCHFN(name) FROM landfill",
               "E-UNKNOWN-FUNCTION")

    def test_function_arity(self, db):
        expect(db, "SELECT UPPER(name, city) FROM landfill",
               "E-FUNCTION-ARITY")

    def test_aggregate_in_where(self, db):
        expect(db, "SELECT name FROM landfill WHERE COUNT(*) > 1",
               "E-AGGREGATE-CONTEXT")

    def test_bad_cast(self, db):
        expect(db, "SELECT CAST(name AS BLOB) FROM landfill",
               "E-BAD-CAST")

    def test_duplicate_alias(self, db):
        expect(db, "SELECT 1 FROM landfill AS x, lab AS x",
               "E-DUPLICATE-ALIAS")

    def test_set_op_arity(self, db):
        expect(db, "SELECT name FROM landfill "
                   "UNION SELECT lab_name, city FROM lab",
               "E-SET-OP-ARITY")

    def test_ordinal_out_of_range(self, db):
        expect(db, "SELECT name FROM landfill ORDER BY 3",
               "E-ORDINAL-RANGE")

    def test_insert_arity(self, db):
        expect(db, "INSERT INTO lab (lab_name) VALUES ('a', 'b')",
               "E-DML-ARITY")

    def test_star_with_group_by(self, db):
        expect(db, "SELECT * FROM landfill GROUP BY city",
               "E-STAR-GROUPED")


# ---------------------------------------------------------------------------
# warning codes: flagged, but the statement still runs


class TestWarningCodes:
    def run_and_expect(self, db, sql, code):
        report = expect(db, sql, code)
        db.execute(sql)          # warnings never block execution
        assert not report.has_errors
        return report

    def test_type_mismatch_ordered(self, db):
        # Data-dependent (raises only when a row reaches the compare),
        # hence a warning — analyzed, not executed, here.
        report = analyze_sql(
            "SELECT name FROM landfill WHERE opened_year > 'x'", db)
        assert "W-TYPE-MISMATCH" in codes_of(report)
        assert not report.has_errors

    def test_cross_family_equality(self, db):
        self.run_and_expect(
            db, "SELECT name FROM landfill WHERE name = 42",
            "W-CROSS-EQ-FALSE")

    def test_nonbool_where(self, db):
        report = analyze_sql(
            "SELECT name FROM landfill WHERE area_m2", db)
        assert "W-NONBOOL-WHERE" in codes_of(report)

    def test_like_on_non_text(self, db):
        report = analyze_sql(
            "SELECT name FROM landfill WHERE area_m2 LIKE '1%'", db)
        assert "W-LIKE-NONTEXT" in codes_of(report)

    def test_null_compare(self, db):
        self.run_and_expect(
            db, "SELECT name FROM landfill WHERE city = NULL",
            "W-NULL-COMPARE")

    def test_constant_predicate(self, db):
        self.run_and_expect(
            db, "SELECT name FROM landfill WHERE TRUE",
            "W-CONST-PREDICATE")

    def test_vectorization_fallback_names_subexpression(self, db):
        report = self.run_and_expect(
            db, "SELECT name FROM landfill WHERE LENGTH(name) > 3",
            "W-VEC-FALLBACK")
        diagnostic = [d for d in report
                      if d.code == "W-VEC-FALLBACK"][0]
        assert "LENGTH(name)" in diagnostic.expression

    def test_no_fallback_when_fully_vectorizable(self, db):
        report = analyze_sql(
            "SELECT name FROM landfill WHERE area_m2 > 1.0", db)
        assert "W-VEC-FALLBACK" not in codes_of(report)

    def test_nonsargable_function_over_indexed_column(self, db):
        self.run_and_expect(
            db, "SELECT landfill_name FROM elem_contained "
                "WHERE UPPER(elem_name) = 'GOLD'",
            "W-NONSARGABLE")

    def test_nonsargable_leading_wildcard(self, db):
        self.run_and_expect(
            db, "SELECT landfill_name FROM elem_contained "
                "WHERE elem_name LIKE '%old'",
            "W-NONSARGABLE")

    def test_sargable_needs_an_index_to_warn(self, db):
        # city is unindexed: wrapping it loses nothing, so no warning.
        report = analyze_sql(
            "SELECT name FROM landfill WHERE UPPER(city) = 'TURIN'",
            db)
        assert "W-NONSARGABLE" not in codes_of(report)

    def test_unbounded_select(self, db):
        self.run_and_expect(db, "SELECT name FROM landfill",
                            "W-NO-LIMIT-STREAM")

    def test_aggregates_are_bounded(self, db):
        report = analyze_sql("SELECT COUNT(*) FROM landfill", db)
        assert "W-NO-LIMIT-STREAM" not in codes_of(report)

    def test_offset_without_order(self, db):
        self.run_and_expect(
            db, "SELECT name FROM landfill LIMIT 10 OFFSET 2",
            "W-OFFSET-NO-ORDER")

    def test_cartesian_comma_join(self, db):
        self.run_and_expect(
            db, "SELECT l.name FROM landfill AS l, lab AS b LIMIT 5",
            "W-CARTESIAN")

    def test_connected_join_is_fine(self, db):
        report = analyze_sql(
            "SELECT l.name FROM landfill AS l, lab AS b "
            "WHERE l.city = b.city LIMIT 5", db)
        assert "W-CARTESIAN" not in codes_of(report)

    def test_join_condition_missing_one_side(self, db):
        report = analyze_sql(
            "SELECT l.name FROM landfill AS l JOIN lab AS b "
            "ON l.city = l.name LIMIT 5", db)
        assert "W-CARTESIAN" in codes_of(report)

    def test_distinct_with_group_by(self, db):
        self.run_and_expect(
            db, "SELECT DISTINCT city FROM landfill GROUP BY city "
                "LIMIT 5",
            "W-DISTINCT-GROUPED")

    def test_having_without_aggregate(self, db):
        self.run_and_expect(
            db, "SELECT 1 FROM landfill HAVING 2 > 1",
            "W-HAVING-NO-AGG")

    def test_select_star(self, db):
        self.run_and_expect(db, "SELECT * FROM landfill LIMIT 5",
                            "W-SELECT-STAR")


# ---------------------------------------------------------------------------
# other statement types


class TestStatementTypes:
    def test_insert_unknown_column(self, db):
        expect(db, "INSERT INTO lab (lab_name, nope) VALUES ('a', 'b')",
               "E-UNKNOWN-COLUMN")

    def test_insert_select_arity(self, db):
        expect(db, "INSERT INTO lab (lab_name) "
                   "SELECT name, city FROM landfill",
               "E-DML-ARITY")

    def test_update_unknown_column(self, db):
        expect(db, "UPDATE lab SET nope = 1", "E-UNKNOWN-COLUMN")

    def test_update_where_sees_table_scope(self, db):
        report = analyze_sql(
            "UPDATE lab SET city = 'Rome' WHERE lab_name = 'EnvLab'",
            db)
        assert not len(report)

    def test_delete_unknown_table(self, db):
        expect(db, "DELETE FROM missing_table", "E-UNKNOWN-TABLE")

    def test_create_table_duplicate_column(self, db):
        expect(db, "CREATE TABLE t (a INTEGER, a TEXT)",
               "E-DUPLICATE-ALIAS")

    def test_create_index_unknown_column(self, db):
        expect(db, "CREATE INDEX i ON lab (nope)", "E-UNKNOWN-COLUMN")

    def test_script_reports_per_statement(self, db):
        reports = analyze_script(
            "SELECT name FROM landfill LIMIT 1; SELECT nope FROM lab",
            db)
        assert len(reports) == 2
        assert not reports[0].has_errors
        assert "E-UNKNOWN-COLUMN" in codes_of(reports[1])


# ---------------------------------------------------------------------------
# open scopes: no catalog, no false positives


class TestOpenScopes:
    def test_no_catalog_suppresses_name_errors(self):
        report = analyze_sql(
            "SELECT whatever FROM anything WHERE x = 1", None)
        assert not report.has_errors

    def test_unknown_table_suppresses_column_errors(self, db):
        report = analyze_sql(
            "SELECT mystery_col FROM missing_table", db)
        assert codes_of(report) & {"E-UNKNOWN-TABLE"}
        assert "E-UNKNOWN-COLUMN" not in codes_of(report)

    def test_parameters_are_family_neutral(self, db):
        session = repro.connect(db)
        prepared = session.prepare(
            "SELECT name FROM landfill WHERE opened_year > ? LIMIT 5")
        codes = set(prepared.diagnostics.codes())
        assert "W-TYPE-MISMATCH" not in codes
        assert "W-CONST-PREDICATE" not in codes
        assert prepared.execute([1990]).rows == [("lf0000",)]


# ---------------------------------------------------------------------------
# options


class TestOptions:
    def test_disabled_returns_empty(self, db):
        report = analyze_sql(
            "SELECT nope FROM landfill",
            db, options=AnalysisOptions(enabled=False))
        assert not len(report)

    def test_disabled_codes_are_filtered(self, db):
        report = analyze_sql(
            "SELECT * FROM landfill",
            db, options=AnalysisOptions(
                disabled_codes=frozenset({"W-SELECT-STAR"})))
        assert "W-SELECT-STAR" not in codes_of(report)
        assert "W-NO-LIMIT-STREAM" in codes_of(report)

    def test_report_serialization(self, db):
        report = analyze_sql("SELECT nope FROM landfill", db)
        payload = report.to_dict()
        assert payload["error_count"] >= 1
        assert payload["diagnostics"][0]["code"] == "E-UNKNOWN-COLUMN"
        assert "E-UNKNOWN-COLUMN" in report.format()

    def test_unregistered_code_rejected(self):
        report = AnalysisReport(statement="x")
        with pytest.raises(KeyError):
            report.add("E-NOT-A-CODE", "nope")


# ---------------------------------------------------------------------------
# session + explain wiring


class TestSessionIntegration:
    def test_prepare_attaches_diagnostics(self, db):
        session = repro.connect(db)
        prepared = session.prepare(
            "SELECT name FROM landfill WHERE name = 42 LIMIT 5")
        assert prepared.diagnostics is not None
        assert "W-CROSS-EQ-FALSE" in prepared.diagnostics.codes()

    def test_strict_raises_on_errors_even_from_plan_cache(self, db):
        session = repro.connect(db)
        sql = "SELECT nope FROM landfill"
        session.prepare(sql)       # lenient: warms the plan cache
        session.options = QueryOptions(
            analysis=AnalysisOptions(strict=True))
        with pytest.raises(AnalysisError) as excinfo:
            session.prepare(sql)
        assert "E-UNKNOWN-COLUMN" in str(excinfo.value)

    def test_strict_allows_warnings(self, db):
        session = repro.connect(
            db, options=QueryOptions(
                analysis=AnalysisOptions(strict=True)))
        prepared = session.prepare("SELECT name FROM landfill")
        assert "W-NO-LIMIT-STREAM" in prepared.diagnostics.codes()
        assert prepared.execute().rows

    def test_explain_has_diagnostics_section(self, db):
        session = repro.connect(db)
        plan = session.explain("SELECT * FROM landfill")
        text = plan.format()
        assert "diagnostics:" in text
        assert "W-SELECT-STAR" in text

    def test_clean_query_has_clean_explain(self, db):
        session = repro.connect(db)
        plan = session.explain(
            "SELECT name FROM landfill ORDER BY name LIMIT 5")
        assert "diagnostics:" not in plan.format()

    def test_fallback_observable_on_database(self, db):
        db.execute("SELECT name FROM landfill WHERE LENGTH(name) > 3")
        fallbacks = db.last_vectorized_fallbacks
        assert fallbacks and "LENGTH(name)" in fallbacks[0][0]
        db.execute("SELECT name FROM landfill WHERE area_m2 > 1.0")
        assert db.last_vectorized_fallbacks == []

    def test_fallback_reason_in_explain_analyze_note(self, db):
        planned = db.explain(
            "SELECT name FROM landfill WHERE LENGTH(name) > 3",
            analyze=True)
        note = " ".join(planned.notes)
        assert "fallback:" in note and "LENGTH(name)" in note


# ---------------------------------------------------------------------------
# SESQL, SPARQL and federated analyzers


class TestOtherFrontEnds:
    def test_enrichment_attribute_not_projected(self, db):
        enriched = SemanticQueryParser().parse(
            "SELECT name FROM landfill "
            "ENRICH SCHEMAEXTENSION(city, inCountry)")
        report = analyze_enriched(enriched, db)
        assert "W-ENRICH-ATTR" in codes_of(report)

    def test_enrichment_attribute_projected_is_clean(self, db):
        enriched = SemanticQueryParser().parse(
            "SELECT name, city FROM landfill "
            "ENRICH SCHEMAEXTENSION(city, inCountry)")
        report = analyze_enriched(enriched, db)
        assert "W-ENRICH-ATTR" not in codes_of(report)

    def test_sparql_unbound_projection(self):
        report = analyze_sparql(
            "SELECT ?x WHERE { ?s ?p ?o }")
        assert "W-SPARQL-UNBOUND" in codes_of(report)

    def test_sparql_bound_projection_is_clean(self):
        report = analyze_sparql(
            "SELECT ?s WHERE { ?s ?p ?o }")
        assert not len(report)

    def test_sparql_syntax_error(self):
        report = analyze_sparql("SELECT WHERE {{{")
        assert "E-SYNTAX" in codes_of(report)

    @pytest.fixture()
    def mediator(self):
        italy = Database("italy")
        italy.execute_script(
            "CREATE TABLE landfill (name TEXT, city TEXT, size REAL)")
        france = Database("france")
        france.execute_script(
            "CREATE TABLE landfill (name TEXT, city TEXT, size REAL)")
        mediator = Mediator()
        mediator.register_source("italy", italy)
        mediator.register_source("france", france)
        mediator.define_view("eu", [
            ("italy", "SELECT name, city, size FROM landfill"),
            ("france", "SELECT name, city, size FROM landfill")])
        mediator.define_view("eu_first", [
            ("italy", "SELECT name, city, size FROM landfill"),
            ("france", "SELECT name, city, size FROM landfill")],
            reconciliation="prefer_first", key_columns=["name"])
        return mediator

    def test_unpushable_filter_flagged(self, mediator):
        report = analyze_federated(
            "SELECT name FROM eu_first WHERE size > 10", mediator)
        assert "W-FED-UNPUSHABLE" in codes_of(report)

    def test_pushable_filter_not_flagged(self, mediator):
        report = analyze_federated(
            "SELECT name FROM eu WHERE size > 10", mediator)
        assert "W-FED-UNPUSHABLE" not in codes_of(report)


# ---------------------------------------------------------------------------
# REST endpoint


class TestRestAnalyze:
    @pytest.fixture()
    def service(self, db):
        from repro.crosse import CrossePlatform
        from repro.federation import CrosseRestService
        platform = CrossePlatform(db)
        platform.register_user("amy")
        return CrosseRestService(platform)

    def test_analyze_endpoint_reports(self, service):
        response = service.request(
            "POST", "/api/v1/analyze",
            {"username": "amy",
             "query": "SELECT nope FROM landfill"})
        assert response.status == 200
        codes = [d["code"] for d in
                 response.payload["report"]["diagnostics"]]
        assert "E-UNKNOWN-COLUMN" in codes

    def test_analyze_endpoint_syntax_error(self, service):
        response = service.request(
            "POST", "/api/v1/analyze",
            {"username": "amy", "query": "SELEC nope FORM x"})
        assert response.status == 200
        codes = [d["code"] for d in
                 response.payload["report"]["diagnostics"]]
        assert codes == ["E-SYNTAX"]


# ---------------------------------------------------------------------------
# the lint CLI


class TestCli:
    def test_split_statements_respects_quotes_and_comments(self):
        parts = split_statements(
            "SELECT 'a;b' FROM t; -- trailing; comment\n"
            "SELECT 2;\n-- only a comment\n")
        assert len(parts) == 2
        assert parts[0].startswith("SELECT 'a;b'")

    def test_cli_reports_and_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.sql"
        clean.write_text("SELECT name FROM landfill LIMIT 5;\n")
        bad = tmp_path / "bad.sql"
        bad.write_text("SELECT nope FROM landfill;\n")
        assert cli_main(["--smartground", str(clean)]) == 0
        assert cli_main(["--smartground", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "E-UNKNOWN-COLUMN" in out

    def test_cli_sesql_statements(self, tmp_path):
        pack = tmp_path / "q.sesql"
        pack.write_text(
            "SELECT name, city FROM landfill "
            "ENRICH SCHEMAREPLACEMENT(city, inCountry);\n")
        assert cli_main(["--smartground", str(pack)]) == 0

    def test_cli_json_output(self, tmp_path, capsys):
        pack = tmp_path / "q.sql"
        pack.write_text("SELECT * FROM landfill;\n")
        cli_main(["--smartground", "--json", str(pack)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["codes"].get("W-SELECT-STAR") == 1

    def test_baseline_ratchet(self, tmp_path, capsys):
        pack = tmp_path / "q.sql"
        pack.write_text("SELECT * FROM landfill LIMIT 5;\n")
        baseline = tmp_path / "baseline.json"
        assert cli_main(["--smartground", str(pack),
                         "--write-baseline", str(baseline)]) == 0
        assert cli_main(["--smartground", str(pack),
                         "--baseline", str(baseline)]) == 0
        pack.write_text("SELECT * FROM landfill LIMIT 5;\n"
                        "SELECT * FROM lab LIMIT 5;\n")
        assert cli_main(["--smartground", str(pack),
                         "--baseline", str(baseline)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_repo_example_pack_matches_baseline(self, capsys):
        root = Path(__file__).resolve().parent.parent
        assert cli_main(
            ["--smartground", str(root / "examples/queries.sesql"),
             "--baseline",
             str(root / "tools/analysis_baseline.json")]) == 0


# ---------------------------------------------------------------------------
# architecture linter


class TestArchlint:
    def test_real_tree_is_clean(self):
        violations = check_tree(SRC_REPRO)
        assert violations == [], \
            "\n".join(v.format() for v in violations)

    def seed(self, tmp_path, relative, source):
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return tmp_path

    def test_layering_violation_detected(self, tmp_path):
        root = self.seed(
            tmp_path, "relational/bad.py",
            "from ..cluster.coordinator import ClusterCoordinator\n")
        violations = check_tree(root)
        assert [v.rule for v in violations] == ["layering"]
        assert violations[0].file == "relational/bad.py"
        assert violations[0].line == 1

    def test_lazy_import_of_allowed_backedge_passes(self, tmp_path):
        root = self.seed(
            tmp_path, "api/bad.py",
            "def connect():\n"
            "    from ..cluster.coordinator import C\n"
            "    return C\n")
        assert check_tree(root) == []

    def test_module_level_backedge_fails(self, tmp_path):
        root = self.seed(
            tmp_path, "api/bad.py",
            "from ..cluster.coordinator import ClusterCoordinator\n")
        assert "layering" in {v.rule for v in check_tree(root)}

    def test_hook_rule(self, tmp_path):
        root = self.seed(
            tmp_path, "core/bad.py",
            "from ..telemetry import create_telemetry\n")
        assert "hooks" in {v.rule for v in check_tree(root)}

    def test_lock_rule(self, tmp_path):
        root = self.seed(
            tmp_path, "core/bad.py",
            "def f(table):\n    table.insert_row({})\n")
        violations = [v for v in check_tree(root) if v.rule == "locks"]
        assert violations and violations[0].line == 2

    def test_lock_rule_allows_choke_points(self, tmp_path):
        root = self.seed(
            tmp_path, "relational/engine.py",
            "def f(table):\n    table.insert_row({})\n")
        assert [v for v in check_tree(root) if v.rule == "locks"] == []

    def test_cycle_detection(self, tmp_path):
        config = {**load_config(), "layers": {
            **DEFAULT_CONFIG["layers"],
            "relational": ["rwlock", "core"]}}
        root = self.seed(
            tmp_path, "relational/bad.py",
            "from ..core.engine import SESQLEngine\n")
        self.seed(tmp_path, "core/ok.py",
                  "from ..relational.engine import Database\n")
        rules = {v.rule for v in check_tree(root, config)}
        assert "layering-cycle" in rules

    def test_pyproject_override_merges(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.archlint]\n"
            'mutator-files = ["core/sqm.py"]\n'
            "[tool.repro.archlint.layers]\n"
            'relational = ["rwlock", "telemetry"]\n')
        config = load_config(pyproject)
        assert config["mutator-files"] == ["core/sqm.py"]
        assert config["layers"]["relational"] == ["rwlock", "telemetry"]
        assert config["layers"]["core"] == DEFAULT_CONFIG["layers"]["core"]

    def test_main_on_real_tree(self, capsys):
        assert archlint_main([str(SRC_REPRO)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out
