"""End-to-end SELECT execution: filters, joins, grouping, set ops, NULLs."""

import pytest

from repro.relational import (AmbiguousColumnError, Database, ExecutionError,
                              UnknownColumnError)


def rows(db, sql):
    return db.query(sql).rows


def test_select_without_from(db):
    assert rows(db, "SELECT 1 + 2, 'x' || 'y'") == [(3, "xy")]


def test_where_filters_and_projection(landfill_db):
    assert rows(landfill_db,
                "SELECT name FROM landfill WHERE city = 'Torino' "
                "ORDER BY name") == [("a",), ("c",)]


def test_unknown_column_raises(landfill_db):
    with pytest.raises(UnknownColumnError):
        landfill_db.query("SELECT nope FROM landfill")


def test_ambiguous_column_raises(landfill_db):
    with pytest.raises(AmbiguousColumnError):
        landfill_db.query(
            "SELECT name FROM landfill a, landfill b")


def test_qualified_columns_disambiguate(landfill_db):
    result = rows(landfill_db,
                  "SELECT a.name FROM landfill a, landfill b "
                  "WHERE a.id = 1 AND b.id = 2")
    assert result == [("a",)]


def test_inner_join_on_equality(landfill_db):
    result = rows(landfill_db, """
        SELECT l.name, e.elem_name
        FROM landfill l JOIN elem_contained e ON l.name = e.landfill_name
        WHERE e.elem_name = 'Mercury' ORDER BY l.name""")
    assert result == [("a", "Mercury"), ("b", "Mercury")]


def test_left_join_pads_with_nulls(landfill_db):
    result = rows(landfill_db, """
        SELECT l.name, e.elem_name
        FROM landfill l LEFT JOIN elem_contained e
            ON l.name = e.landfill_name AND e.elem_name = 'Lead'
        ORDER BY l.name""")
    assert result == [("a", None), ("b", None), ("c", "Lead"), ("d", None)]


def test_join_null_keys_never_match(db):
    db.execute("CREATE TABLE t (a TEXT)")
    db.execute("CREATE TABLE u (a TEXT)")
    db.execute("INSERT INTO t VALUES (NULL), ('x')")
    db.execute("INSERT INTO u VALUES (NULL), ('x')")
    assert rows(db, "SELECT * FROM t JOIN u ON t.a = u.a") == [("x", "x")]


def test_non_equi_join_nested_loop(landfill_db):
    result = rows(landfill_db, """
        SELECT a.id, b.id FROM landfill a JOIN landfill b ON a.id < b.id
        WHERE a.id <= 2 AND b.id <= 2""")
    assert result == [(1, 2)]


def test_cross_join_cardinality(landfill_db):
    result = rows(landfill_db,
                  "SELECT COUNT(*) FROM landfill, elem_contained")
    assert result == [(4 * 7,)]


def test_self_join_with_aliases_example_46_shape(landfill_db):
    # The join pattern of paper Example 4.6 (without enrichment).
    result = rows(landfill_db, """
        SELECT Elecond1.landfill_name AS l_name1,
               Elecond2.landfill_name AS l_name2,
               Elecond1.elem_name
        FROM elem_contained AS Elecond1, elem_contained AS Elecond2
        WHERE Elecond1.elem_name = Elecond2.elem_name
          AND Elecond1.landfill_name < Elecond2.landfill_name
        ORDER BY 1, 2, 3""")
    assert result == [("a", "b", "Mercury"), ("a", "c", "Iron")]


def test_group_by_with_having(landfill_db):
    result = rows(landfill_db, """
        SELECT landfill_name, COUNT(*) AS n, SUM(amount) AS total
        FROM elem_contained GROUP BY landfill_name
        HAVING COUNT(*) >= 2 ORDER BY n DESC, landfill_name""")
    assert result == [("a", 3, 155.5), ("b", 2, 62.25), ("c", 2, 229.0)]


def test_group_by_ordinal_and_alias(landfill_db):
    by_ordinal = rows(landfill_db,
                      "SELECT city, COUNT(*) FROM landfill GROUP BY 1 "
                      "ORDER BY 1")
    by_alias = rows(landfill_db,
                    "SELECT city AS c, COUNT(*) FROM landfill GROUP BY c "
                    "ORDER BY c")
    assert by_ordinal == by_alias


def test_global_aggregate_on_empty_table(db):
    db.execute("CREATE TABLE empty (x INTEGER)")
    assert rows(db, "SELECT COUNT(*), SUM(x), MIN(x) FROM empty") == [
        (0, None, None)]


def test_aggregate_ignores_nulls(landfill_db):
    result = rows(landfill_db,
                  "SELECT COUNT(city), COUNT(*) FROM landfill")
    assert result == [(3, 4)]


def test_count_distinct(landfill_db):
    result = rows(landfill_db,
                  "SELECT COUNT(DISTINCT city) FROM landfill")
    assert result == [(2,)]


def test_non_grouped_column_rejected(landfill_db):
    with pytest.raises(ExecutionError):
        landfill_db.query(
            "SELECT name, COUNT(*) FROM landfill GROUP BY city")


def test_order_by_nulls_placement(landfill_db):
    ascending = rows(landfill_db,
                     "SELECT city FROM landfill ORDER BY city, id")
    assert ascending[-1] == (None,)
    descending = rows(landfill_db,
                      "SELECT city FROM landfill ORDER BY city DESC, id")
    assert descending[0] == (None,)


def test_limit_offset(landfill_db):
    result = rows(landfill_db,
                  "SELECT id FROM landfill ORDER BY id LIMIT 2 OFFSET 1")
    assert result == [(2,), (3,)]


def test_distinct_rows(landfill_db):
    result = rows(landfill_db,
                  "SELECT DISTINCT city FROM landfill ORDER BY city")
    assert result == [("Lyon",), ("Torino",), (None,)]


def test_union_dedupes_union_all_keeps(landfill_db):
    union = rows(landfill_db,
                 "SELECT city FROM landfill UNION SELECT city FROM landfill")
    union_all = rows(landfill_db, """
        SELECT city FROM landfill UNION ALL SELECT city FROM landfill""")
    assert len(union) == 3
    assert len(union_all) == 8


def test_intersect_and_except(landfill_db):
    intersect = rows(landfill_db, """
        SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
        INTERSECT
        SELECT elem_name FROM elem_contained WHERE landfill_name = 'b'""")
    assert intersect == [("Mercury",)]
    except_rows = rows(landfill_db, """
        SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
        EXCEPT
        SELECT elem_name FROM elem_contained WHERE landfill_name = 'b'
        ORDER BY elem_name""")
    assert except_rows == [("Asbestos",), ("Iron",)]


def test_scalar_subquery(landfill_db):
    result = rows(landfill_db, """
        SELECT name, (SELECT COUNT(*) FROM elem_contained e
                      WHERE e.landfill_name = landfill.name) AS n
        FROM landfill ORDER BY name""")
    assert result == [("a", 3), ("b", 2), ("c", 2), ("d", 0)]


def test_scalar_subquery_multiple_rows_raises(landfill_db):
    with pytest.raises(ExecutionError):
        landfill_db.query(
            "SELECT (SELECT elem_name FROM elem_contained)")


def test_correlated_exists(landfill_db):
    result = rows(landfill_db, """
        SELECT name FROM landfill l
        WHERE EXISTS (SELECT 1 FROM elem_contained e
                      WHERE e.landfill_name = l.name
                        AND e.elem_name = 'Iron')
        ORDER BY name""")
    assert result == [("a",), ("c",)]


def test_not_in_with_null_semantics(db):
    db.execute("CREATE TABLE t (x INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    db.execute("CREATE TABLE u (x INTEGER)")
    db.execute("INSERT INTO u VALUES (1), (NULL)")
    # 2 NOT IN (1, NULL) is unknown, so no rows pass.
    assert rows(db, "SELECT x FROM t WHERE x NOT IN (SELECT x FROM u)") == []


def test_in_subquery(landfill_db):
    result = rows(landfill_db, """
        SELECT DISTINCT landfill_name FROM elem_contained
        WHERE elem_name IN (SELECT elem_name FROM elem_contained
                            WHERE landfill_name = 'c')
        ORDER BY landfill_name""")
    assert result == [("a",), ("c",)]


def test_subquery_in_from(landfill_db):
    result = rows(landfill_db, """
        SELECT s.city, s.n FROM
          (SELECT city, COUNT(*) AS n FROM landfill GROUP BY city) AS s
        WHERE s.n > 1""")
    assert result == [("Torino", 2)]


def test_three_valued_logic_in_where(landfill_db):
    # city = NULL comparison is unknown -> filtered out, not an error.
    assert rows(landfill_db,
                "SELECT name FROM landfill WHERE city = NULL") == []


def test_between(landfill_db):
    result = rows(landfill_db,
                  "SELECT name FROM landfill WHERE area BETWEEN 50 AND 130 "
                  "ORDER BY name")
    assert result == [("a",), ("b",)]


def test_like_wildcards(landfill_db):
    result = rows(landfill_db, """
        SELECT DISTINCT elem_name FROM elem_contained
        WHERE elem_name LIKE '_e%' ORDER BY elem_name""")
    assert result == [("Lead",), ("Mercury",)]


def test_division_by_zero_raises(db):
    with pytest.raises(ExecutionError):
        db.query("SELECT 1 / 0")


def test_integer_division_truncates(db):
    assert rows(db, "SELECT 7 / 2, -7 / 2, 7.0 / 2") == [(3, -3, 3.5)]


def test_order_by_expression(landfill_db):
    result = rows(landfill_db,
                  "SELECT name FROM landfill WHERE area IS NOT NULL "
                  "ORDER BY area * -1")
    assert result == [("a",), ("b",), ("c",)]


def test_case_expression_in_projection(landfill_db):
    result = rows(landfill_db, """
        SELECT name, CASE WHEN area > 100 THEN 'big'
                          WHEN area > 50 THEN 'mid'
                          ELSE 'small' END
        FROM landfill WHERE area IS NOT NULL ORDER BY name""")
    assert result == [("a", "big"), ("b", "mid"), ("c", "small")]


def test_duplicate_alias_rejected(landfill_db):
    with pytest.raises(Exception):
        landfill_db.query("SELECT * FROM landfill a, landfill a")
