"""DML/DDL behaviour: constraints, defaults, updates, indexes."""

import pytest

from repro.relational import (CatalogError, ConstraintViolation, Database,
                              SchemaError, TypeMismatchError)


def test_create_and_drop_table(db):
    db.execute("CREATE TABLE t (x INTEGER)")
    assert db.catalog.has_table("t")
    db.execute("DROP TABLE t")
    assert not db.catalog.has_table("t")


def test_create_existing_table_raises(db):
    db.execute("CREATE TABLE t (x INTEGER)")
    with pytest.raises(CatalogError):
        db.execute("CREATE TABLE t (x INTEGER)")
    db.execute("CREATE TABLE IF NOT EXISTS t (x INTEGER)")  # no error


def test_drop_missing_table(db):
    with pytest.raises(CatalogError):
        db.execute("DROP TABLE missing")
    db.execute("DROP TABLE IF EXISTS missing")  # no error


def test_primary_key_uniqueness(db):
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'a')")
    with pytest.raises(ConstraintViolation):
        db.execute("INSERT INTO t VALUES (1, 'b')")
    # The failed insert must not leave the row behind.
    assert len(db.query("SELECT * FROM t")) == 1


def test_primary_key_not_null(db):
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
    with pytest.raises(ConstraintViolation):
        db.execute("INSERT INTO t VALUES (NULL)")


def test_not_null_enforced(db):
    db.execute("CREATE TABLE t (v TEXT NOT NULL)")
    with pytest.raises(ConstraintViolation):
        db.execute("INSERT INTO t VALUES (NULL)")


def test_unique_column(db):
    db.execute("CREATE TABLE t (v TEXT UNIQUE)")
    db.execute("INSERT INTO t VALUES ('a'), (NULL), (NULL)")  # NULLs ok
    with pytest.raises(ConstraintViolation):
        db.execute("INSERT INTO t VALUES ('a')")


def test_default_values(db):
    db.execute("CREATE TABLE t (id INTEGER, status TEXT DEFAULT 'new')")
    db.execute("INSERT INTO t (id) VALUES (1)")
    assert db.query("SELECT status FROM t").rows == [("new",)]


def test_insert_column_subset_fills_nulls(db):
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    db.execute("INSERT INTO t (b) VALUES ('x')")
    assert db.query("SELECT a, b FROM t").rows == [(None, "x")]


def test_insert_type_coercion_and_errors(db):
    db.execute("CREATE TABLE t (a INTEGER, b REAL, c TEXT, d BOOLEAN)")
    db.execute("INSERT INTO t VALUES (1, 2, 'x', TRUE)")
    assert db.query("SELECT b FROM t").rows == [(2.0,)]
    with pytest.raises(TypeMismatchError):
        db.execute("INSERT INTO t VALUES ('abc', 1.0, 'x', FALSE)")


def test_insert_select(db):
    db.execute("CREATE TABLE src (x INTEGER)")
    db.execute("INSERT INTO src VALUES (1), (2), (3)")
    db.execute("CREATE TABLE dst (x INTEGER)")
    affected = db.execute("INSERT INTO dst SELECT x * 10 FROM src")
    assert affected == 3
    assert db.query("SELECT x FROM dst ORDER BY x").rows == [
        (10,), (20,), (30,)]


def test_update_with_expression(db):
    db.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    affected = db.execute("UPDATE t SET v = v + 1 WHERE id = 2")
    assert affected == 1
    assert db.query("SELECT v FROM t ORDER BY id").rows == [(10,), (21,)]


def test_update_reindexes(db):
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    db.execute("CREATE INDEX iv ON t (v)")
    db.execute("UPDATE t SET v = 'z' WHERE id = 1")
    assert db.query("SELECT id FROM t WHERE v = 'z'").rows == [(1,)]
    assert db.query("SELECT id FROM t WHERE v = 'a'").rows == []


def test_update_violating_pk_rolls_back(db):
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    with pytest.raises(ConstraintViolation):
        db.execute("UPDATE t SET id = 1 WHERE id = 2")
    assert db.query("SELECT id FROM t ORDER BY id").rows == [(1,), (2,)]


def test_delete_with_and_without_where(db):
    db.execute("CREATE TABLE t (x INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2), (3)")
    assert db.execute("DELETE FROM t WHERE x > 1") == 2
    assert db.execute("DELETE FROM t") == 1
    assert db.query("SELECT * FROM t").rows == []


def test_index_speeds_equality_lookup_and_stays_correct(db):
    db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
    db.insert_rows("t", ({"k": i % 100, "v": f"v{i}"} for i in range(1000)))
    without = db.query("SELECT COUNT(*) FROM t WHERE k = 7").scalar()
    db.execute("CREATE INDEX ik ON t (k)")
    with_index = db.query("SELECT COUNT(*) FROM t WHERE k = 7").scalar()
    assert without == with_index == 10


def test_unique_index_rejects_duplicates(db):
    db.execute("CREATE TABLE t (k INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    db.execute("CREATE UNIQUE INDEX uk ON t (k)")
    with pytest.raises(ConstraintViolation):
        db.execute("INSERT INTO t VALUES (1)")


def test_create_unique_index_on_existing_duplicates_fails(db):
    db.execute("CREATE TABLE t (k INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (1)")
    with pytest.raises(ConstraintViolation):
        db.execute("CREATE UNIQUE INDEX uk ON t (k)")


def test_sorted_index_range(db):
    db.execute("CREATE TABLE t (k INTEGER)")
    db.execute("INSERT INTO t VALUES (5), (1), (9), (3)")
    db.execute("CREATE INDEX sk ON t (k) USING sorted")
    index = db.table("t").indexes["sk"]
    values = sorted(db.table("t").row(rid)[0]
                    for rid in index.range(low=2, high=8))
    assert values == [3, 5]


def test_drop_index(db):
    db.execute("CREATE TABLE t (k INTEGER)")
    db.execute("CREATE INDEX ik ON t (k)")
    db.execute("DROP INDEX ik")
    with pytest.raises(SchemaError):
        db.execute("DROP INDEX ik")
    db.execute("DROP INDEX IF EXISTS ik")  # no error


def test_execute_script_multiple_statements(db):
    results = db.execute_script("""
        CREATE TABLE t (x INTEGER);
        INSERT INTO t VALUES (1), (2);
        SELECT COUNT(*) FROM t;
    """)
    assert results[-1].scalar() == 2
