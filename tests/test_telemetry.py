"""End-to-end telemetry: metrics registry, tracing, slow-query log,
instrumented pipeline layers, and the /api/v1 observability surface."""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.crosse import CrossePlatform
from repro.durability import DurabilityOptions
from repro.federation import (CrosseRestService, FederationOptions,
                              MediatedDatabank, Mediator)
from repro.rdf.namespace import SMG
from repro.rdf.store import Triple, TripleStore
from repro.rdf.terms import Literal
from repro.relational import Database
from repro.telemetry import (DEFAULT_LATENCY_BUCKETS, MetricsRegistry,
                             SlowQueryLog, Telemetry, TelemetryOptions,
                             Tracer, create_telemetry)

ENRICHED = ("SELECT elem_name, amount FROM elem_contained "
            "WHERE amount > 2.0 "
            "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")


def danger_kb() -> TripleStore:
    kb = TripleStore()
    for name, level in (("lead", "high"), ("arsenic", "high"),
                        ("zinc", "low"), ("copper", "low")):
        kb.add(Triple(SMG[name], SMG["dangerLevel"], Literal(level)))
    return kb


def elements_db(name: str, rows) -> Database:
    db = Database(name)
    db.execute("CREATE TABLE elem_contained (elem_name TEXT, amount REAL)")
    for elem, amount in rows:
        db.execute(f"INSERT INTO elem_contained VALUES ('{elem}', {amount})")
    return db


def two_source_mediator() -> Mediator:
    mediator = Mediator(options=FederationOptions(max_workers=2))
    mediator.register_source(
        "a", elements_db("plant-a", [("lead", 12.0), ("zinc", 3.0)]))
    mediator.register_source(
        "b", elements_db("plant-b", [("arsenic", 9.0), ("copper", 1.0)]))
    mediator.define_view("elem_contained", [
        ("a", "SELECT * FROM elem_contained"),
        ("b", "SELECT * FROM elem_contained")])
    return mediator


# ---------------------------------------------------------------------------
# metrics registry


class TestMetricsRegistry:
    def test_counter_gauge_basics(self):
        registry = MetricsRegistry()
        hits = registry.counter("repro_hits_total", "hits")
        hits.inc()
        hits.inc(2.5)
        assert hits.value == 3.5
        with pytest.raises(ValueError):
            hits.inc(-1)
        depth = registry.gauge("repro_depth", "queue depth")
        depth.set(4)
        depth.dec()
        assert depth.value == 3.0

    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_x_total") \
            is registry.counter("repro_x_total")

    def test_kind_and_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels=("db",))
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total", labels=("db",))
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", labels=("table",))

    def test_labelled_family_children(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_rows_total", "rows",
                                  labels=("db",))
        family.labels("main").inc(5)
        family.labels("scratch").inc(1)
        assert family.labels("main").value == 5.0
        assert set(family.children()) == {("main",), ("scratch",)}
        with pytest.raises(ValueError):
            family.labels("main", "extra")

    def test_invalid_metric_name(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds",
                                  buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.05, 0.05, 0.5):
            hist.observe(value)
        assert hist.count == 6
        assert hist.sum == pytest.approx(0.66)
        assert hist.min == 0.005 and hist.max == 0.5
        p50 = hist.percentile(0.5)
        assert 0.01 <= p50 <= 0.1        # inside the winning bucket
        assert hist.percentile(0.99) <= 0.5  # clamped to observed max
        assert hist.percentile(0.0) >= 0.005
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_histogram_snapshot_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == {"1.0": 1, "2.0": 2, "+Inf": 3}
        assert snap["count"] == 3

    def test_empty_histogram_percentile_is_none(self):
        assert MetricsRegistry().histogram("repro_x_seconds") \
            .percentile(0.5) is None

    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "queries",
                         labels=("user",)).labels("amy").inc()
        out = registry.to_dict()
        assert out["repro_q_total"]["type"] == "counter"
        assert out["repro_q_total"]["series"] == [
            {"labels": {"user": "amy"}, "value": 1.0}]

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "queries run",
                         labels=("user",)).labels('o"hara\n').inc(2)
        registry.histogram("repro_lat_seconds", "latency",
                           buckets=(0.5,)).observe(0.1)
        text = registry.render_prometheus()
        assert "# HELP repro_q_total queries run" in text
        assert "# TYPE repro_q_total counter" in text
        assert r'repro_q_total{user="o\"hara\n"} 2' in text
        assert 'repro_lat_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_count 1" in text
        assert text.endswith("\n")


# ---------------------------------------------------------------------------
# tracer


class TestTracer:
    def test_span_is_noop_outside_root(self):
        tracer = Tracer()
        with tracer.span("orphan") as span:
            assert span is None

    def test_nested_spans_and_registration(self):
        tracer = Tracer()
        with tracer.query_span("q", statement="SELECT 1") as root:
            with tracer.span("child", db="main") as child:
                with tracer.span("grandchild"):
                    pass
            assert child.attrs["db"] == "main"
        assert not root.open
        assert root.query_id.startswith("q-")
        assert tracer.trace(root.query_id) is root
        assert root.find("grandchild") is not None
        assert [span.name for span in root.children] == ["child"]

    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.query_span("q") as root:
                raise RuntimeError("boom")
        assert root.error == "RuntimeError: boom"
        assert "error" in root.to_dict()

    def test_span_budget_drops_excess(self):
        tracer = Tracer(max_spans=3)
        with tracer.query_span("q") as root:
            for _ in range(5):
                with tracer.span("child"):
                    pass
        assert len(root.children) == 2      # root + 2 children = 3
        assert root.dropped_spans == 3
        assert root.to_dict()["dropped_spans"] == 3

    def test_retention_evicts_oldest(self):
        tracer = Tracer(retention=2)
        roots = [tracer.start_root("q") for _ in range(3)]
        for root in roots:
            root.finish()
        assert tracer.trace(roots[0].query_id) is None
        assert [r.query_id for r in tracer.traces()] == \
            [roots[1].query_id, roots[2].query_id]

    def test_record_synthetic(self):
        tracer = Tracer()
        with tracer.query_span("q") as root:
            tracer.record_synthetic("parse", 0.01, cached=False)
        parse = root.find("parse")
        assert parse.wall_s == 0.01 and not parse.open

    def test_attach_reaches_across_threads(self):
        tracer = Tracer()
        root = tracer.start_root("q")

        def worker():
            # This thread never saw the contextvar; explicit parenting.
            with tracer.attach(root, "background"):
                time.sleep(0.001)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        root.finish()
        assert root.find("background") is not None
        with tracer.attach(None, "nothing") as span:
            assert span is None


# ---------------------------------------------------------------------------
# options / bundle / slow log


class TestOptionsAndBundle:
    def test_options_validation(self):
        with pytest.raises(ValueError):
            TelemetryOptions(slow_query_threshold_s=-1.0)
        with pytest.raises(ValueError):
            TelemetryOptions(trace_retention=0)
        with pytest.raises(ValueError):
            TelemetryOptions(latency_buckets=(0.1, 0.1))
        options = TelemetryOptions()
        assert options.latency_buckets == DEFAULT_LATENCY_BUCKETS
        faster = options.replace(slow_query_threshold_s=0.01)
        assert faster.slow_query_threshold_s == 0.01
        assert options.slow_query_threshold_s == 0.25

    def test_create_telemetry_normalisation(self):
        assert create_telemetry(None) is None
        assert create_telemetry(False) is None
        assert isinstance(create_telemetry(True), Telemetry)
        bundle = Telemetry()
        assert create_telemetry(bundle) is bundle
        assert create_telemetry(TelemetryOptions(enabled=False)) is None
        assert isinstance(
            create_telemetry(TelemetryOptions()), Telemetry)
        with pytest.raises(TypeError):
            create_telemetry("yes")

    def test_slow_log_threshold_and_ring(self):
        log = SlowQueryLog(threshold_s=None, size=2)
        assert not log.should_record(100.0)
        log = SlowQueryLog(threshold_s=0.0, size=2)
        assert log.should_record(0.0)
        from repro.telemetry import SlowQueryEntry
        for idx in range(3):
            log.record(SlowQueryEntry(query_id=f"q-{idx}", statement=None,
                                      user=None, wall_s=float(idx)))
        entries = log.entries()
        assert [e.query_id for e in entries] == ["q-2", "q-1"]
        assert log.recorded == 3
        assert log.to_dict()["entries"][0]["query_id"] == "q-2"


# ---------------------------------------------------------------------------
# session-level tracing over a plain databank


class TestSessionTracing:
    def make_session(self, **telemetry_kwargs):
        db = elements_db("main", [("lead", 12.0), ("zinc", 3.0),
                                  ("arsenic", 9.0)])
        return repro.connect(
            db, knowledge_base=danger_kb(),
            telemetry=TelemetryOptions(**telemetry_kwargs))

    def test_execute_produces_full_span_tree(self):
        session = self.make_session(slow_query_threshold_s=0.0)
        outcome = session.execute(ENRICHED)
        root = session.last_trace()
        assert root is not None and not root.open
        assert root.name == "sesql.query"
        assert root.attrs["rows"] == len(outcome.result)
        parse = root.find("sesql.parse")
        assert parse is not None and parse.attrs["cached"] is False
        for name in ("sesql.extract", "sesql.sql", "db.execute",
                     "sesql.combine", "sparql.execute"):
            assert root.find(name) is not None, name
        assert session.telemetry.tracer.trace(root.query_id) is root

    def test_plan_cache_hit_marks_parse_cached(self):
        session = self.make_session()
        session.execute(ENRICHED)
        session.execute(ENRICHED)
        parse = session.last_trace().find("sesql.parse")
        assert parse.attrs["cached"] is True and parse.wall_s == 0.0

    def test_metrics_recorded(self):
        session = self.make_session(slow_query_threshold_s=0.0)
        session.execute(ENRICHED)
        tel = session.telemetry
        metrics = tel.metrics.to_dict()
        totals = {tuple(s["labels"].items()): s["value"]
                  for s in metrics["repro_queries_total"]["series"]}
        assert totals[(("backend", "sesql"), ("user", ""))] == 1.0
        assert metrics["repro_query_seconds"]["series"][0]["count"] == 1
        assert metrics["repro_sesql_stage_seconds"]["series"]
        assert metrics["repro_db_rows_returned_total"]["series"]
        assert metrics["repro_sparql_executions_total"]["series"][0][
            "value"] == 1.0
        entry = tel.slow_queries.entries()[0]
        assert entry.trace["name"] == "sesql.query"
        assert entry.statement == ENRICHED

    def test_slow_threshold_none_disables_log(self):
        session = self.make_session(slow_query_threshold_s=None)
        session.execute(ENRICHED)
        assert session.telemetry.slow_queries.entries() == []

    def test_error_query_still_traced(self):
        session = self.make_session()
        with pytest.raises(Exception):
            session.execute("SELECT nope FROM missing_table")
        root = session.last_trace()
        assert root is not None and root.error is not None

    def test_telemetry_off_is_inert(self):
        db = elements_db("main", [("lead", 12.0)])
        session = repro.connect(db, knowledge_base=danger_kb())
        session.execute(ENRICHED)
        assert session.telemetry is None
        assert session.last_trace() is None
        assert session.engine.telemetry is None
        assert session.engine.sqm.telemetry is None
        assert db.telemetry is None

    def test_connect_disabled_options_is_off(self):
        db = elements_db("main", [("lead", 12.0)])
        session = repro.connect(db, knowledge_base=danger_kb(),
                                telemetry=TelemetryOptions(enabled=False))
        assert session.telemetry is None

    def test_shared_bundle_across_sessions(self):
        bundle = Telemetry()
        for name in ("one", "two"):
            db = elements_db(name, [("lead", 12.0)])
            session = repro.connect(db, knowledge_base=danger_kb(),
                                    telemetry=bundle)
            session.execute(ENRICHED)
        series = bundle.metrics.to_dict()["repro_queries_total"]["series"]
        assert series[0]["value"] == 2.0


class TestStreamTracing:
    def make_session(self):
        db = elements_db("main", [("lead", 12.0), ("zinc", 3.0),
                                  ("arsenic", 9.0)])
        return repro.connect(
            db, knowledge_base=danger_kb(),
            telemetry=TelemetryOptions(slow_query_threshold_s=0.0))

    def test_stream_root_open_until_drained(self):
        session = self.make_session()
        cursor = session.stream(ENRICHED)
        root = session.last_trace()
        assert root.name == "sesql.stream" and root.open
        # retrievable by id while still open
        assert session.telemetry.tracer.trace(root.query_id).open
        rows = list(cursor)
        assert not root.open
        assert root.attrs["rows"] == len(rows)

    def test_partial_drain_close_finishes_root(self):
        session = self.make_session()
        cursor = session.stream(ENRICHED, page_size=1)
        first = next(iter(cursor))
        assert first is not None
        root = session.last_trace()
        cursor.close()
        assert not root.open
        assert root.attrs["rows"] == 1
        entry = session.telemetry.slow_queries.entries()[0]
        assert entry.rows == 1

    def test_context_does_not_leak_between_pulls(self):
        session = self.make_session()
        cursor = session.stream(ENRICHED)
        iterator = iter(cursor)
        next(iterator)
        # Between pulls the consumer's context is span-free.
        assert session.telemetry.tracer.current() is None
        cursor.close()


class TestRowsYielded:
    def test_counts_partial_drains_exactly(self):
        db = elements_db("main", [("lead", 12.0), ("zinc", 3.0),
                                  ("arsenic", 9.0)])
        cursor = db.stream("SELECT * FROM elem_contained")
        assert cursor.rows_yielded == 0
        iterator = iter(cursor)
        next(iterator)
        next(iterator)
        assert cursor.rows_yielded == 2
        cursor.close()
        assert cursor.rows_yielded == 2
        cursor = db.stream("SELECT * FROM elem_contained")
        assert len(list(cursor)) == cursor.rows_yielded == 3


# ---------------------------------------------------------------------------
# one span tree across federation worker threads (acceptance scenario)


class TestMediatedTracing:
    def test_single_tree_covers_pipeline_and_sources(self):
        mediator = two_source_mediator()
        session = repro.connect(
            mediator.as_databank(), knowledge_base=danger_kb(),
            telemetry=TelemetryOptions(slow_query_threshold_s=0.0))
        outcome = session.execute(ENRICHED)
        assert len(outcome.result) == 3
        root = session.last_trace()
        ship = root.find("federation.ship")
        assert ship is not None
        fragments = ship.find_all("federation.fragment")
        assert {span.attrs["source"] for span in fragments} == {"a", "b"}
        assert all(span.attrs["rows"] >= 1 for span in fragments)
        # one tree: parse -> extract -> ship -> local execution -> combine
        for name in ("sesql.parse", "sesql.extract", "federation.ship",
                     "db.execute", "sesql.combine"):
            assert root.find(name) is not None, name
        metrics = session.telemetry.metrics.to_dict()
        sources = {s["labels"]["source"]: s["count"] for s in
                   metrics["repro_federation_fragment_seconds"]["series"]}
        assert sources == {"a": 1, "b": 1}

    def test_cached_view_hit_skips_fragment_spans(self):
        mediator = two_source_mediator()
        session = repro.connect(
            mediator.as_databank(), knowledge_base=danger_kb(),
            telemetry=TelemetryOptions())
        session.execute(ENRICHED)
        session.execute(ENRICHED)     # views already materialized
        root = session.last_trace()
        assert root.find("federation.fragment") is None


# ---------------------------------------------------------------------------
# satellite: cached-view hits re-emit first-materialization warnings


class TestCachedViewWarnings:
    def make_mediator(self):
        mediator = Mediator()
        mediator.register_source(
            "a", elements_db("plant-a", [("lead", 12.0)]))
        renamed = Database("plant-b")
        renamed.execute(
            "CREATE TABLE elements (name TEXT, quantity REAL)")
        renamed.execute("INSERT INTO elements VALUES ('zinc', 3.0)")
        mediator.register_source("b", renamed)
        mediator.define_view("elem_contained", [
            ("a", "SELECT * FROM elem_contained"),
            ("b", "SELECT * FROM elements")])
        return mediator

    def test_warning_survives_materialization_cache(self):
        session = self.make_mediator().connect()
        _, first = session.execute("SELECT * FROM elem_contained")
        assert any("first fragment wins" in w for w in first.warnings)
        _, second = session.execute("SELECT * FROM elem_contained")
        assert session.hits == 1     # served from the materialization
        assert any("first fragment wins" in w for w in second.warnings)
        # refresh drops the cached warnings along with the rows
        session.refresh()
        _, third = session.execute("SELECT * FROM elem_contained")
        assert any("first fragment wins" in w for w in third.warnings)

    def test_mediated_databank_reports_carry_warning(self):
        databank = MediatedDatabank(self.make_mediator())
        databank.query("SELECT * FROM elem_contained")
        assert any("first fragment wins" in w
                   for w in databank.last_report.warnings)
        databank.query("SELECT * FROM elem_contained")
        assert any("first fragment wins" in w
                   for w in databank.last_report.warnings)


# ---------------------------------------------------------------------------
# satellite: sparql_executions deprecation (completed — attribute removed)


class TestSparqlExecutionCount:
    def test_deprecated_attribute_is_gone(self):
        db = elements_db("main", [("lead", 12.0)])
        session = repro.connect(db, knowledge_base=danger_kb())
        session.execute(ENRICHED)
        sqm = session.engine.sqm
        assert sqm.sparql_execution_count() == 1
        assert not hasattr(sqm, "sparql_executions")

    def test_metric_mirrors_counter(self):
        db = elements_db("main", [("lead", 12.0)])
        session = repro.connect(db, knowledge_base=danger_kb(),
                                telemetry=TelemetryOptions())
        session.execute(ENRICHED)
        metrics = session.telemetry.metrics.to_dict()
        assert metrics["repro_sparql_executions_total"]["series"][0][
            "value"] == session.engine.sqm.sparql_execution_count()


# ---------------------------------------------------------------------------
# platform + REST surface


def build_platform(**kwargs) -> CrossePlatform:
    db = elements_db("bank", [("lead", 12.0), ("zinc", 3.0)])
    platform = CrossePlatform(db, **kwargs)
    platform.register_user("amy")
    return platform


class TestPlatformTelemetry:
    def test_constructor_wires_bundle(self):
        platform = build_platform(
            telemetry=TelemetryOptions(slow_query_threshold_s=0.0))
        platform.run_sesql("amy", "SELECT elem_name FROM elem_contained")
        session = platform.session_for("amy")
        root = session.last_trace()
        assert root is not None
        totals = platform.telemetry.metrics.to_dict()[
            "repro_queries_total"]["series"]
        assert totals[0]["labels"]["user"] == "amy"

    def test_enable_after_construction_reaches_cached_sessions(self):
        platform = build_platform()
        session = platform.session_for("amy")
        session.execute("SELECT elem_name FROM elem_contained")
        assert session.last_trace() is None
        platform.enable_telemetry(TelemetryOptions())
        session = platform.session_for("amy")
        session.execute("SELECT elem_name FROM elem_contained")
        assert session.last_trace() is not None

    def test_connect_rejects_platform_telemetry_kwarg(self):
        platform = build_platform()
        with pytest.raises(repro.SessionError):
            repro.connect(platform, telemetry=TelemetryOptions())


class TestObservabilityRoutes:
    def make_service(self):
        platform = build_platform(
            telemetry=TelemetryOptions(slow_query_threshold_s=0.0))
        return CrosseRestService(platform)

    def test_metrics_json_and_prometheus(self):
        service = self.make_service()
        service.request("POST", "/api/v1/query",
                        {"username": "amy",
                         "query": "SELECT elem_name FROM elem_contained"})
        response = service.request("GET", "/api/v1/metrics")
        assert response.status == 200
        assert "repro_queries_total" in response.payload["metrics"]
        text = service.request(
            "GET", "/api/v1/metrics?format=prometheus")
        assert text.status == 200
        assert "# TYPE repro_queries_total counter" in text.payload
        bad = service.request("GET", "/api/v1/metrics?format=xml")
        assert bad.status == 400
        assert bad.payload["error"]["code"] == "invalid_format"

    def test_query_returns_query_id_and_trace_route(self):
        service = self.make_service()
        response = service.request(
            "POST", "/api/v1/query",
            {"username": "amy",
             "query": "SELECT elem_name FROM elem_contained"})
        assert response.status == 200
        query_id = response.payload["query_id"]
        trace = service.request("GET", f"/api/v1/traces/{query_id}")
        assert trace.status == 200
        assert trace.payload["trace"]["query_id"] == query_id
        missing = service.request("GET", "/api/v1/traces/q-999999")
        assert missing.status == 404
        assert missing.payload["error"]["code"] == "trace_not_found"

    def test_slow_queries_route(self):
        service = self.make_service()
        service.request("POST", "/api/v1/query",
                        {"username": "amy",
                         "query": "SELECT elem_name FROM elem_contained"})
        response = service.request("GET", "/api/v1/slow_queries")
        assert response.status == 200
        assert response.payload["threshold_s"] == 0.0
        assert response.payload["slow_queries"]
        entry = response.payload["slow_queries"][0]
        assert entry["user"] == "amy"

    def test_disabled_platform_404s(self):
        service = CrosseRestService(build_platform())
        for path in ("/api/v1/metrics", "/api/v1/traces/q-000001",
                     "/api/v1/slow_queries"):
            response = service.request("GET", path)
            assert response.status == 404
            assert response.payload["error"]["code"] == \
                "telemetry_disabled"

    def test_pool_metrics_flow_into_registry(self):
        service = self.make_service()
        service.request("POST", "/api/v1/query",
                        {"username": "amy",
                         "query": "SELECT elem_name FROM elem_contained"})
        metrics = service.platform.telemetry.metrics.to_dict()
        assert metrics["repro_pool_checkouts_total"]["series"][0][
            "value"] >= 1.0
        assert metrics["repro_pool_checkout_wait_seconds"]["series"][0][
            "count"] >= 1


# ---------------------------------------------------------------------------
# satellite: cross-thread span parenting (snapshot thread + workers)


class TestCrossThreadParenting:
    def test_snapshot_span_parents_under_originating_query(self, tmp_path):
        platform = build_platform(
            telemetry=TelemetryOptions(),
            durability=DurabilityOptions(directory=str(tmp_path),
                                         snapshot_every=1, fsync="never"))
        platform.run_sesql("amy", ENRICHED.replace("2.0", "1.0"))
        session = platform.session_for("amy")
        root = session.last_trace()
        assert root is not None
        # The query's context-feed append tripped snapshot_every; the
        # background thread attaches its span to this root explicitly.
        deadline = time.time() + 5.0
        while root.find("durability.snapshot") is None \
                and time.time() < deadline:
            time.sleep(0.01)
        snap = root.find("durability.snapshot")
        assert snap is not None, "snapshot span never parented under root"
        assert not platform.durability.snapshot_errors
        # The main thread's context never leaked.
        assert platform.telemetry.tracer.current() is None
        # WAL metering is live too.
        metrics = platform.telemetry.metrics.to_dict()
        assert metrics["repro_wal_bytes_total"]["series"][0]["value"] > 0
        assert metrics["repro_snapshot_seconds"]["series"][0]["count"] >= 1

    def test_federation_worker_spans_join_root_tree(self):
        # Regression shape from the issue: 2-source mediated query, all
        # fragment spans inside ONE tree despite running on pool threads.
        mediator = two_source_mediator()
        session = repro.connect(mediator.as_databank(),
                                knowledge_base=danger_kb(),
                                telemetry=TelemetryOptions())
        session.execute(ENRICHED)
        root = session.last_trace()
        fragments = root.find_all("federation.fragment")
        assert {span.attrs["source"] for span in fragments} == {"a", "b"}
        # and nothing landed in a second tree
        assert len(session.telemetry.tracer.traces()) == 1


# ---------------------------------------------------------------------------
# lock / pool wait metrics


class TestLockMetrics:
    def test_rwlock_read_wait_observed_under_write_pressure(self):
        db = elements_db("main", [("lead", 12.0)])
        telemetry = Telemetry()
        db.attach_telemetry(telemetry)
        release = threading.Event()
        acquired = threading.Event()

        def writer():
            with db.rwlock.write_locked():
                acquired.set()
                release.wait(2.0)

        thread = threading.Thread(target=writer)
        thread.start()
        acquired.wait(2.0)
        reader = threading.Thread(
            target=lambda: db.query("SELECT * FROM elem_contained"))
        reader.start()
        time.sleep(0.05)
        release.set()
        reader.join(2.0)
        thread.join(2.0)
        family = telemetry.metrics.to_dict()["repro_rwlock_wait_seconds"]
        waits = {s["labels"]["mode"]: s["count"]
                 for s in family["series"]}
        assert waits.get("read", 0) >= 1
