"""Parallel fragment shipping: worker pool, failure policies, cache."""

import time

import pytest

from repro.federation import (FederationOptions, FragmentCache,
                              MediationError, Mediator, RemoteTableSource,
                              attach_foreign_table)
from repro.relational import Database

SERIAL = FederationOptions(max_workers=1, fragment_cache_size=0)
PARALLEL = FederationOptions(max_workers=8, fragment_cache_size=0)


class FlakyDatabase(Database):
    """A source whose first *failures* queries raise (None = always)."""

    def __init__(self, name: str, failures: int | None = None) -> None:
        super().__init__(name)
        self.failures = failures
        self.calls = 0

    def query(self, sql):
        self.calls += 1
        if self.failures is None or self.calls <= self.failures:
            raise RuntimeError("source offline")
        return super().query(sql)


def _landfill_db(cls, name, rows):
    db = cls(name) if cls is not Database else Database(name)
    db.execute("CREATE TABLE landfill (name TEXT, city TEXT, size REAL)")
    for row_name, city, size in rows:
        db.execute(f"INSERT INTO landfill VALUES "
                   f"('{row_name}', '{city}', {size})")
    return db


def _four_source_mediator(options=None, reconciliation="union_all",
                          key_columns=None):
    mediator = Mediator(options)
    fragments = []
    for index in range(4):
        rows = [(f"lf_{index}_{i}", f"city{(index + i) % 3}",
                 float(index * 10 + i)) for i in range(5)]
        # One row identical in every source (union dedupes it) and one
        # sharing only its key (prefer_first precedence decides).
        rows.append(("dup", "Milano", 1.0))
        rows.append(("shared", "Torino", float(index)))
        name = f"src{index}"
        mediator.register_source(
            name, _landfill_db(Database, name, rows))
        fragments.append((name, "SELECT name, city, size FROM landfill"))
    mediator.define_view("eu", fragments, reconciliation,
                         key_columns=key_columns)
    return mediator


# -- options ------------------------------------------------------------------


def test_options_validation():
    with pytest.raises(MediationError):
        FederationOptions(max_workers=0)
    with pytest.raises(MediationError):
        FederationOptions(failure_policy="explode")
    with pytest.raises(MediationError):
        FederationOptions(source_policies={"src": "explode"})
    with pytest.raises(MediationError):
        FederationOptions(max_retries=-1)
    assert FederationOptions(
        source_policies={"a": "skip"}).policy_for("a") == "skip"
    assert FederationOptions().policy_for("a") == "fail"


# -- serial/parallel equivalence ----------------------------------------------


@pytest.mark.parametrize("reconciliation,key_columns", [
    ("union_all", None),
    ("union", None),
    ("prefer_first", ["name"]),
])
def test_parallel_shipping_is_byte_identical(reconciliation, key_columns):
    sql = "SELECT name, city, size FROM eu ORDER BY name, size"
    serial, _ = _four_source_mediator(
        SERIAL, reconciliation, key_columns).query(sql)
    parallel, report = _four_source_mediator(
        PARALLEL, reconciliation, key_columns).query(sql)
    assert parallel.rows == serial.rows
    assert parallel.columns == serial.columns
    # Every source really was consulted in the parallel run too.
    assert set(report.rows_per_source) == {f"src{i}" for i in range(4)}


def test_duplicate_names_in_explicit_views_ship_once():
    # Regression: the batched path collected 'eu' twice from
    # views=["eu", "eu"] and crashed storing the second copy.
    mediator = _four_source_mediator(PARALLEL)
    result, report = mediator.query("SELECT COUNT(*) FROM eu",
                                    views=["eu", "eu"])
    assert result.scalar() == 28
    assert len(report.sub_queries) == 4


def test_parallel_batch_ships_all_views_of_one_query():
    mediator = _four_source_mediator(PARALLEL)
    mediator.define_view("it_only", [
        ("src0", "SELECT name FROM landfill")])
    result, report = mediator.query(
        "SELECT COUNT(*) FROM eu, it_only")
    assert result.scalar() == 28 * 7
    assert set(report.view_rows) == {"eu", "it_only"}
    assert len(report.sub_queries) == 5
    # Per-source wall-clock was recorded for every consulted source.
    assert set(report.source_timings) == {f"src{i}" for i in range(4)}


def test_session_options_override_mediator_options():
    mediator = _four_source_mediator(SERIAL)
    session = mediator.connect(PARALLEL)
    assert session.options.max_workers == 8
    result, _ = session.execute("SELECT COUNT(*) FROM eu")
    assert result.scalar() == 28


# -- failure policies ----------------------------------------------------------


def _mediator_with_failing_source(options, failures=None):
    mediator = Mediator(options)
    mediator.register_source(
        "good", _landfill_db(Database, "good",
                             [("lf_ok", "Torino", 2.0)]))
    # Setup runs through execute(); only query() — the shipping entry
    # point — is flaky, so the table builds fine.
    flaky = _landfill_db(FlakyDatabase, "bad",
                         [("lf_bad", "Lyon", 3.0)])
    flaky.failures = failures
    mediator.register_source("bad", flaky)
    mediator.define_view("eu", [
        ("good", "SELECT name, city, size FROM landfill"),
        ("bad", "SELECT name, city, size FROM landfill")])
    return mediator, flaky


def test_fail_policy_names_view_source_and_attempts():
    mediator, _flaky = _mediator_with_failing_source(PARALLEL)
    with pytest.raises(MediationError) as excinfo:
        mediator.query("SELECT * FROM eu")
    message = str(excinfo.value)
    assert "'eu'" in message and "'bad'" in message
    assert "1 attempt(s)" in message


def test_failure_mid_ship_leaves_session_usable():
    mediator, flaky = _mediator_with_failing_source(PARALLEL, failures=1)
    session = mediator.connect()
    with pytest.raises(MediationError):
        session.execute("SELECT * FROM eu")
    # No partially-shipped view may survive in the scratch database.
    assert session._scratch.table_names() == []
    assert session.misses == 0
    # The source recovers; the same session ships the view cleanly.
    result, _ = session.execute("SELECT COUNT(*) FROM eu")
    assert result.scalar() == 2


def test_skip_policy_drops_failing_source_and_records_it():
    options = PARALLEL.replace(failure_policy="skip")
    mediator, _flaky = _mediator_with_failing_source(options)
    result, report = mediator.query(
        "SELECT name FROM eu ORDER BY name")
    assert result.rows == [("lf_ok",)]
    assert report.skipped_sources == ["bad"]
    assert "source offline" in report.source_errors["bad"]
    assert report.rows_per_source == {"good": 1}


def test_skip_policy_with_every_fragment_failing_is_an_error():
    options = PARALLEL.replace(failure_policy="skip")
    mediator = Mediator(options)
    flaky = _landfill_db(FlakyDatabase, "only", [("lf", "Bari", 1.0)])
    flaky.calls = 0
    mediator.register_source("only", flaky)
    mediator.define_view("eu", [
        ("only", "SELECT name FROM landfill")])
    with pytest.raises(MediationError) as excinfo:
        mediator.query("SELECT * FROM eu")
    assert "every fragment was skipped" in str(excinfo.value)


def test_skip_reduced_view_is_not_cached_by_the_session():
    # Regression: a view assembled without a skipped source's rows was
    # cached as complete, serving the reduced copy (with clean reports)
    # even after the source recovered.
    options = PARALLEL.replace(failure_policy="skip")
    mediator, _flaky = _mediator_with_failing_source(options, failures=1)
    session = mediator.connect()
    result, first = session.execute("SELECT name FROM eu ORDER BY name")
    assert result.rows == [("lf_ok",)]
    assert first.skipped_sources == ["bad"]
    # The source recovers: the next query must re-ship, not hit.
    result, second = session.execute("SELECT name FROM eu ORDER BY name")
    assert result.rows == [("lf_bad",), ("lf_ok",)]
    assert second.skipped_sources == []
    assert session.hits == 0


def test_stream_drops_skip_reduced_views_on_cursor_close():
    options = PARALLEL.replace(failure_policy="skip")
    mediator, _flaky = _mediator_with_failing_source(options, failures=1)
    session = mediator.connect()
    cursor, report = session.stream("SELECT name FROM eu ORDER BY name")
    assert report.skipped_sources == ["bad"]
    assert cursor.fetchall() == [("lf_ok",)]
    # Exhaustion closed the cursor: the reduced copy is gone and the
    # recovered source ships in full next time.
    assert session._scratch.table_names() == []
    result, _ = session.execute("SELECT COUNT(*) FROM eu")
    assert result.scalar() == 2


def test_stream_error_drops_skip_reduced_views():
    # Regression: an eager plan error after a skip-reduced ship left
    # the reduced copy stranded under the view's name, so every later
    # query on the session crashed re-storing it.
    options = PARALLEL.replace(failure_policy="skip")
    mediator, _flaky = _mediator_with_failing_source(options, failures=1)
    session = mediator.connect()
    with pytest.raises(Exception):
        session.stream("SELECT no_such_column FROM eu")
    assert session._scratch.table_names() == []
    result, _ = session.execute("SELECT COUNT(*) FROM eu")
    assert result.scalar() == 2


def test_skipped_source_listed_once_across_its_fragments():
    options = PARALLEL.replace(failure_policy="skip")
    mediator, _flaky = _mediator_with_failing_source(options)
    mediator.define_view("wide", [
        ("good", "SELECT name, city, size FROM landfill"),
        ("bad", "SELECT name, city, size FROM landfill"),
        ("bad", "SELECT name, city, size FROM landfill WHERE size > 0")])
    result, report = mediator.query("SELECT name FROM wide")
    assert result.rows == [("lf_ok",)]
    assert report.skipped_sources == ["bad"]   # one entry, two fragments


def test_retry_policy_recovers_and_counts_attempts():
    options = PARALLEL.replace(
        source_policies={"bad": "retry"}, max_retries=3,
        backoff_s=0.001, backoff_cap_s=0.002)
    mediator, flaky = _mediator_with_failing_source(options, failures=2)
    result, report = mediator.query(
        "SELECT name FROM eu ORDER BY name")
    assert result.rows == [("lf_bad",), ("lf_ok",)]
    assert report.retry_counts == {"bad": 2}
    assert report.skipped_sources == []


def test_retry_exhaustion_escalates_to_failure():
    options = PARALLEL.replace(
        failure_policy="retry", max_retries=2,
        backoff_s=0.001, backoff_cap_s=0.002)
    mediator, _flaky = _mediator_with_failing_source(options)
    with pytest.raises(MediationError) as excinfo:
        mediator.query("SELECT * FROM eu")
    assert "3 attempt(s)" in str(excinfo.value)


# -- the fragment-result cache -------------------------------------------------


def test_fragment_cache_serves_repeated_ships():
    mediator = _four_source_mediator()   # default options: cache on
    _result, cold = mediator.query("SELECT COUNT(*) FROM eu")
    assert cold.fragment_cache_hits == 0
    result, warm = mediator.query("SELECT COUNT(*) FROM eu")
    assert warm.fragment_cache_hits == 4
    assert result.scalar() == 28
    # The decomposition is still reported even when served locally.
    assert len(warm.sub_queries) == 4


def test_fragment_cache_invalidated_by_source_dml():
    mediator = _four_source_mediator()
    mediator.query("SELECT COUNT(*) FROM eu")
    mediator.source("src0").execute(
        "INSERT INTO landfill VALUES ('fresh', 'Nice', 9.0)")
    result, report = mediator.query("SELECT COUNT(*) FROM eu")
    assert result.scalar() == 29          # the new row is visible
    assert report.fragment_cache_hits == 3  # only src0 re-shipped


def test_fragment_cache_skips_foreign_table_fragments():
    remote = _landfill_db(Database, "remote", [("lf_r", "Oslo", 4.0)])
    source = Database("source")
    attach_foreign_table(source, "landfill",
                         RemoteTableSource(remote, "landfill"))
    mediator = Mediator()
    mediator.register_source("source", source)
    mediator.define_view("eu", [
        ("source", "SELECT name, city, size FROM landfill")])
    mediator.query("SELECT COUNT(*) FROM eu")
    # The remote can change without moving 'source's generation stamp,
    # so the fragment must re-execute every time.
    remote.execute("INSERT INTO landfill VALUES ('lf_r2', 'Oslo', 5.0)")
    result, report = mediator.query("SELECT COUNT(*) FROM eu")
    assert result.scalar() == 2
    assert report.fragment_cache_hits == 0


def test_fragment_cache_lru_eviction():
    cache = FragmentCache(maxsize=2)
    from repro.relational.result import ResultSet
    for key in ("a", "b", "c"):
        cache.put((key,), ResultSet([key], []))
    assert len(cache) == 2
    assert cache.get(("a",)) is None      # evicted
    assert cache.get(("c",)) is not None


def test_database_generation_tracks_dml_and_ddl():
    db = Database()
    stamps = [db.generation]
    db.execute("CREATE TABLE t (n INTEGER)")
    stamps.append(db.generation)
    db.execute("INSERT INTO t VALUES (1)")
    stamps.append(db.generation)
    db.execute("UPDATE t SET n = 2")
    stamps.append(db.generation)
    db.execute("DELETE FROM t")
    stamps.append(db.generation)
    db.execute("DROP TABLE t")
    stamps.append(db.generation)
    assert stamps == sorted(set(stamps))  # strictly increasing
    db.execute("CREATE TABLE t (n INTEGER)")
    before = db.generation
    db.query("SELECT * FROM t")
    db.execute("ANALYZE t")
    assert db.generation == before        # reads and ANALYZE: no bump


def test_generation_bumps_on_csv_append():
    # Regression: load_csv appended via raw table inserts, bypassing
    # the stamp — fragment caches kept serving the pre-append rows.
    from repro.relational.csv_io import load_csv
    db = Database()
    load_csv(db, "t", "n\n1\n")
    before = db.generation
    load_csv(db, "t", "n\n2\n3\n", create=False)
    assert db.generation > before
    assert db.query("SELECT COUNT(*) FROM t").scalar() == 3


def test_generation_bumps_even_when_a_mutation_fails():
    # A multi-row INSERT dying mid-way has already mutated data; the
    # stamp must move or fragment caches would serve pre-failure rows.
    db = Database()
    db.execute("CREATE TABLE t (n INTEGER)")
    before = db.generation
    with pytest.raises(Exception):
        db.execute("INSERT INTO t VALUES (1), ('nope')")
    assert db.query("SELECT COUNT(*) FROM t").scalar() == 1
    assert db.generation > before


def test_session_cache_works_when_mediator_cache_is_off():
    mediator = _four_source_mediator(PARALLEL)   # caching disabled
    session = mediator.connect(
        PARALLEL.replace(fragment_cache_size=64))
    session.execute("SELECT COUNT(*) FROM eu")
    session.refresh()                     # drop the view-level copies
    _result, report = session.execute("SELECT COUNT(*) FROM eu")
    assert report.fragment_cache_hits == 4   # private cache, not dead


# -- reporting and explain -----------------------------------------------------


def test_column_rename_warns_and_first_fragment_wins():
    mediator = Mediator()
    mediator.register_source(
        "a", _landfill_db(Database, "a", [("lf_a", "Roma", 1.0)]))
    mediator.register_source(
        "b", _landfill_db(Database, "b", [("lf_b", "Pisa", 2.0)]))
    mediator.define_view("eu", [
        ("a", "SELECT name, city FROM landfill"),
        ("b", "SELECT name, city AS town FROM landfill")])
    result, report = mediator.query(
        "SELECT name, city FROM eu ORDER BY name")
    assert result.rows == [("lf_a", "Roma"), ("lf_b", "Pisa")]
    assert len(report.warnings) == 1
    assert "first fragment wins" in report.warnings[0]


def test_arity_error_names_both_column_lists():
    mediator = Mediator()
    mediator.register_source(
        "a", _landfill_db(Database, "a", [("lf_a", "Roma", 1.0)]))
    mediator.register_source(
        "b", _landfill_db(Database, "b", [("lf_b", "Pisa", 2.0)]))
    mediator.define_view("bad", [
        ("a", "SELECT name, city FROM landfill"),
        ("b", "SELECT name FROM landfill")])
    with pytest.raises(MediationError) as excinfo:
        mediator.query("SELECT * FROM bad")
    message = str(excinfo.value)
    assert "['name', 'city']" in message and "['name']" in message


def test_explain_shows_parallel_batch():
    mediator = _four_source_mediator(PARALLEL)
    mediator.define_view("it_only", [("src0", "SELECT name FROM landfill")])
    session = mediator.connect()
    plan = session.explain("SELECT COUNT(*) FROM eu, it_only")
    batch_stages = [stage for stage in plan.stages
                    if stage.name == "materialize"]
    assert len(batch_stages) == 1         # one batch for both views
    assert "2 view(s), 5 fragment(s)" in batch_stages[0].description
    assert "parallel" in batch_stages[0].description
    # After shipping, the cached views explain as individual stages.
    session.query("SELECT COUNT(*) FROM eu, it_only")
    warm = session.explain("SELECT COUNT(*) FROM eu, it_only")
    cached = [stage for stage in warm.stages if stage.cached]
    assert len(cached) == 2


def test_stream_sees_only_fully_shipped_views():
    mediator = _four_source_mediator(PARALLEL)
    session = mediator.connect()
    cursor, report = session.stream(
        "SELECT name FROM eu ORDER BY name")
    rows = cursor.fetchall()
    assert len(rows) == 28
    assert report.view_rows == {"eu": 28}


def test_parallel_shipping_overlaps_source_latency():
    class SlowDatabase(Database):
        def query(self, sql):
            time.sleep(0.03)
            return super().query(sql)

    def build(options):
        mediator = Mediator(options)
        fragments = []
        for index in range(4):
            name = f"src{index}"
            db = SlowDatabase(name)
            db.execute(
                "CREATE TABLE landfill (name TEXT, size REAL)")
            db.execute(f"INSERT INTO landfill VALUES ('lf{index}', 1.0)")
            mediator.register_source(name, db)
            fragments.append((name, "SELECT name, size FROM landfill"))
        mediator.define_view("eu", fragments)
        return mediator

    serial = build(SERIAL)
    parallel = build(PARALLEL)
    started = time.perf_counter()
    serial.query("SELECT COUNT(*) FROM eu")
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    parallel.query("SELECT COUNT(*) FROM eu")
    parallel_s = time.perf_counter() - started
    # 4 x 30ms serial vs one overlapped hop; generous margin for CI.
    assert parallel_s < serial_s
