"""Temporary support database, WHERE rewriting and the path extension."""

import pytest

from repro.core import SESQLEngine, TemporarySupportDatabase
from repro.core.enrichment import (replace_condition, transform_expr)
from repro.core.sqm import SemanticQueryModule
from repro.core.mapping import ResourceMapping
from repro.core.tempdb import infer_column_type, materialize
from repro.rdf import parse_turtle
from repro.relational import Database, DataType, parse_expr
from repro.relational.ast import BinaryOp, ColumnRef, Literal, node_key


# -- type inference -----------------------------------------------------


@pytest.mark.parametrize("values,expected", [
    ([1, 2, 3], DataType.INTEGER),
    ([1, 2.5], DataType.REAL),
    ([True, False], DataType.BOOLEAN),
    ([True, 1], DataType.INTEGER),
    (["a", 1], DataType.TEXT),
    ([None, None], DataType.TEXT),
    ([], DataType.TEXT),
    ([None, 4], DataType.INTEGER),
])
def test_infer_column_type(values, expected):
    assert infer_column_type(values) is expected


# -- materialisation -------------------------------------------------------


def test_materialize_handles_duplicate_display_names():
    db = Database()
    table = materialize(db, "base", ["name", "name"],
                        [("a", "b"), ("c", "d")])
    assert table.internal_columns == ["c0", "c1"]
    assert db.query(f"SELECT c0, c1 FROM {table.name}").rows == [
        ("a", "b"), ("c", "d")]


def test_materialize_coerces_exotic_values():
    db = Database()
    class Odd:
        def __str__(self):
            return "odd!"
    table = materialize(db, "x", ["v"], [(Odd(),)])
    assert db.query(f"SELECT c0 FROM {table.name}").rows == [("odd!",)]


def test_tempdb_cleanup_drops_everything():
    tempdb = TemporarySupportDatabase()
    tempdb.store_result(["a"], [(1,)])
    tempdb.store_pairs([("x", "y")])
    tempdb.store_values(["v"])
    assert len(tempdb.db.table_names()) == 3
    tempdb.cleanup()
    assert tempdb.db.table_names() == []


def test_temp_names_are_unique():
    tempdb = TemporarySupportDatabase()
    first = tempdb.store_result(["a"], [])
    second = tempdb.store_result(["a"], [])
    assert first.name != second.name


# -- expression transformation helpers -----------------------------------------


def test_transform_expr_replaces_nested_refs():
    expr = parse_expr("a = 1 AND (b < 2 OR a = 3)")
    replaced = transform_expr(
        expr,
        lambda node: Literal(0) if isinstance(node, ColumnRef)
        and node.name == "a" else None)
    # Original untouched; replacement applied everywhere.
    assert "a" in repr(expr)
    count = repr(replaced).count("ColumnRef(name='a'")
    assert count == 0


def test_replace_condition_targets_structural_match():
    where = parse_expr("x = 1 AND y = 2")
    target = parse_expr("y = 2")
    replacement = BinaryOp("=", ColumnRef("z"), Literal(9))
    rewritten, found = replace_condition(
        where, node_key(target), replacement)
    assert found
    assert node_key(rewritten) == node_key(parse_expr("x = 1 AND z = 9"))


def test_replace_condition_reports_missing():
    where = parse_expr("x = 1")
    _rewritten, found = replace_condition(
        where, node_key(parse_expr("q = 7")), Literal(True))
    assert not found


# -- property-path extension -----------------------------------------------------


KB = parse_turtle("""
    @prefix smg: <http://smartground.eu/ns#> .
    smg:Mercury smg:isA smg:HazardousWaste .
    smg:Lead smg:isA smg:HazardousWaste .
    smg:Torino smg:inCountry smg:Italy .
    smg:Italy smg:inContinent smg:Europe .
""")


def test_inverse_path_in_values_for():
    sqm = SemanticQueryModule(ResourceMapping())
    extraction = sqm.values_for(KB, "^isA", "HazardousWaste")
    assert {v.local_name() for v in extraction.values} == {
        "Mercury", "Lead"}


def test_sequence_path_in_pairs_for():
    sqm = SemanticQueryModule(ResourceMapping())
    extraction = sqm.pairs_for(KB, "inCountry/inContinent")
    assert [(s.local_name(), o.local_name())
            for s, o in extraction.pairs] == [("Torino", "Europe")]


def test_path_in_full_sesql_query():
    db = Database()
    db.execute_script("""
        CREATE TABLE landfill (name TEXT, city TEXT);
        INSERT INTO landfill VALUES ('a', 'Torino'), ('b', 'Oslo');
    """)
    engine = SESQLEngine(db, KB)
    result = engine.query("""
        SELECT name, city FROM landfill
        ENRICH SCHEMAEXTENSION(city, inCountry/inContinent)""")
    assert sorted(result.rows) == [
        ("a", "Torino", "Europe"), ("b", "Oslo", None)]
    # The generated column name uses the path's last segment.
    assert result.columns[-1] == "inContinent"
