"""Property-based tests (hypothesis) for the durability codecs.

Snapshot serialization must be an *identity*: any table state the
engine can hold — NULLs vs empty strings, arbitrarily big integers,
booleans, REAL-widened columns, text with embedded newlines, quotes
and marker-lookalikes — and any triple-store content (BNodes, language
tags, datatyped literals) must come back byte-identical.  The WAL frame
codec must round-trip arbitrary JSON-able payloads with RDF terms and
never mis-decode trailing garbage.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import encode_frame, iter_frames
from repro.durability.records import decode_json, encode_json
from repro.durability.snapshot import (restore_database, restore_store,
                                       serialize_database, serialize_store)
from repro.durability.state import database_state
from repro.rdf import (BNode, IRI, Literal, TripleStore,
                       serialize_ntriples)
from repro.relational import Database
from repro.relational.schema import Column, DataType


class StubJournal:
    """Just enough journal for the serializers' cut bookkeeping."""

    seq = 0


# -- value strategies ---------------------------------------------------------

texts = st.text(max_size=30)  # includes "", newlines, quotes, backslashes
marker_lookalikes = st.sampled_from(["\\N", "\\\\N", "\\", "\\n", "N"])
text_cells = st.one_of(st.none(), texts, marker_lookalikes)
int_cells = st.one_of(st.none(), st.integers(min_value=-10**30,
                                             max_value=10**30))
real_cells = st.one_of(
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.integers(min_value=-10**9, max_value=10**9))  # widened on insert
bool_cells = st.one_of(st.none(), st.booleans())

rows = st.lists(
    st.fixed_dictionaries({"t": text_cells, "i": int_cells,
                           "r": real_cells, "b": bool_cells}),
    max_size=12)


@settings(max_examples=50, deadline=None)
@given(rows)
def test_table_snapshot_restore_is_identity(table_rows):
    db = Database()
    db.create_table("t", [Column("t", DataType.TEXT),
                          Column("i", DataType.INTEGER),
                          Column("r", DataType.REAL),
                          Column("b", DataType.BOOLEAN)])
    db.insert_rows("t", table_rows)
    payload = serialize_database(db, StubJournal())

    restored = Database()
    restore_database(restored, payload, None)
    assert database_state(restored) == database_state(db)


@settings(max_examples=25, deadline=None)
@given(rows, rows)
def test_table_snapshot_survives_a_second_generation(first, second):
    """Serializing, restoring, mutating and re-serializing stays exact."""
    db = Database()
    db.create_table("t", [Column("t", DataType.TEXT),
                          Column("i", DataType.INTEGER),
                          Column("r", DataType.REAL),
                          Column("b", DataType.BOOLEAN)])
    db.insert_rows("t", first)
    middle = Database()
    restore_database(middle, serialize_database(db, StubJournal()), None)
    middle.insert_rows("t", second)
    final = Database()
    restore_database(final, serialize_database(middle, StubJournal()),
                     None)
    reference = Database()
    reference.create_table("t", [Column("t", DataType.TEXT),
                                 Column("i", DataType.INTEGER),
                                 Column("r", DataType.REAL),
                                 Column("b", DataType.BOOLEAN)])
    reference.insert_rows("t", first)
    reference.insert_rows("t", second)
    assert [row for row in final.table("t").rows()] \
        == [row for row in reference.table("t").rows()]


# -- triple store -------------------------------------------------------------

local_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
    min_size=1, max_size=8)
iris = local_names.map(lambda name: IRI(f"urn:x:{name}"))
bnodes = local_names.map(BNode)
string_literals = st.builds(
    Literal,
    st.text(max_size=20),
    lang=st.one_of(st.none(), st.sampled_from(["en", "it", "de"])))
typed_literals = st.one_of(
    st.builds(Literal, st.integers(min_value=-10**20, max_value=10**20)),
    st.builds(Literal, st.floats(allow_nan=False, allow_infinity=False)),
    st.builds(Literal, st.booleans()),
    st.builds(Literal, st.text(max_size=10),
              datatype=st.just("urn:x:custom")))
objects = st.one_of(iris, bnodes, string_literals, typed_literals)
triples = st.tuples(st.one_of(iris, bnodes), iris, objects)


@settings(max_examples=50, deadline=None)
@given(st.lists(triples, min_size=1, max_size=20),
       st.sampled_from(["full", "spo"]))
def test_store_snapshot_restore_is_identity(store_triples, indexing):
    store = TripleStore(indexing=indexing)
    store.add_all(store_triples)
    payload = serialize_store(store, StubJournal())

    restored = TripleStore(indexing=indexing)
    restore_store(restored, payload)
    assert len(restored) == len(store)
    assert serialize_ntriples(restored) == serialize_ntriples(store)
    assert restored.generation == store.generation


@settings(max_examples=25, deadline=None)
@given(st.lists(triples, min_size=2, max_size=20))
def test_store_snapshot_after_removals_is_identity(store_triples):
    store = TripleStore()
    store.add_all(store_triples)
    store.remove(*store_triples[0])
    payload = serialize_store(store, StubJournal())
    restored = TripleStore()
    restore_store(restored, payload)
    assert serialize_ntriples(restored) == serialize_ntriples(store)


# -- WAL frame codec ----------------------------------------------------------

json_scalars = st.one_of(st.none(), st.booleans(),
                         st.integers(min_value=-10**18, max_value=10**18),
                         st.text(max_size=20))
payload_values = st.one_of(json_scalars, iris, bnodes, string_literals,
                           typed_literals)
payloads = st.fixed_dictionaries({
    "c": st.sampled_from(["db:main", "store:kb", "platform"]),
    "q": st.integers(min_value=1, max_value=10**9),
    "g": st.integers(min_value=0, max_value=10**9),
    "t": st.sampled_from(["sql", "add", "rows"]),
    "d": st.dictionaries(st.text(max_size=8),
                         st.one_of(payload_values,
                                   st.lists(payload_values, max_size=4)),
                         max_size=4),
})


@settings(max_examples=50, deadline=None)
@given(st.lists(payloads, min_size=1, max_size=6))
def test_frame_stream_round_trips(frames):
    data = b"".join(encode_frame(payload) for payload in frames)
    decoded = [payload for payload, _end in iter_frames(data)]
    assert decoded == frames


@settings(max_examples=50, deadline=None)
@given(st.lists(payloads, min_size=1, max_size=4),
       st.binary(max_size=40))
def test_frame_stream_ignores_trailing_garbage(frames, garbage):
    clean = b"".join(encode_frame(payload) for payload in frames)
    decoded = list(iter_frames(clean + garbage))
    # Every intact frame decodes; the garbage either terminates the
    # stream or is itself rejected — but never mis-decodes.
    assert [payload for payload, _ in decoded][:len(frames)] == frames


@settings(max_examples=50, deadline=None)
@given(payloads)
def test_record_json_round_trips_terms(payload):
    assert decode_json(encode_json(payload)) == payload
