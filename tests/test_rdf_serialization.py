"""Turtle and N-Triples round trips and parse errors."""

import pytest

from repro.rdf import (IRI, Literal, Namespace, NamespaceManager,
                       RdfParseError, parse_ntriples, parse_turtle,
                       serialize_ntriples, serialize_turtle)

SMG = Namespace("http://smartground.eu/ns#")

SAMPLE = """
@prefix smg: <http://smartground.eu/ns#> .
# a comment
smg:Mercury a smg:Element ;
    smg:dangerLevel "high" ;
    smg:oreAssemblage smg:Cinnabar, smg:Sulfur .
smg:Torino smg:inCountry smg:Italy .
smg:m smg:amount 12.5 .
smg:n smg:count 42 .
smg:f smg:flag true .
_:note smg:text "it's \\"quoted\\"" .
"""


def test_parse_turtle_counts():
    store = parse_turtle(SAMPLE)
    assert len(store) == 9


def test_predicate_and_object_lists():
    store = parse_turtle(SAMPLE)
    assert store.count(SMG.Mercury, None, None) == 4
    assert store.count(SMG.Mercury, SMG.oreAssemblage, None) == 2


def test_a_keyword_expands_to_rdf_type():
    store = parse_turtle(SAMPLE)
    rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
    assert store.count(SMG.Mercury, rdf_type, SMG.Element) == 1


def test_numeric_and_boolean_literals():
    store = parse_turtle(SAMPLE)
    assert store.value(SMG.m, SMG.amount) == Literal(12.5)
    assert store.value(SMG.n, SMG.count) == Literal(42)
    assert store.value(SMG.f, SMG.flag) == Literal(True)


def test_escaped_quotes_in_strings():
    store = parse_turtle(SAMPLE)
    values = [t.object.value for t in store.triples(None, SMG.text, None)]
    assert values == ["it's \"quoted\""]


def test_turtle_roundtrip():
    store = parse_turtle(SAMPLE)
    text = serialize_turtle(store)
    again = parse_turtle(text)
    assert set(again.triples()) == set(store.triples())


def test_ntriples_roundtrip():
    store = parse_turtle(SAMPLE)
    text = serialize_ntriples(store)
    again = parse_ntriples(text)
    # Blank node identity survives because labels are preserved.
    assert len(again) == len(store)


def test_lang_tagged_literal_roundtrip_ntriples():
    text = ('<http://x/a> <http://x/p> "bonjour"@fr .\n')
    store = parse_ntriples(text)
    assert list(store.triples())[0].object.lang == "fr"
    assert serialize_ntriples(store).strip() == text.strip()


def test_typed_literal_roundtrip_ntriples():
    text = ('<http://x/a> <http://x/p> '
            '"5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
    store = parse_ntriples(text)
    assert list(store.triples())[0].object == Literal(5)


def test_turtle_unknown_prefix_raises():
    with pytest.raises(Exception):
        parse_turtle("unknown:a unknown:b unknown:c .")


def test_turtle_missing_dot_raises():
    with pytest.raises(RdfParseError):
        parse_turtle("@prefix smg: <http://x#> .\nsmg:a smg:b smg:c")


def test_ntriples_malformed_line_raises():
    with pytest.raises(RdfParseError):
        parse_ntriples("<http://a> <http://b> .")


def test_sparql_style_prefix_directive():
    store = parse_turtle("PREFIX ex: <http://e/>\nex:a ex:p ex:b .")
    assert len(store) == 1


def test_custom_namespace_manager_survives():
    manager = NamespaceManager()
    manager.bind("lab", "http://lab.example/")
    store = parse_turtle("lab:x lab:leads lab:y .", manager)
    assert store.count(IRI("http://lab.example/x"), None, None) == 1
