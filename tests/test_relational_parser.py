"""SQL parser: statement shapes, precedence, joins, subqueries, errors."""

import pytest

from repro.relational import (NotSupportedError, SqlSyntaxError, parse_expr,
                              parse_sql)
from repro.relational import ast


def test_simple_select_shape():
    query = parse_sql("SELECT name, city FROM landfill WHERE id = 3")
    assert isinstance(query, ast.SelectQuery)
    assert [item.output_name() for item in query.core.items] == [
        "name", "city"]
    assert isinstance(query.core.from_clause, ast.TableRef)
    assert isinstance(query.core.where, ast.BinaryOp)


def test_select_star_and_qualified_star():
    query = parse_sql("SELECT *, t.* FROM t")
    star, qualified = query.core.items
    assert isinstance(star.expr, ast.Star) and star.expr.qualifier is None
    assert qualified.expr.qualifier == "t"


def test_alias_with_and_without_as():
    query = parse_sql("SELECT a AS x, b y FROM t")
    assert [item.alias for item in query.core.items] == ["x", "y"]


def test_and_binds_tighter_than_or():
    expr = parse_expr("a OR b AND c")
    assert expr.op == "OR"
    assert expr.right.op == "AND"


def test_arithmetic_precedence():
    expr = parse_expr("1 + 2 * 3")
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_comparison_chain_not_allowed_silently():
    # a = b produces a comparison; the remaining '= c' must error.
    with pytest.raises(SqlSyntaxError):
        parse_sql("SELECT 1 WHERE a = b = c")


def test_not_like_between_in():
    like = parse_expr("name NOT LIKE 'a%'")
    assert isinstance(like, ast.Like) and like.negated
    between = parse_expr("x BETWEEN 1 AND 10")
    assert isinstance(between, ast.Between) and not between.negated
    in_list = parse_expr("x NOT IN (1, 2, 3)")
    assert isinstance(in_list, ast.InList) and in_list.negated
    assert len(in_list.items) == 3


def test_is_null_and_is_not_null():
    assert isinstance(parse_expr("x IS NULL"), ast.IsNull)
    expr = parse_expr("x IS NOT NULL")
    assert expr.negated


def test_in_subquery_and_exists():
    query = parse_sql(
        "SELECT 1 FROM t WHERE x IN (SELECT y FROM u) "
        "AND EXISTS (SELECT 1 FROM v)")
    where = query.core.where
    assert isinstance(where.left, ast.InSubquery)
    assert isinstance(where.right, ast.Exists)


def test_join_tree_left_and_inner():
    query = parse_sql(
        "SELECT * FROM a JOIN b ON a.x = b.x "
        "LEFT JOIN c ON b.y = c.y")
    top = query.core.from_clause
    assert isinstance(top, ast.Join) and top.join_type == "LEFT"
    assert top.left.join_type == "INNER"


def test_comma_join_is_cross():
    query = parse_sql("SELECT * FROM a, b")
    assert query.core.from_clause.join_type == "CROSS"


def test_right_join_not_supported():
    with pytest.raises(NotSupportedError):
        parse_sql("SELECT * FROM a RIGHT JOIN b ON a.x = b.x")


def test_subquery_in_from_requires_alias():
    query = parse_sql("SELECT * FROM (SELECT 1 AS one) AS s")
    assert isinstance(query.core.from_clause, ast.SubqueryRef)
    with pytest.raises(SqlSyntaxError):
        parse_sql("SELECT * FROM (SELECT 1)")


def test_group_by_having_order_limit_offset():
    query = parse_sql(
        "SELECT city, COUNT(*) AS n FROM landfill "
        "GROUP BY city HAVING COUNT(*) > 1 "
        "ORDER BY n DESC, city LIMIT 10 OFFSET 5")
    assert len(query.core.group_by) == 1
    assert query.core.having is not None
    assert query.order_by[0].descending
    assert not query.order_by[1].descending
    assert query.limit.value == 10
    assert query.offset.value == 5


def test_union_and_union_all():
    query = parse_sql("SELECT a FROM t UNION SELECT b FROM u "
                      "UNION ALL SELECT c FROM v")
    assert [op for op, _core in query.compounds] == ["UNION", "UNION ALL"]


def test_case_searched_and_simple():
    searched = parse_expr("CASE WHEN a > 1 THEN 'x' ELSE 'y' END")
    assert searched.operand is None
    simple = parse_expr("CASE a WHEN 1 THEN 'x' END")
    assert simple.operand is not None
    assert simple.else_result is None


def test_cast_expression():
    cast = parse_expr("CAST(x AS INTEGER)")
    assert isinstance(cast, ast.Cast)
    assert cast.type_name == "INTEGER"


def test_count_star_and_distinct():
    star = parse_expr("COUNT(*)")
    assert star.star
    distinct = parse_expr("COUNT(DISTINCT city)")
    assert distinct.distinct


def test_insert_values_and_select_forms():
    stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    assert stmt.columns == ["a", "b"]
    assert len(stmt.rows) == 2
    stmt = parse_sql("INSERT INTO t SELECT a, b FROM u")
    assert stmt.query is not None and stmt.columns is None


def test_update_and_delete():
    update = parse_sql("UPDATE t SET a = 1, b = b + 1 WHERE id = 2")
    assert len(update.assignments) == 2
    delete = parse_sql("DELETE FROM t")
    assert delete.where is None


def test_create_table_with_constraints():
    stmt = parse_sql(
        "CREATE TABLE IF NOT EXISTS t ("
        "id INTEGER PRIMARY KEY, name VARCHAR(40) NOT NULL UNIQUE, "
        "score REAL DEFAULT 0.0)")
    assert stmt.if_not_exists
    assert stmt.columns[0].primary_key
    assert stmt.columns[1].not_null and stmt.columns[1].unique
    assert stmt.columns[2].default.value == 0.0


def test_create_index_variants():
    stmt = parse_sql("CREATE UNIQUE INDEX i ON t (a, b)")
    assert stmt.unique and stmt.columns == ["a", "b"]
    stmt = parse_sql("CREATE INDEX i ON t (a) USING sorted")
    assert stmt.kind == "sorted"


def test_trailing_garbage_rejected():
    with pytest.raises(SqlSyntaxError):
        parse_sql("SELECT 1 FROM t garbage extra")


def test_keywords_cannot_be_aliases():
    # 'FROM' after the item list must start the FROM clause.
    query = parse_sql("SELECT a FROM t")
    assert query.core.items[0].alias is None
