"""CroSSE platform: provenance, tagging scenarios, context, recommenders."""

import pytest

from repro.crosse import (AnnotationError, CrossePlatform, Document,
                          KnowledgeBaseStore, Reference, StatementError,
                          UnknownUserError, extract_snippet,
                          highlight_concepts, rank_result)
from repro.crosse.context import ContextProfile
from repro.rdf import SMG
from repro.relational import ResultSet
from repro.smartground import SmartGroundConfig, generate_databank


@pytest.fixture
def platform():
    databank = generate_databank(SmartGroundConfig(n_landfills=15, seed=9))
    p = CrossePlatform(databank)
    p.register_user("giulia", affiliation="UniTo",
                    interests=["Mercury", "pollution"])
    p.register_user("marco", affiliation="Comune di Torino",
                    interests=["urban", "Zinc"])
    p.register_user("eva", interests=["Mercury"])
    return p


# -- knowledge base store / Fig. 4 ------------------------------------------


def test_statement_provenance_tracked():
    store = KnowledgeBaseStore()
    record = store.insert("giulia", SMG.Mercury, SMG.dangerLevel, "high")
    assert record.author == "giulia"
    assert record.accepted_by == set()
    store.accept("marco", record.statement_id)
    assert "marco" in record.accepted_by


def test_effective_kb_is_own_plus_accepted():
    store = KnowledgeBaseStore()
    own = store.insert("giulia", SMG.Mercury, SMG.isA, SMG.HazardousWaste)
    peer = store.insert("marco", SMG.Zinc, SMG.isA, SMG.HazardousWaste)
    assert len(store.effective_kb("giulia")) == 1
    store.accept("giulia", peer.statement_id)
    assert len(store.effective_kb("giulia")) == 2
    # Acceptance does not leak into the author's own context twice.
    assert len(store.effective_kb("marco")) == 1
    assert own.statement_id != peer.statement_id


def test_cannot_accept_own_or_private_statement():
    store = KnowledgeBaseStore()
    own = store.insert("giulia", SMG.a, SMG.p, "x")
    with pytest.raises(StatementError):
        store.accept("giulia", own.statement_id)
    private = store.insert("marco", SMG.b, SMG.p, "y", public=False)
    with pytest.raises(StatementError):
        store.accept("giulia", private.statement_id)


def test_retract_requires_author():
    store = KnowledgeBaseStore()
    record = store.insert("giulia", SMG.a, SMG.p, "x")
    with pytest.raises(StatementError):
        store.retract("marco", record.statement_id)
    store.retract("giulia", record.statement_id)
    assert len(store) == 0


def test_conflicting_statements_allowed():
    """Section III-A: no centralized consistency control."""
    store = KnowledgeBaseStore()
    store.insert("giulia", SMG.Mercury, SMG.dangerLevel, "high")
    store.insert("marco", SMG.Mercury, SMG.dangerLevel, "low")
    assert len(store) == 2


def test_fig4_rdf_export():
    store = KnowledgeBaseStore()
    record = store.insert(
        "giulia", SMG.Mercury, SMG.dangerLevel, "high",
        reference=Reference(title="WHO report", link="http://who.int/x"))
    store.accept("marco", record.statement_id)
    graph = store.to_rdf_graph()
    from repro.rdf import RDF
    assert graph.count(None, RDF.type, SMG.Statement) == 1
    assert graph.count(None, SMG.userStatement, None) == 1
    assert graph.count(None, SMG.userBelief, None) == 1
    assert graph.count(None, SMG.stmReference, None) == 1
    assert graph.count(None, SMG.refTitle, None) == 1


# -- tagging scenarios ----------------------------------------------------------


def test_integrated_annotation_validates_subject(platform):
    with pytest.raises(AnnotationError):
        platform.annotate_concept(
            "giulia", "elem_contained", "elem_name", "Unobtainium",
            SMG.dangerLevel, "high")


def test_integrated_annotation_on_real_value(platform):
    value = platform.databank.query(
        "SELECT elem_name FROM elem_contained LIMIT 1").scalar()
    record = platform.annotate_concept(
        "giulia", "elem_contained", "elem_name", value,
        SMG.dangerLevel, "high")
    assert record.triple.subject == SMG[value]


def test_independent_annotation_is_free(platform):
    record = platform.annotate_free(
        "giulia", SMG.AnythingAtAll, SMG.note, "personal hypothesis")
    assert record.public


def test_crowdsourced_explore_and_import(platform):
    record = platform.annotate_free(
        "giulia", SMG.Mercury, SMG.isA, SMG.HazardousWaste)
    visible = platform.explore_annotations("marco")
    assert record.statement_id in {r.statement_id for r in visible}
    platform.accept_statement("marco", record.statement_id)
    assert len(platform.effective_kb("marco")) == 1


def test_queries_run_in_personal_context(platform):
    platform.annotate_free("giulia", SMG.Mercury, SMG.dangerLevel, "high")
    sesql = """SELECT DISTINCT elem_name FROM elem_contained
               ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"""
    giulia_result = platform.run_sesql("giulia", sesql)
    marco_result = platform.run_sesql("marco", sesql)
    giulia_levels = {row[1] for row in giulia_result.rows}
    marco_levels = {row[1] for row in marco_result.rows}
    assert "high" in giulia_levels
    assert marco_levels == {None}   # marco has no such knowledge


def test_unknown_user_rejected(platform):
    with pytest.raises(UnknownUserError):
        platform.run_sesql("nobody", "SELECT 1")


def test_per_user_stored_queries(platform):
    platform.register_stored_query(
        "myDanger", "SELECT ?e WHERE { ?e ?p ?o }", username="giulia")
    merged = platform._registry_for("giulia")
    assert "myDanger" in merged
    assert "myDanger" not in platform._registry_for("marco")


# -- context, recommendation, preview ----------------------------------------------


def test_context_profile_weights_and_events():
    profile = ContextProfile("u")
    profile.record("Mercury", "query")
    profile.record("Mercury", "annotate")
    profile.record("Zinc", "explore")
    assert profile.weight("mercury") == 4.0   # case-insensitive
    assert profile.top_concepts(1)[0][0] == "mercury"
    profile.decay(0.5)
    assert profile.weight("Mercury") == 2.0


def test_peer_recommendation_orders_by_similarity(platform):
    # eva shares giulia's Mercury focus; marco does not.
    peers = platform.recommend_peers("giulia")
    usernames = [name for name, _score in peers]
    assert usernames[0] == "eva"


def test_resource_recommendation_from_peers(platform):
    platform.record_exploration("eva", "lf0003", ["Mercury"])
    platform.record_exploration("giulia", "lf0001", ["Mercury"])
    recommended = platform.recommend_resources("giulia")
    assert recommended and recommended[0][0] == "lf0003"


def test_peer_network_graph(platform):
    graph = platform.recommender.peer_network()
    assert graph.has_node("giulia")
    assert graph.has_edge("giulia", "eva")


def test_rank_result_prefers_context_concepts():
    profile = ContextProfile("u")
    profile.record("Mercury", "declare")
    result = ResultSet(["elem"], [("Iron",), ("Mercury",), ("Zinc",)])
    ranked = rank_result(profile, result)
    assert ranked.rows[0] == ("Mercury",)


def test_snippet_centres_on_context():
    profile = ContextProfile("u")
    profile.record("Asbestos", "declare")
    document = Document(
        "d", "t", "A long irrelevant preamble about procedures. " * 6
        + "Findings: Asbestos fibres detected in sector B. "
        + "Appendix follows. " * 6)
    snippet = extract_snippet(profile, document, window_words=10)
    assert "Asbestos" in snippet
    assert snippet.startswith("...")


def test_highlighting_wraps_strong_concepts():
    profile = ContextProfile("u")
    profile.record("Mercury", "declare")
    text = highlight_concepts(profile, "mercury levels rising")
    assert text == "**mercury** levels rising"


def test_document_search_is_context_ranked(platform):
    platform.add_document("d1", "Mercury in mining waste",
                          "Mercury Mercury pollution study", ["Mercury"])
    platform.add_document("d2", "General waste report",
                          "Administrative mercury mention once")
    ranked = platform.search_documents("giulia", "mercury")
    assert ranked[0][0].doc_id == "d1"


# -- retract / reject invalidation (generation-aware effective KBs) ----------


def test_effective_kb_cached_until_mutated(platform):
    record = platform.annotate_free(
        "giulia", SMG.Mercury, SMG.dangerLevel, "high")
    first = platform.effective_kb("giulia")
    assert platform.effective_kb("giulia") is first  # stamp unchanged
    platform.annotate_free("giulia", SMG.Lead, SMG.dangerLevel, "high")
    rebuilt = platform.effective_kb("giulia")
    assert rebuilt is not first and len(rebuilt) == 2
    # Every user KB is built through the platform-wide dictionary.
    assert rebuilt.dictionary is platform.statements.dictionary
    platform.statements.reject("giulia", record.statement_id)  # no-op
    assert len(platform.effective_kb("giulia")) == 2


def test_retracted_statement_stops_influencing_queries(platform):
    record = platform.annotate_free(
        "giulia", SMG.Mercury, SMG.dangerLevel, "high")
    sesql = """SELECT DISTINCT elem_name FROM elem_contained
               ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"""
    before = platform.run_sesql("giulia", sesql)
    assert "high" in {row[1] for row in before.rows}
    platform.retract_statement("giulia", record.statement_id)
    after = platform.run_sesql("giulia", sesql)
    assert {row[1] for row in after.rows} == {None}
    assert len(platform.effective_kb("giulia")) == 0


def test_retract_reaches_acceptors_contexts(platform):
    record = platform.annotate_free(
        "giulia", SMG.Mercury, SMG.isA, SMG.HazardousWaste)
    platform.accept_statement("marco", record.statement_id)
    assert len(platform.effective_kb("marco")) == 1
    platform.retract_statement("giulia", record.statement_id)
    assert len(platform.effective_kb("marco")) == 0


def test_rejected_statement_stops_influencing_queries(platform):
    record = platform.annotate_free(
        "giulia", SMG.Mercury, SMG.dangerLevel, "high")
    platform.accept_statement("marco", record.statement_id)
    sesql = """SELECT DISTINCT elem_name FROM elem_contained
               ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"""
    accepted = platform.run_sesql("marco", sesql)
    assert "high" in {row[1] for row in accepted.rows}
    platform.reject_statement("marco", record.statement_id)
    rejected = platform.run_sesql("marco", sesql)
    assert {row[1] for row in rejected.rows} == {None}
    # The author's own context is untouched by a peer's rejection.
    assert "high" in {row[1]
                      for row in platform.run_sesql("giulia", sesql).rows}


def test_platform_retract_requires_author(platform):
    record = platform.annotate_free(
        "giulia", SMG.Mercury, SMG.dangerLevel, "high")
    with pytest.raises(StatementError):
        platform.retract_statement("marco", record.statement_id)
    with pytest.raises(UnknownUserError):
        platform.retract_statement("nobody", record.statement_id)
