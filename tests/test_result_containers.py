"""Result containers (ResultSet, SparqlResults) and CSV import/export."""

import pytest

from repro.relational import Database, ExecutionError, ResultSet
from repro.relational.csv_io import dump_csv, load_csv
from repro.rdf import parse_turtle
from repro.sparql import SparqlEngine


# -- ResultSet ------------------------------------------------------------


@pytest.fixture
def result():
    return ResultSet(["name", "amount"],
                     [("Hg", 3.5), ("Pb", None), ("Fe", 140.0)])


def test_basic_accessors(result):
    assert len(result) == 3
    assert bool(result) is True
    assert result.first() == ("Hg", 3.5)
    assert result.column_values("amount") == [3.5, None, 140.0]
    assert result.column_index("AMOUNT") == 1  # case-insensitive


def test_unknown_column_raises(result):
    with pytest.raises(ExecutionError):
        result.column_index("nope")


def test_scalar_contract():
    assert ResultSet(["x"], [(7,)]).scalar() == 7
    with pytest.raises(ExecutionError):
        ResultSet(["x"], [(1,), (2,)]).scalar()
    with pytest.raises(ExecutionError):
        ResultSet(["x", "y"], [(1, 2)]).scalar()


def test_to_dicts(result):
    assert result.to_dicts()[0] == {"name": "Hg", "amount": 3.5}


def test_same_rows_order_insensitive(result):
    shuffled = ResultSet(result.columns, list(reversed(result.rows)))
    assert result.same_rows(shuffled)
    assert result != shuffled  # ordered equality still distinguishes


def test_format_table_truncation():
    rows = [(i,) for i in range(50)]
    text = ResultSet(["n"], rows).format_table(max_rows=5)
    assert "more rows" in text
    assert text.count("\n") < 15


def test_empty_result_is_falsy():
    empty = ResultSet(["x"], [])
    assert not empty
    assert empty.first() is None


# -- SparqlResults -------------------------------------------------------------


def test_sparql_results_accessors():
    store = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury smg:dangerLevel "high" .
        smg:Iron smg:dangerLevel "low" .
    """)
    results = SparqlEngine(store).query(
        "PREFIX smg: <http://smartground.eu/ns#> "
        "SELECT ?s ?o WHERE { ?s smg:dangerLevel ?o } ORDER BY ?s")
    assert results.var_names() == ["s", "o"]
    assert len(results) == 2
    assert results.python_tuples() == [
        ("http://smartground.eu/ns#Iron", "low"),
        ("http://smartground.eu/ns#Mercury", "high")]
    assert [t.value for t in results.values("o")] == ["low", "high"]


# -- CSV I/O ------------------------------------------------------------------------


CSV_TEXT = """name,amount,flagged
Hg,3.5,true
Pb,7,false
Fe,,true
"""


def test_load_csv_creates_typed_table():
    db = Database()
    inserted = load_csv(db, "materials", CSV_TEXT)
    assert inserted == 3
    rows = db.query("SELECT name, amount, flagged FROM materials "
                    "ORDER BY name").rows
    assert rows == [("Fe", None, True), ("Hg", 3.5, True),
                    ("Pb", 7.0, False)]


def test_load_csv_append_mode():
    db = Database()
    load_csv(db, "materials", CSV_TEXT)
    more = "name,amount,flagged\nCu,55,false\n"
    load_csv(db, "materials", more, create=False)
    assert db.query("SELECT COUNT(*) FROM materials").scalar() == 4


def test_load_csv_rejects_bad_shapes():
    db = Database()
    from repro.relational import RelationalError
    with pytest.raises(RelationalError):
        load_csv(db, "t", "")
    with pytest.raises(RelationalError):
        load_csv(db, "t", "a,b\n1\n")


def test_dump_csv_round_trip():
    db = Database()
    load_csv(db, "materials", CSV_TEXT)
    text = dump_csv(db, "materials")
    again = Database()
    load_csv(again, "materials", text)
    assert again.query("SELECT * FROM materials ORDER BY name").rows == \
        db.query("SELECT * FROM materials ORDER BY name").rows


def test_dump_csv_from_query_and_resultset():
    db = Database()
    load_csv(db, "materials", CSV_TEXT)
    from_sql = dump_csv(db, "SELECT name FROM materials WHERE flagged")
    assert from_sql.splitlines()[0] == "name"
    assert set(from_sql.splitlines()[1:]) == {"Hg", "Fe"}
    direct = dump_csv(ResultSet(["a"], [(1,), (None,)]))
    # A lone NULL cell is quoted so the row is not read as empty.
    assert direct == 'a\n1\n""\n'
