"""Columnar table storage + vectorized batch execution.

Covers the columnar ``Table`` rewrite (stable row ids over typed column
vectors, deleted bitmap, compaction, truncate via the public index
``clear()``), the executor's batch path and its row-path fallback
(observable through ``Database.last_vectorized_ops``), the planner's
vectorized operator marking in EXPLAIN, the batch-execution telemetry
instruments, and a durability regression: a columnar table survives
snapshot + WAL replay with exact generation stamps.

The randomized vectorized-vs-row equivalence suite lives in
``test_columnar_properties.py``.
"""

from __future__ import annotations

import pytest

from repro.crosse import CrossePlatform
from repro.federation import CrosseRestService
from repro.durability import (DurabilityManager, DurabilityOptions,
                              database_state, state_digest)
from repro.planner import PlannerOptions
from repro.relational import Database
from repro.relational.errors import TypeMismatchError
from repro.relational.indexes import HashIndex, SortedIndex
from repro.relational.table import (COMPACT_MIN_DELETED, Table)
from repro.relational.vectors import ColumnVector
from repro.relational.schema import DataType
from repro.telemetry import Telemetry, TelemetryOptions


def make_db(vectorized: bool = True) -> Database:
    db = Database(vectorized=vectorized)
    db.execute("CREATE TABLE t (id INTEGER, k TEXT, v REAL, b BOOLEAN)")
    db.insert_rows("t", ({"id": i, "k": f"k{i % 5}", "v": float(i),
                          "b": i % 2 == 0}
                         for i in range(100)))
    return db


# -- columnar storage ---------------------------------------------------------


class TestColumnarStorage:
    def test_column_vector_tracks_nulls(self):
        vector = ColumnVector(DataType.INTEGER)
        for value in (1, None, 3, None):
            vector.append(value)
        assert vector.values == [1, None, 3, None]
        assert vector.null_count == 2
        vector.set(1, 7)
        assert vector.null_count == 1
        vector.set(2, None)
        assert vector.null_count == 2
        assert len(vector) == 4

    def test_row_ids_stable_across_deletes(self):
        db = make_db()
        table = db.catalog.table("t")
        keep_id = next(rid for rid, row in table.rows_with_ids()
                       if row[0] == 42)
        db.execute("DELETE FROM t WHERE id < 42")
        assert table.row(keep_id)[0] == 42
        assert len(table) == 58
        assert [row[0] for row in table.rows()] == list(range(42, 100))

    def test_compaction_preserves_rows_ids_and_indexes(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)")
        db.execute("CREATE INDEX idx_v ON t (v)")
        db.insert_rows("t", ({"id": i, "v": float(i)}
                             for i in range(400)))
        table = db.catalog.table("t")
        survivors = {rid: row for rid, row in table.rows_with_ids()
                     if row[0] % 3 == 0}
        deleted = db.execute("DELETE FROM t WHERE id % 3 <> 0")
        assert deleted > COMPACT_MIN_DELETED  # compaction definitely ran
        assert len(table) == len(survivors)
        for rid, row in survivors.items():
            assert table.row(rid) == row
        # Point probes and range scans go through the rebuilt indexes.
        assert db.query("SELECT v FROM t WHERE id = 100").rows == []
        assert db.query("SELECT v FROM t WHERE id = 99").rows == [(99.0,)]
        rows = db.query("SELECT id FROM t WHERE v >= 390.0").rows
        assert sorted(rows) == [(390,), (393,), (396,), (399,)]

    def test_update_after_compaction(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER, v REAL)")
        db.insert_rows("t", ({"id": i, "v": 0.0} for i in range(300)))
        db.execute("DELETE FROM t WHERE id >= 100")
        assert db.execute("UPDATE t SET v = 5.5 WHERE id = 50") == 1
        assert db.query("SELECT v FROM t WHERE id = 50").rows == [(5.5,)]

    def test_truncate_keeps_index_definitions_and_row_id_watermark(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)")
        table = db.catalog.table("t")
        first = table.insert_row({"id": 1, "v": 1.0})
        db.execute("DELETE FROM t")     # truncate fast path
        assert len(table) == 0
        second = table.insert_row({"id": 1, "v": 2.0})  # PK free again
        assert second > first           # ids are never reused
        assert db.query("SELECT v FROM t WHERE id = 1").rows == [(2.0,)]

    def test_index_clear_is_public(self):
        hash_index = HashIndex("h", "t", ["k"])
        hash_index.insert(10, (1,))
        hash_index.insert(11, (2,))
        hash_index.clear()
        assert hash_index.lookup((1,)) == set()
        assert len(hash_index) == 0
        sorted_index = SortedIndex("s", "t", ["k"])
        sorted_index.insert(10, (1,))
        sorted_index.clear()
        assert len(sorted_index) == 0
        # The definition survives: the cleared index accepts new entries.
        sorted_index.insert(12, (2,))
        assert list(sorted_index.range()) == [12]

    def test_iter_batches_skips_deleted(self):
        db = Database()
        db.execute("CREATE TABLE t (id INTEGER)")
        db.insert_rows("t", ({"id": i} for i in range(10)))
        db.execute("DELETE FROM t WHERE id = 3")
        table = db.catalog.table("t")
        batches = list(table.iter_batches(size=4))
        flat = [value for batch in batches for value in batch[0]]
        assert flat == [0, 1, 2, 4, 5, 6, 7, 8, 9]


# -- vectorized execution and fallback ---------------------------------------


class TestVectorizedExecution:
    def test_simple_shapes_run_vectorized(self):
        db = make_db()
        assert len(db.query("SELECT * FROM t").rows) == 100
        assert db.last_vectorized_ops >= {"scan", "project"}
        db.query("SELECT * FROM t WHERE v > 50.0 AND k = 'k1'")
        assert db.last_vectorized_ops >= {"scan", "filter", "project"}
        rows = db.query("SELECT k, COUNT(*), SUM(v), AVG(v), MIN(v), "
                        "MAX(v) FROM t GROUP BY k").rows
        assert len(rows) == 5
        assert db.last_vectorized_ops >= {"scan", "aggregate"}

    def test_vectorized_disabled_database_reports_nothing(self):
        db = make_db(vectorized=False)
        assert len(db.query("SELECT * FROM t WHERE v > 50.0").rows) == 49
        assert db.last_vectorized_ops == set()

    def test_results_match_row_path(self):
        vector_db, row_db = make_db(), make_db(vectorized=False)
        for sql in (
            "SELECT * FROM t",
            "SELECT k, v FROM t WHERE v >= 10.0 AND v < 90.0",
            "SELECT * FROM t WHERE k IN ('k0', 'k2') AND NOT b",
            "SELECT * FROM t WHERE v BETWEEN 10.0 AND 20.0 OR k LIKE 'k4%'",
            "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k",
            "SELECT COUNT(*) FROM t WHERE b",
            "SELECT * FROM t WHERE v IS NULL",
            "SELECT * FROM t ORDER BY v DESC LIMIT 7",
        ):
            assert vector_db.query(sql).rows == row_db.query(sql).rows, sql

    def test_expression_predicate_falls_back_but_stays_correct(self):
        db = make_db()
        rows = db.query("SELECT id FROM t WHERE v * 2.0 > 190.0").rows
        assert sorted(rows) == [(96,), (97,), (98,), (99,)]
        # Hybrid: the scan is batched, the residual filter is row-wise.
        assert "scan" in db.last_vectorized_ops
        assert "filter" not in db.last_vectorized_ops

    def test_join_falls_back_to_row_path(self):
        db = make_db()
        db.execute("CREATE TABLE s (id INTEGER, w REAL)")
        db.insert_rows("s", ({"id": i, "w": float(i)} for i in range(50)))
        rows = db.query("SELECT t.id, s.w FROM t JOIN s ON t.id = s.id "
                        "WHERE t.id < 3 AND s.id < 90").rows
        assert sorted(rows) == [(0, 0.0), (1, 1.0), (2, 2.0)]

    def test_subquery_predicate_stays_correct(self):
        # The outer IN-subquery predicate cannot kernelize, but the
        # inner SELECT still runs batched; both paths agree.
        db = make_db()
        rows = db.query("SELECT id FROM t WHERE id IN "
                        "(SELECT id FROM t WHERE v < 2.0)").rows
        assert sorted(rows) == [(0,), (1,)]
        assert "scan" in db.last_vectorized_ops

    def test_index_probe_beats_vector_scan(self):
        db = make_db()
        db.execute("CREATE INDEX idx_id ON t (id)")
        assert db.query("SELECT k FROM t WHERE id = 7").rows == [("k2",)]
        assert "scan" not in db.last_vectorized_ops

    def test_type_mismatch_still_raises_through_fallback(self):
        db = make_db()
        with pytest.raises(TypeMismatchError):
            db.query("SELECT * FROM t WHERE k > 5")

    def test_dml_sees_fresh_state_through_cached_plans(self):
        db = make_db()
        sql = "SELECT COUNT(*) FROM t WHERE v >= 0.0"
        assert db.query(sql).rows == [(100,)]
        db.execute("DELETE FROM t WHERE id < 40")
        assert db.query(sql).rows == [(60,)]
        db.execute("UPDATE t SET v = -1.0 WHERE id = 40")
        assert db.query(sql).rows == [(59,)]
        db.execute("INSERT INTO t VALUES (200, 'k9', 7.0, 0)")
        assert db.query(sql).rows == [(60,)]


# -- planner marking ----------------------------------------------------------


class TestExplainMarking:
    def test_plain_explain_marks_scan_and_filter(self):
        db = make_db()
        planned = db.explain("SELECT * FROM t WHERE v > 5.0")
        marks = {node.kind for node in planned.root.walk()
                 if node.vectorized}
        assert marks == {"scan", "filter"}
        assert "vectorized" in planned.root.format()

    def test_explain_analyze_marks_aggregate_and_notes(self):
        db = make_db()
        planned = db.explain("SELECT k, COUNT(*) FROM t GROUP BY k",
                             analyze=True)
        marks = {node.kind for node in planned.root.walk()
                 if node.vectorized}
        assert {"scan", "aggregate"} <= marks
        assert any(note.startswith("vectorized:")
                   for note in planned.notes)

    def test_pushed_down_join_filters_marked(self):
        db = make_db()
        db.execute("CREATE TABLE s (id INTEGER, w REAL)")
        db.insert_rows("s", ({"id": i, "w": float(i)} for i in range(50)))
        db.execute("ANALYZE")
        planned = db.explain(
            "SELECT t.k FROM t JOIN s ON t.id = s.id "
            "WHERE t.v > 10.0 AND s.w < 40.0")
        vector_filters = [node for node in planned.root.walk()
                          if node.kind == "filter" and node.vectorized]
        assert len(vector_filters) == 2  # both pushed-down wrappers

    def test_row_path_database_shows_no_marks(self):
        db = make_db(vectorized=False)
        planned = db.explain("SELECT * FROM t WHERE v > 5.0")
        assert not any(node.vectorized for node in planned.root.walk())
        planned = db.explain("SELECT k, COUNT(*) FROM t GROUP BY k",
                             analyze=True)
        assert not any(node.vectorized for node in planned.root.walk())
        assert not any(note.startswith("vectorized:")
                       for note in planned.notes)

    def test_cost_model_prefers_vectorized_scans(self):
        from repro.planner.cost import CostModel
        model = CostModel()
        assert model.scan_cost(1000, vectorized=True) \
            < model.scan_cost(1000)


# -- telemetry ----------------------------------------------------------------


class TestBatchTelemetry:
    def test_batch_metrics_recorded(self):
        telemetry = Telemetry(TelemetryOptions())
        db = make_db()
        db.attach_telemetry(telemetry)
        db.query("SELECT * FROM t WHERE v > 50.0")
        db.query("SELECT k, COUNT(*) FROM t GROUP BY k")
        metrics = telemetry.metrics.to_dict()
        histogram = metrics["repro_exec_batch_rows"]["series"][0]
        assert histogram["count"] >= 2
        ops = {series["labels"]["op"]: series["value"]
               for series in
               metrics["repro_exec_vectorized_total"]["series"]}
        assert ops["scan"] >= 200.0      # both queries scanned 100 rows
        assert ops["filter"] == 49.0     # rows surviving the mask
        assert ops["aggregate"] == 100.0

    def test_row_path_database_records_nothing(self):
        telemetry = Telemetry(TelemetryOptions())
        db = make_db(vectorized=False)
        db.attach_telemetry(telemetry)
        db.query("SELECT k, COUNT(*) FROM t GROUP BY k")
        metrics = telemetry.metrics.to_dict()
        assert metrics["repro_exec_vectorized_total"]["series"] == []

    def test_metrics_visible_over_rest(self):
        db = Database("bank")
        db.execute("CREATE TABLE elem_contained (elem_name TEXT, "
                   "amount REAL)")
        db.execute("INSERT INTO elem_contained VALUES ('lead', 12.0)")
        platform = CrossePlatform(
            db, telemetry=TelemetryOptions(slow_query_threshold_s=0.0))
        platform.register_user("amy")
        service = CrosseRestService(platform)
        service.request("POST", "/api/v1/query",
                        {"username": "amy",
                         "query": "SELECT elem_name FROM elem_contained"})
        response = service.request("GET", "/api/v1/metrics")
        assert response.status == 200
        assert "repro_exec_batch_rows" in response.payload["metrics"]
        assert "repro_exec_vectorized_total" in response.payload["metrics"]
        text = service.request("GET", "/api/v1/metrics?format=prometheus")
        assert "# TYPE repro_exec_vectorized_total counter" in text.payload


# -- durability regression ----------------------------------------------------


class TestColumnarDurability:
    def build(self, directory):
        options = DurabilityOptions(directory=directory, fsync="never")
        manager = DurabilityManager(options)
        db = Database()
        manager.attach_database(db, name="main")
        return manager, db

    def test_snapshot_plus_wal_replay_round_trip(self, tmp_path):
        directory = str(tmp_path)
        manager, db = self.build(directory)
        manager.recover()
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k TEXT, "
                   "v REAL)")
        db.insert_rows("t", ({"id": i, "k": f"k{i % 3}", "v": float(i)}
                             for i in range(200)))
        manager.snapshot()
        # Post-snapshot mutations land in the WAL tail, including a
        # delete wave big enough to trigger columnar compaction.
        db.execute("DELETE FROM t WHERE id % 2 = 0")
        db.execute("UPDATE t SET v = v + 0.5 WHERE id = 151")
        db.execute("INSERT INTO t VALUES (500, 'tail', 9.0)")
        generation = db.generation
        digest = state_digest(database_state(db))
        expected = db.query("SELECT * FROM t ORDER BY id").rows
        manager.close()

        recovered_manager, recovered = self.build(directory)
        report = recovered_manager.recover()
        assert report.replay_errors == 0 and not report.warnings
        assert recovered.generation == generation
        assert state_digest(database_state(recovered)) == digest
        assert recovered.query(
            "SELECT * FROM t ORDER BY id").rows == expected
        # The recovered table is columnar and vectorizes immediately.
        assert isinstance(recovered.catalog.table("t"), Table)
        recovered.query("SELECT k, COUNT(*) FROM t GROUP BY k")
        assert "aggregate" in recovered.last_vectorized_ops
        recovered_manager.close()


# -- planner options interplay ------------------------------------------------


def test_planner_disabled_still_vectorizes_execution():
    db = Database(planner=PlannerOptions(enabled=False), vectorized=True)
    db.execute("CREATE TABLE t (id INTEGER, v REAL)")
    db.insert_rows("t", ({"id": i, "v": float(i)} for i in range(20)))
    assert len(db.query("SELECT * FROM t WHERE v >= 10.0").rows) == 10
    assert "scan" in db.last_vectorized_ops
