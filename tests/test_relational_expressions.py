"""Scalar functions, arithmetic semantics, CAST and SQL rendering."""

import pytest

from repro.relational import (Database, ExecutionError, TypeMismatchError,
                              parse_expr, parse_sql, render_expr,
                              render_statement)


@pytest.fixture
def db():
    return Database()


def one(db, expression):
    return db.query(f"SELECT {expression}").rows[0][0]


# -- string functions ----------------------------------------------------


def test_case_functions(db):
    assert one(db, "UPPER('abc')") == "ABC"
    assert one(db, "LOWER('AbC')") == "abc"


def test_length_substr_trim(db):
    assert one(db, "LENGTH('hello')") == 5
    assert one(db, "SUBSTR('hello', 2)") == "ello"
    assert one(db, "SUBSTR('hello', 2, 3)") == "ell"
    assert one(db, "TRIM('  x  ')") == "x"
    assert one(db, "LTRIM('  x')") == "x"
    assert one(db, "RTRIM('x  ')") == "x"


def test_replace_instr_concat(db):
    assert one(db, "REPLACE('banana', 'na', 'xo')") == "baxoxo"
    assert one(db, "INSTR('banana', 'nan')") == 3
    assert one(db, "INSTR('banana', 'zz')") == 0
    assert one(db, "CONCAT('a', 1, 'b')") == "a1b"


def test_null_propagation(db):
    assert one(db, "UPPER(NULL)") is None
    assert one(db, "LENGTH(NULL)") is None
    assert one(db, "CONCAT('a', NULL)") is None


def test_coalesce_ifnull_nullif(db):
    assert one(db, "COALESCE(NULL, NULL, 3)") == 3
    assert one(db, "COALESCE(NULL, NULL)") is None
    assert one(db, "IFNULL(NULL, 'x')") == "x"
    assert one(db, "NULLIF(1, 1)") is None
    assert one(db, "NULLIF(1, 2)") == 1


# -- numeric functions ----------------------------------------------------------


def test_abs_round_floor_ceil(db):
    assert one(db, "ABS(-4)") == 4
    assert one(db, "ROUND(2.567, 2)") == 2.57
    assert one(db, "ROUND(2.5)") == 2.0
    assert one(db, "FLOOR(2.9)") == 2
    assert one(db, "CEIL(2.1)") == 3


def test_sqrt_power_sign_mod(db):
    assert one(db, "SQRT(9)") == 3.0
    assert one(db, "POWER(2, 10)") == 1024.0
    assert one(db, "SIGN(-7)") == -1
    assert one(db, "SIGN(0)") == 0
    assert one(db, "MOD(7, 3)") == 1.0


def test_sqrt_negative_raises(db):
    with pytest.raises(ExecutionError):
        one(db, "SQRT(-1)")


def test_typeof(db):
    assert one(db, "TYPEOF(NULL)") == "null"
    assert one(db, "TYPEOF(1)") == "integer"
    assert one(db, "TYPEOF(1.5)") == "real"
    assert one(db, "TYPEOF('x')") == "text"
    assert one(db, "TYPEOF(TRUE)") == "boolean"


def test_unknown_function_and_bad_arity(db):
    with pytest.raises(ExecutionError):
        one(db, "NO_SUCH_FN(1)")
    with pytest.raises(ExecutionError):
        one(db, "UPPER('a', 'b')")


def test_function_type_errors(db):
    with pytest.raises(TypeMismatchError):
        one(db, "UPPER(3)")
    with pytest.raises(TypeMismatchError):
        one(db, "ABS('x')")


# -- arithmetic & concatenation --------------------------------------------------


def test_string_concat_operator(db):
    assert one(db, "'a' || 'b' || 'c'") == "abc"
    assert one(db, "'n=' || 5") == "n=5"
    assert one(db, "NULL || 'x'") is None


def test_arithmetic_null_propagates(db):
    assert one(db, "1 + NULL") is None
    assert one(db, "NULL * 0") is None


def test_modulo_sign_follows_dividend(db):
    assert one(db, "-7 % 3") == -1
    assert one(db, "7 % -3") == 1


def test_unary_minus_and_plus(db):
    assert one(db, "-(2 + 3)") == -5
    assert one(db, "+4") == 4
    with pytest.raises(TypeMismatchError):
        one(db, "-'x'")


def test_cast_semantics(db):
    assert one(db, "CAST('12' AS INTEGER)") == 12
    assert one(db, "CAST(3.0 AS INTEGER)") == 3
    assert one(db, "CAST(7 AS TEXT)") == "7"
    assert one(db, "CAST('true' AS BOOLEAN)") is True
    assert one(db, "CAST(NULL AS INTEGER)") is None
    with pytest.raises(TypeMismatchError):
        one(db, "CAST('12abc' AS INTEGER)")
    with pytest.raises(TypeMismatchError):
        one(db, "CAST(3.5 AS INTEGER)")  # non-integral real


def test_boolean_literals_in_where(db):
    db.execute("CREATE TABLE t (flag BOOLEAN)")
    db.execute("INSERT INTO t VALUES (TRUE), (FALSE), (NULL)")
    assert len(db.query("SELECT * FROM t WHERE flag").rows) == 1


# -- rendering ----------------------------------------------------------------------


def test_render_expression_round_trip_examples():
    for text in ["(a + (b * 2))", "(x IN (1, 2))",
                 "(name LIKE 'O''Brien%')"]:
        rendered = render_expr(parse_expr(text))
        # Re-parse of the rendering yields the same rendering.
        assert render_expr(parse_expr(rendered)) == rendered


def test_render_statement_forms():
    select = parse_sql("SELECT a AS x FROM t LEFT JOIN u ON t.id = u.id "
                       "WHERE a > 1 GROUP BY a HAVING COUNT(*) > 0 "
                       "ORDER BY x DESC LIMIT 5 OFFSET 2")
    text = render_statement(select)
    for keyword in ("LEFT JOIN", "GROUP BY", "HAVING", "ORDER BY",
                    "LIMIT", "OFFSET"):
        assert keyword in text
    insert = parse_sql("INSERT INTO t (a) VALUES (1), (2)")
    assert render_statement(insert) == "INSERT INTO t (a) VALUES (1), (2)"
    update = parse_sql("UPDATE t SET a = a + 1 WHERE a < 3")
    assert "UPDATE t SET" in render_statement(update)
    delete = parse_sql("DELETE FROM t WHERE a = 1")
    assert render_statement(delete) == "DELETE FROM t WHERE (a = 1)"
    create = parse_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    assert "PRIMARY KEY" in render_statement(create)


def test_rendered_statement_is_executable(db):
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    original = "SELECT b, COUNT(*) AS n FROM t WHERE a >= 1 GROUP BY b " \
               "ORDER BY n DESC, b"
    rendered = render_statement(parse_sql(original))
    assert db.query(rendered).rows == db.query(original).rows


def test_quoted_identifiers_render_safely():
    stmt = parse_sql('SELECT "week day" FROM "my table"')
    rendered = render_statement(stmt)
    assert '"week day"' in rendered
    assert '"my table"' in rendered
