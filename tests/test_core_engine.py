"""SESQL engine behaviour beyond the paper's worked examples."""

import pytest

from repro.core import (EnrichmentError, JoinManager, ResourceMapping,
                        SESQLEngine)
from repro.core.sqm import Extraction
from repro.core.ast import SchemaExtension
from repro.rdf import Namespace, TripleStore, parse_turtle
from repro.relational import Database, ResultSet

SMG = Namespace("http://smartground.eu/ns#")


@pytest.fixture
def engine():
    db = Database()
    db.execute_script("""
        CREATE TABLE elem_contained (
            landfill_name TEXT, elem_name TEXT, amount REAL);
        INSERT INTO elem_contained VALUES
            ('a','Mercury',12.0), ('a','Iron',140.0), ('b','Mercury',7.0);
    """)
    kb = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury smg:dangerLevel "high" ; smg:dangerLevel "extreme" .
        smg:Iron smg:dangerLevel "low" .
    """)
    return SESQLEngine(db, kb)


def test_multivalued_property_multiplies_rows(engine):
    result = engine.query("""
        SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""")
    # Mercury has two dangerLevel statements -> two output rows.
    mercury_rows = [row for row in result.rows if row[0] == "Mercury"]
    assert len(mercury_rows) == 2
    assert {row[1] for row in mercury_rows} == {"high", "extreme"}


def test_empty_kb_pads_with_nulls(engine):
    result = engine.query("""
        SELECT elem_name FROM elem_contained
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""",
        knowledge_base=TripleStore())
    assert all(row[1] is None for row in result.rows)
    assert len(result.rows) == 3  # enrichment never drops rows


def test_direct_and_tempdb_strategies_agree(engine):
    sesql = """
        SELECT elem_name, amount FROM elem_contained
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"""
    via_tempdb = engine.query(sesql, join_strategy="tempdb")
    via_direct = engine.query(sesql, join_strategy="direct")
    assert via_tempdb.columns == via_direct.columns
    assert via_tempdb.same_rows(via_direct)


def test_direct_strategy_produces_no_final_sql(engine):
    outcome = engine.execute("""
        SELECT elem_name FROM elem_contained
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""",
        join_strategy="direct")
    assert outcome.final_sqls == []


def test_multiple_select_enrichments_compose(engine):
    result = engine.query("""
        SELECT elem_name FROM elem_contained WHERE landfill_name = 'a'
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)
               BOOLSCHEMAEXTENSION(elem_name, dangerLevel, high)""")
    assert result.columns == [
        "elem_name", "dangerLevel", "dangerLevel_high"]
    by_name = {}
    for name, _level, flag in result.rows:
        by_name.setdefault(name, set()).add(flag)
    assert by_name["Mercury"] == {True}
    assert by_name["Iron"] == {False}


def test_unknown_attr_rejected(engine):
    with pytest.raises(EnrichmentError):
        engine.query("""
            SELECT amount FROM elem_contained
            ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""")


def test_new_column_name_deduplicated(engine):
    result = engine.query("""
        SELECT elem_name, amount AS dangerLevel FROM elem_contained
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""")
    assert result.columns == ["elem_name", "dangerLevel", "dangerLevel_2"]


def test_where_rewrite_cleans_temp_tables(engine):
    db = engine.databank
    before = set(db.table_names())
    engine.query("""
        SELECT landfill_name FROM elem_contained
        WHERE ${elem_name = Dangerous:c1}
        ENRICH REPLACECONSTANT(c1, Dangerous, dangerLevel)""")
    assert set(db.table_names()) == before


def test_no_enrichment_acts_as_plain_sql(engine):
    result = engine.execute(
        "SELECT elem_name FROM elem_contained WHERE amount > 10")
    assert sorted(result.rows) == [("Iron",), ("Mercury",)]
    assert result.sparql_queries == []


def test_enrichment_preserves_row_order_of_base(engine):
    result = engine.query("""
        SELECT elem_name FROM elem_contained
        ENRICH BOOLSCHEMAEXTENSION(elem_name, dangerLevel, low)""")
    assert [row[0] for row in result.rows] == [
        "Mercury", "Iron", "Mercury"]


def test_enrich_with_order_by_and_limit(engine):
    result = engine.query("""
        SELECT elem_name, amount FROM elem_contained
        ORDER BY amount DESC LIMIT 2
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""")
    # Base: Iron(140), Mercury(12); Mercury's two dangerLevel statements
    # multiply its row after enrichment.
    assert [row[0] for row in result.rows] == ["Iron", "Mercury", "Mercury"]


def test_join_manager_rejects_bad_strategy():
    with pytest.raises(EnrichmentError):
        JoinManager(ResourceMapping(), strategy="quantum")


def test_join_manager_rejects_where_enrichment():
    from repro.core.ast import ReplaceConstant
    manager = JoinManager(ResourceMapping())
    base = ResultSet(["a"], [(1,)])
    with pytest.raises(EnrichmentError):
        manager.combine(base, ReplaceConstant("c", "X", "p"), Extraction(""))


def test_combine_on_empty_base_result():
    manager = JoinManager(ResourceMapping())
    base = ResultSet(["elem"], [])
    outcome = manager.combine(base, SchemaExtension("elem", "p"),
                              Extraction("", pairs=[]))
    assert outcome.result.rows == []
    assert outcome.result.columns == ["elem", "p"]


def test_replacevariable_requires_column_attr(engine):
    with pytest.raises(EnrichmentError):
        engine.query("""
            SELECT elem_name FROM elem_contained
            WHERE ${elem_name <> 'x':c1}
            ENRICH REPLACEVARIABLE(c1, 'not a column!!', dangerLevel)""")


def test_constant_absent_from_condition_rejected(engine):
    with pytest.raises(EnrichmentError):
        engine.query("""
            SELECT elem_name FROM elem_contained
            WHERE ${amount > 5:c1}
            ENRICH REPLACECONSTANT(c1, Missing, dangerLevel)""")


# -- per-statement extraction dedupe -----------------------------------------


def test_identical_extractions_across_conditions_execute_once(engine):
    """Two tagged conditions with the same REPLACECONSTANT extraction:
    the plan reports both logical extractions, the KB runs one query."""
    before = engine.sqm.sparql_execution_count()
    result = engine.execute("""
        SELECT elem_name, amount FROM elem_contained
        WHERE ${ elem_name = 'Mercury' : cond1 }
           OR ${ elem_name = 'Mercury' : cond2 }
        ENRICH REPLACECONSTANT(cond1, Mercury, dangerLevel)
               REPLACECONSTANT(cond2, Mercury, dangerLevel)""")
    assert len(result.sparql_queries) == 2
    assert len(set(result.sparql_queries)) == 1
    assert result.sparql_executions == 1
    assert engine.sqm.sparql_execution_count() - before == 1


def test_where_and_select_extraction_shared(engine):
    """A WHERE rewrite and a SELECT enrichment over the same property
    reuse one extraction within the statement."""
    before = engine.sqm.sparql_execution_count()
    result = engine.execute("""
        SELECT elem_name FROM elem_contained
        WHERE ${ elem_name <> 'x' : cond1 }
        ENRICH REPLACEVARIABLE(cond1, elem_name, dangerLevel)
               SCHEMAEXTENSION(elem_name, dangerLevel)""")
    assert len(result.sparql_queries) == 2
    assert result.sparql_executions == 1
    assert engine.sqm.sparql_execution_count() - before == 1
    # The rewrite and the enrichment both took effect.
    assert "dangerLevel" in result.columns[-1]


def test_distinct_extractions_still_execute_separately(engine):
    before = engine.sqm.sparql_execution_count()
    result = engine.execute("""
        SELECT elem_name FROM elem_contained
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)
               BOOLSCHEMAEXTENSION(elem_name, dangerLevel, high)""")
    assert len(result.sparql_queries) == 2
    assert result.sparql_executions == 2
    assert engine.sqm.sparql_execution_count() - before == 2
