"""SPARQL engine: query forms, patterns, filters, paths, modifiers."""

import pytest

from repro.rdf import Literal, Namespace, parse_turtle
from repro.sparql import (SparqlEngine, SparqlSyntaxError, Variable,
                          parse_sparql)

SMG = Namespace("http://smartground.eu/ns#")

PREFIX = "PREFIX smg: <http://smartground.eu/ns#>\n"

DATA = """
@prefix smg: <http://smartground.eu/ns#> .
smg:Mercury a smg:Element ; smg:dangerLevel "high" ;
    smg:isA smg:HazardousWaste ; smg:atomicNumber 80 .
smg:Asbestos a smg:Element ; smg:dangerLevel "extreme" ;
    smg:isA smg:HazardousWaste .
smg:Iron a smg:Element ; smg:dangerLevel "low" ; smg:atomicNumber 26 .
smg:Copper a smg:Element ; smg:atomicNumber 29 .
smg:Torino smg:inCountry smg:Italy .
smg:Lyon smg:inCountry smg:France .
smg:Italy smg:inContinent smg:Europe .
smg:France smg:inContinent smg:Europe .
smg:Mercury smg:oreAssemblage smg:Cinnabar .
smg:Cinnabar smg:oreAssemblage smg:Sulfur .
smg:HazardousWaste smg:broader smg:Waste .
smg:Waste smg:broader smg:Material .
"""


@pytest.fixture
def engine():
    return SparqlEngine(parse_turtle(DATA))


def names(results, var="s"):
    return sorted(str(term).rsplit("#", 1)[-1]
                  for term in results.values(var) if term is not None)


def test_select_single_pattern(engine):
    results = engine.query(
        PREFIX + "SELECT ?s WHERE { ?s smg:isA smg:HazardousWaste }")
    assert names(results) == ["Asbestos", "Mercury"]


def test_select_star_collects_all_variables(engine):
    results = engine.query(
        PREFIX + "SELECT * WHERE { smg:Torino smg:inCountry ?c }")
    assert results.var_names() == ["c"]


def test_join_across_patterns(engine):
    results = engine.query(PREFIX + """
        SELECT ?s WHERE {
            ?s smg:isA smg:HazardousWaste .
            ?s smg:atomicNumber ?n }""")
    assert names(results) == ["Mercury"]


def test_filter_comparisons(engine):
    results = engine.query(PREFIX + """
        SELECT ?s WHERE { ?s smg:atomicNumber ?n FILTER(?n > 28) }""")
    assert names(results) == ["Copper", "Mercury"]


def test_filter_regex_and_str_functions(engine):
    results = engine.query(PREFIX + """
        SELECT ?s WHERE { ?s smg:dangerLevel ?d
                          FILTER(REGEX(?d, "^(high|extreme)$")) }""")
    assert names(results) == ["Asbestos", "Mercury"]
    results = engine.query(PREFIX + """
        SELECT ?s WHERE { ?s smg:dangerLevel ?d
                          FILTER(STRSTARTS(?d, "ex")) }""")
    assert names(results) == ["Asbestos"]


def test_filter_error_drops_solution(engine):
    # STRLEN of a number errors; those solutions are dropped, not raised.
    results = engine.query(PREFIX + """
        SELECT ?s WHERE { ?s smg:atomicNumber ?n FILTER(STRLEN(?n) > 0) }""")
    assert len(results) == 0


def test_optional_left_join(engine):
    results = engine.query(PREFIX + """
        SELECT ?s ?d WHERE {
            ?s a smg:Element
            OPTIONAL { ?s smg:dangerLevel ?d } } ORDER BY ?s""")
    bindings = {row[0].local_name(): row[1] for row in results.tuples()}
    assert bindings["Copper"] is None
    assert bindings["Iron"] == Literal("low")


def test_optional_with_bound_filter(engine):
    results = engine.query(PREFIX + """
        SELECT ?s WHERE {
            ?s a smg:Element
            OPTIONAL { ?s smg:dangerLevel ?d }
            FILTER(!BOUND(?d)) }""")
    assert names(results) == ["Copper"]


def test_union(engine):
    results = engine.query(PREFIX + """
        SELECT ?s WHERE {
            { ?s smg:dangerLevel "low" } UNION
            { ?s smg:dangerLevel "extreme" } }""")
    assert names(results) == ["Asbestos", "Iron"]


def test_sequence_path(engine):
    results = engine.query(PREFIX + """
        SELECT ?x WHERE { smg:Torino smg:inCountry/smg:inContinent ?x }""")
    assert names(results, "x") == ["Europe"]


def test_inverse_path(engine):
    results = engine.query(PREFIX + """
        SELECT ?city WHERE { smg:Italy ^smg:inCountry ?city }""")
    assert names(results, "city") == ["Torino"]


def test_one_or_more_path(engine):
    results = engine.query(PREFIX + """
        SELECT ?x WHERE { smg:Mercury smg:oreAssemblage+ ?x }""")
    assert names(results, "x") == ["Cinnabar", "Sulfur"]


def test_zero_or_more_path_includes_start(engine):
    results = engine.query(PREFIX + """
        SELECT ?x WHERE { smg:HazardousWaste smg:broader* ?x }""")
    assert names(results, "x") == ["HazardousWaste", "Material", "Waste"]


def test_alternative_path(engine):
    results = engine.query(PREFIX + """
        SELECT ?x WHERE { smg:Mercury smg:isA|smg:dangerLevel ?x }""")
    assert len(results) == 2


def test_order_by_asc_desc_limit_offset(engine):
    ascending = engine.query(PREFIX + """
        SELECT ?s ?n WHERE { ?s smg:atomicNumber ?n } ORDER BY ?n""")
    numbers = [term.value for term in ascending.values("n")]
    assert numbers == [26, 29, 80]
    descending = engine.query(PREFIX + """
        SELECT ?s ?n WHERE { ?s smg:atomicNumber ?n }
        ORDER BY DESC(?n) LIMIT 1""")
    assert [t.value for t in descending.values("n")] == [80]
    offset = engine.query(PREFIX + """
        SELECT ?n WHERE { ?s smg:atomicNumber ?n }
        ORDER BY ?n LIMIT 2 OFFSET 1""")
    assert [t.value for t in offset.values("n")] == [29, 80]


def test_distinct(engine):
    results = engine.query(PREFIX + """
        SELECT DISTINCT ?c WHERE { ?country smg:inContinent ?c }""")
    assert len(results) == 1


def test_ask(engine):
    assert engine.query(
        PREFIX + "ASK { smg:Mercury smg:isA smg:HazardousWaste }") is True
    assert engine.query(
        PREFIX + "ASK { smg:Iron smg:isA smg:HazardousWaste }") is False


def test_construct(engine):
    graph = engine.query(PREFIX + """
        CONSTRUCT { ?s smg:flagged "yes" }
        WHERE { ?s smg:isA smg:HazardousWaste }""")
    assert len(graph) == 2
    assert graph.count(None, SMG.flagged, None) == 2


def test_bind(engine):
    results = engine.query(PREFIX + """
        SELECT ?s ?len WHERE {
            ?s smg:dangerLevel ?d
            BIND(STRLEN(?d) AS ?len)
            FILTER(?len >= 4) } ORDER BY DESC(?len)""")
    lengths = [term.value for term in results.values("len")]
    assert lengths == [7, 4, 3] or lengths == [7, 4]


def test_variable_predicate(engine):
    results = engine.query(PREFIX + """
        SELECT ?p WHERE { smg:Torino ?p smg:Italy }""")
    assert names(results, "p") == ["inCountry"]


def test_syntax_error_reported():
    with pytest.raises(SparqlSyntaxError):
        parse_sparql("SELECT WHERE {}")
    with pytest.raises(SparqlSyntaxError):
        parse_sparql("SELECT ?x WHERE { ?x ?y }")


def test_parse_reusable_ast(engine):
    query = parse_sparql(PREFIX + "SELECT ?s WHERE { ?s a smg:Element }")
    first = engine.query(query)
    second = engine.query(query)
    assert len(first) == len(second) == 4


def test_variable_identity():
    assert Variable("x") == Variable("x")
    assert Variable("x") != Variable("y")


def test_stream_yields_solutions_lazily(engine):
    solutions = engine.stream(PREFIX + """
        SELECT ?s ?n WHERE { ?s smg:atomicNumber ?n }""")
    import types
    assert isinstance(solutions, types.GeneratorType)
    first = next(solutions)
    assert set(v.name for v in first) == {"s", "n"}
    assert len(list(solutions)) == 2  # remaining rows


def test_stream_applies_limit_offset_and_modifiers(engine):
    rows = list(engine.stream(PREFIX + """
        SELECT ?n WHERE { ?s smg:atomicNumber ?n } LIMIT 2"""))
    assert len(rows) == 2
    ordered = list(engine.stream(PREFIX + """
        SELECT ?n WHERE { ?s smg:atomicNumber ?n } ORDER BY ?n"""))
    assert [next(iter(sol.values())).value for sol in ordered] \
        == [26, 29, 80]


def test_naive_engine_selectable():
    import pytest as _pytest
    from repro.sparql import SparqlEvalError
    store = parse_turtle(DATA)
    naive = SparqlEngine(store, evaluator="naive")
    fast = SparqlEngine(store)
    query = PREFIX + "SELECT ?s WHERE { ?s smg:isA smg:HazardousWaste }"
    assert sorted(map(repr, naive.query(query).tuples())) \
        == sorted(map(repr, fast.query(query).tuples()))
    with _pytest.raises(SparqlEvalError):
        SparqlEngine(store, evaluator="bogus")
