"""The cluster subsystem: shard map, RPC protocol, WAL-tailing read
replicas, coordinator routing/scatter-gather, and the multi-process
end-to-end path.

In-process tests run :class:`~repro.cluster.ShardServer` on background
threads (same code path the spawned worker runs, minus the process
boundary).  The multi-process tests at the bottom go through
:func:`~repro.cluster.start_cluster` with real ``spawn`` workers; their
worker count honours ``CLUSTER_WORKERS`` (CI runs them at 4, the local
default is 2).

The replica tests pin the PR's central correctness contract: a replica
whose generation stamp lags the primary **forwards** the read (or
refuses) — it never serves stale data — and catches up by tailing the
primary's WAL, so a read after sync is byte-identical to the primary's.
"""

from __future__ import annotations

import os
import socket
import tempfile

import pytest

import repro
from repro.cluster import (ClusterCoordinator, ClusterOptions, HashRing,
                           ProtocolError, ReadReplica, ReplicaStaleError,
                           ShardServer, ShardUnavailableError,
                           recv_message, send_message, start_cluster,
                           unix_address)
from repro.cluster.testing import build_platform_shard, seed_readings
from repro.durability import DurabilityManager, DurabilityOptions
from repro.rdf.terms import IRI, Literal
from repro.relational import Database

CLUSTER_WORKERS = int(os.environ.get("CLUSTER_WORKERS", "2"))


# -- the shard map -------------------------------------------------------------


def test_hashring_is_deterministic_across_instances():
    first = HashRing(4)
    second = HashRing(4)
    users = [f"user-{index}" for index in range(200)]
    assert [first.shard_for(user) for user in users] \
        == [second.shard_for(user) for user in users]


def test_hashring_balances_reasonably():
    ring = HashRing(4)
    spread = ring.distribution(f"user-{index}" for index in range(2000))
    assert set(spread) == {0, 1, 2, 3}
    # Virtual nodes keep the skew modest; exact balance is not the goal.
    assert min(spread.values()) > 2000 / 4 * 0.5
    assert max(spread.values()) < 2000 / 4 * 1.6


def test_hashring_growth_moves_a_minority_of_keys():
    users = [f"user-{index}" for index in range(1000)]
    before = HashRing(4)
    after = HashRing(5)
    moved = sum(1 for user in users
                if before.shard_for(user) != after.shard_for(user))
    # Consistent hashing: ~1/5 of keys relocate, modulo noise — a
    # modulo map would move ~4/5 of them.
    assert moved < 1000 * 0.45


def test_hashring_rejects_empty():
    with pytest.raises(ValueError):
        HashRing(0)
    with pytest.raises(ValueError):
        HashRing(shard_ids=[])


# -- the wire protocol ---------------------------------------------------------


def _socketpair():
    return socket.socketpair()


def test_protocol_round_trips_rdf_terms():
    payload = {
        "op": "test",
        "iri": IRI("http://example.org/thing"),
        "literal": Literal("hello", lang="en"),
        "typed": Literal(42),
        "nested": [{"deep": IRI("http://example.org/deep")}],
    }
    left, right = _socketpair()
    try:
        send_message(left, payload)
        received = recv_message(right)
    finally:
        left.close()
        right.close()
    assert received["iri"] == IRI("http://example.org/thing")
    assert received["literal"] == Literal("hello", lang="en")
    assert received["typed"] == Literal(42)
    assert received["nested"][0]["deep"] == IRI("http://example.org/deep")


def test_protocol_rejects_oversized_length_prefix():
    left, right = _socketpair()
    try:
        left.sendall((1 << 29).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_message(right)
    finally:
        left.close()
        right.close()


def test_protocol_peer_disconnect_is_unavailable():
    left, right = _socketpair()
    left.close()
    try:
        with pytest.raises(ShardUnavailableError):
            recv_message(right)
    finally:
        right.close()


# -- WAL-tailing replicas ------------------------------------------------------


def _durable_primary(directory, **overrides):
    primary = Database(name="main")
    manager = DurabilityManager(DurabilityOptions(
        directory=directory, fsync="never", **overrides))
    manager.attach_database(primary)
    manager.recover()
    return primary, manager


def test_replica_bootstraps_and_tails_the_wal(tmp_path):
    primary, manager = _durable_primary(str(tmp_path))
    seed_readings(primary, 20)
    manager.sync()

    replica = ReadReplica(str(tmp_path))
    applied = replica.refresh()
    assert applied > 0
    assert replica.generations()["db"] == primary.generation
    assert replica.database.query("SELECT COUNT(*) FROM readings").rows \
        == primary.query("SELECT COUNT(*) FROM readings").rows

    # Incremental catch-up: new primary writes become visible after a
    # sync + poll, and the generation stamp is pinned to the primary's.
    primary.execute("INSERT INTO readings VALUES (900, 'x', 5)")
    manager.sync()
    assert replica.refresh() > 0
    assert replica.generations()["db"] == primary.generation
    assert replica.database.query(
        "SELECT value FROM readings WHERE id = 900").rows == [(5,)]
    manager.close()


def test_replica_follows_snapshot_rotation(tmp_path):
    # A tiny snapshot interval forces several epochs; the tailer must
    # walk segment successions without losing or double-applying rows.
    primary, manager = _durable_primary(str(tmp_path), snapshot_every=10)
    seed_readings(primary, 35)
    manager.sync()
    manager.snapshot()

    replica = ReadReplica(str(tmp_path))
    replica.refresh()
    assert replica.database.query("SELECT COUNT(*) FROM readings").rows \
        == [(35,)]
    primary.execute("INSERT INTO readings VALUES (901, 'y', 6)")
    manager.sync()
    replica.refresh()
    assert replica.database.query("SELECT COUNT(*) FROM readings").rows \
        == [(36,)]
    assert replica.generations()["db"] == primary.generation
    manager.close()


def test_fresh_replica_serves_bytes_identical_to_primary(tmp_path):
    primary, manager = _durable_primary(str(tmp_path))
    seed_readings(primary, 25)
    manager.sync()
    replica = ReadReplica(str(tmp_path))
    sql = "SELECT id, sensor, value FROM readings ORDER BY id"
    local = replica.query(sql, expected_generation=primary.generation)
    reference = primary.query(sql)
    assert local.columns == reference.columns
    assert local.rows == reference.rows
    assert replica.local_reads == 1 and replica.forwarded_reads == 0
    manager.close()


def test_stale_replica_forwards_to_primary_never_serves_stale(tmp_path):
    """Satellite 3: the generation-stamp freshness contract.

    The primary's WAL group-commits — a write without ``sync()`` is
    invisible to tailers, so the replica *cannot* catch up to the
    generation the caller observed.  The replica must forward the read
    to the primary (answer byte-identical to the primary's) rather than
    serve its own stale rows.
    """
    primary, manager = _durable_primary(
        str(tmp_path), group_commit_records=10_000,
        group_commit_bytes=1 << 30)
    seed_readings(primary, 10)
    manager.sync()
    replica = ReadReplica(str(tmp_path), forward=primary.query)
    replica.refresh()
    synced_generation = primary.generation

    # A buffered (unsynced) write: the primary's generation advances,
    # the WAL bytes don't.
    primary.execute("INSERT INTO readings VALUES (902, 'z', 7)")
    assert primary.generation > synced_generation

    sql = "SELECT COUNT(*) FROM readings"
    forwarded = replica.query(sql, expected_generation=primary.generation)
    assert replica.forwarded_reads == 1
    assert forwarded.rows == primary.query(sql).rows == [(11,)]
    # The replica's own copy is genuinely behind — the forward was the
    # only honest answer.
    assert replica.database.query(sql).rows == [(10,)]

    # Without a forward target the stale read must refuse, not lie.
    strict = ReadReplica(str(tmp_path))
    strict.refresh()
    with pytest.raises(ReplicaStaleError):
        strict.query(sql, expected_generation=primary.generation)

    # After a sync the replica catches up and serves locally again,
    # byte-identical to the primary.
    manager.sync()
    local = replica.query(sql, expected_generation=primary.generation)
    assert replica.local_reads == 1
    assert local.rows == primary.query(sql).rows
    manager.close()


# -- in-process shard servers + coordinator ------------------------------------


class _ThreadCluster:
    """N ShardServers on daemon threads + a coordinator over them."""

    def __init__(self, n_shards: int, *, telemetry=None,
                 options: ClusterOptions | None = None,
                 seed_rows: int = 20, shard_telemetry: bool = False):
        self.dir = tempfile.mkdtemp(prefix="repro-tc-")
        self.servers = []
        addresses = []
        for shard_id in range(n_shards):
            runtime = build_platform_shard(
                shard_id, n_shards, telemetry=shard_telemetry,
                seed_rows=seed_rows)
            address = unix_address(f"{self.dir}/s{shard_id}.sock")
            server = ShardServer(shard_id, address, runtime,
                                 pool_capacity=4)
            server.start_background()
            self.servers.append(server)
            addresses.append(address)
        self.coordinator = ClusterCoordinator(
            addresses, options=options, telemetry=telemetry)

    def close(self):
        self.coordinator.shutdown_shards()
        self.coordinator.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()


def test_coordinator_routes_users_to_owning_shards():
    with _ThreadCluster(2) as tc:
        users = [f"user-{index}" for index in range(12)]
        for user in users:
            response = tc.coordinator.request(
                "POST", "/api/v1/users", {"username": user})
            assert response.status == 200
        ring = tc.coordinator.ring
        for shard_id, server in enumerate(tc.servers):
            expected = sorted(user for user in users
                              if ring.shard_for(user) == shard_id)
            assert server.runtime.platform.users.usernames() == expected


def test_scatter_user_listing_merges_sorted_and_paginates():
    with _ThreadCluster(2) as tc:
        users = [f"user-{index:02d}" for index in range(15)]
        for user in users:
            tc.coordinator.request("POST", "/api/v1/users",
                                   {"username": user})
        response = tc.coordinator.request(
            "GET", "/api/v1/users?limit=10")
        assert response.status == 200
        assert response.payload["users"] == users[:10]
        token = response.payload["next_token"]
        assert token
        rest = tc.coordinator.request(
            "GET", f"/api/v1/users?limit=10&next_token={token}")
        assert rest.payload["users"] == users[10:]
        assert rest.payload["next_token"] is None


def test_routed_query_matches_single_process_platform():
    """Byte-identical contract: a query through the cluster returns
    exactly what the same user sees on a single-process platform."""
    from repro.crosse.platform import CrossePlatform
    reference_db = Database()
    seed_readings(reference_db, 20)
    reference = CrossePlatform(reference_db)
    reference.register_user("alice")
    expected = reference.connect().as_user("alice").query(
        "SELECT sensor, SUM(value) AS total FROM readings "
        "GROUP BY sensor ORDER BY sensor")

    with _ThreadCluster(3) as tc:
        tc.coordinator.request("POST", "/api/v1/users",
                               {"username": "alice"})
        response = tc.coordinator.request(
            "POST", "/api/v1/query",
            {"username": "alice",
             "query": "SELECT sensor, SUM(value) AS total FROM readings "
                      "GROUP BY sensor ORDER BY sensor"})
        assert response.status == 200
        assert response.payload["columns"] == expected.columns
        assert [tuple(row) for row in response.payload["rows"]] \
            == expected.rows


def test_cluster_session_drains_pagination():
    with _ThreadCluster(2, seed_rows=30) as tc:
        session = repro.connect(tc.coordinator)
        session.register_user("alice")
        result = session.execute(
            "alice", "SELECT id FROM readings ORDER BY id")
        assert result.columns == ["id"]
        assert [row[0] for row in result.rows] == list(range(30))
        assert session.users() == ["alice"]


def test_scatter_query_groups_users_by_owner():
    with _ThreadCluster(2) as tc:
        users = [f"user-{index}" for index in range(8)]
        for user in users:
            tc.coordinator.request("POST", "/api/v1/users",
                                   {"username": user})
        response = tc.coordinator.request(
            "POST", "/api/v1/cluster/query",
            {"query": "SELECT COUNT(*) FROM readings"})
        assert response.status == 200
        results = response.payload["results"]
        assert sorted(results) == sorted(users)
        assert all(entry["rows"] == [[20]]
                   for entry in results.values())


def test_skip_policy_absorbs_a_dead_shard():
    with _ThreadCluster(
            2, options=ClusterOptions(failure_policy="skip",
                                      max_retries=0)) as tc:
        for user in ("alice", "bob", "carol", "dave"):
            tc.coordinator.request("POST", "/api/v1/users",
                                   {"username": user})
        # Kill shard 0 out from under the coordinator.
        tc.servers[0].shutdown()
        response = tc.coordinator.request("GET", "/api/v1/users")
        assert response.status == 200
        survivors = response.payload["users"]
        ring = tc.coordinator.ring
        assert survivors == sorted(
            user for user in ("alice", "bob", "carol", "dave")
            if ring.shard_for(user) == 1)
        assert response.payload["warnings"]
        # A routed request to the dead shard surfaces a 503, not a hang.
        victim = next(user for user in ("alice", "bob", "carol", "dave")
                      if ring.shard_for(user) == 0)
        routed = tc.coordinator.request(
            "POST", "/api/v1/query",
            {"username": victim, "query": "SELECT 1"})
        assert routed.status == 503
        assert routed.payload["error"]["code"] == "shard_unavailable"


def test_fail_policy_raises_through_as_503():
    options = ClusterOptions(max_retries=0, connect_timeout_s=1.0)
    coordinator = ClusterCoordinator(
        [unix_address("/tmp/repro-nonexistent-shard.sock")],
        options=options)
    response = coordinator.request("GET", "/api/v1/users")
    assert response.status == 503
    assert response.payload["error"]["code"] == "shard_unavailable"
    coordinator.close()


def test_cluster_stats_and_per_shard_metrics():
    with _ThreadCluster(2, telemetry=True, shard_telemetry=True) as tc:
        tc.coordinator.request("POST", "/api/v1/users",
                               {"username": "alice"})
        tc.coordinator.request(
            "POST", "/api/v1/query",
            {"username": "alice", "query": "SELECT 1"})
        stats = tc.coordinator.request("GET", "/api/v1/cluster/stats")
        assert stats.status == 200
        assert [entry["shard"] for entry in stats.payload["shards"]] \
            == [0, 1]
        assert all("pool" in entry for entry in stats.payload["shards"])

        metrics = tc.coordinator.request("GET",
                                         "/api/v1/cluster/metrics")
        assert metrics.status == 200
        assert set(metrics.payload["shards"]) == {"0", "1"}
        coordinator_metrics = metrics.payload["coordinator"]
        assert "repro_cluster_rpcs_total" in coordinator_metrics
        # The owning shard's own registry metered the pooled query.
        owner = str(tc.coordinator.shard_for("alice"))
        assert "repro_queries_total" in metrics.payload["shards"][owner]


def test_trace_grafting_produces_one_span_tree():
    with _ThreadCluster(1, telemetry=True, shard_telemetry=True) as tc:
        tc.coordinator.request("POST", "/api/v1/users",
                               {"username": "alice"})
        response = tc.coordinator.request(
            "POST", "/api/v1/query",
            {"username": "alice", "query": "SELECT 1"})
        assert response.status == 200
        tracer = tc.coordinator.telemetry.tracer
        root = next(span for span in tracer.traces()
                    if span.name == "cluster.request"
                    and span.attrs.get("path") == "/api/v1/query")
        tree = root.to_dict()

        def walk(node):
            yield node
            for child in node.get("children", []):
                yield from walk(child)

        names = [node["name"] for node in walk(tree)]
        # Coordinator-side spans AND the worker's remote spans hang off
        # the same root: one query, one tree, across the RPC boundary.
        assert "cluster.rpc" in names
        remote = [node for node in walk(tree)
                  if node.get("attrs", {}).get("remote_query_id")]
        assert remote, f"no grafted remote spans in {names}"


# -- multi-process end-to-end --------------------------------------------------


@pytest.mark.stress
def test_multiprocess_cluster_end_to_end(tmp_path):
    primary, manager = _durable_primary(str(tmp_path))
    seed_readings(primary, 40)
    manager.sync()

    users = [f"user-{index}" for index in range(10)]
    sql = ("SELECT sensor, COUNT(*) AS n, SUM(value) AS total "
           "FROM readings GROUP BY sensor ORDER BY sensor")

    # The serial reference: one platform over the primary itself.
    from repro.crosse.platform import CrossePlatform
    reference = CrossePlatform(primary)
    for user in users:
        reference.register_user(user)
    reference_rows = reference.connect().as_user(users[0]).query(sql)

    cluster = start_cluster(
        CLUSTER_WORKERS, "repro.cluster.testing:build_shard",
        builder_args={"directory": str(tmp_path)},
        primary=primary, durability=manager, telemetry=True)
    try:
        for user in users:
            response = cluster.request("POST", "/api/v1/users",
                                       {"username": user})
            assert response.status == 200

        # Routed queries: byte-identical to the serial reference.
        for user in users[:4]:
            response = cluster.request(
                "POST", "/api/v1/query",
                {"username": user, "query": sql})
            assert response.status == 200
            assert response.payload["columns"] == reference_rows.columns
            assert [tuple(row) for row in response.payload["rows"]] \
                == reference_rows.rows

        # Scatter-gather: every user's slice equals the serial answer.
        scattered = cluster.request(
            "POST", "/api/v1/cluster/query", {"query": sql})
        assert scattered.status == 200
        assert sorted(scattered.payload["results"]) == sorted(users)
        for entry in scattered.payload["results"].values():
            assert entry["columns"] == reference_rows.columns
            assert [tuple(row) for row in entry["rows"]] \
                == reference_rows.rows

        # A write through the primary becomes visible to replica reads
        # on every worker (freshness gate + WAL tailing).
        before = primary.query("SELECT COUNT(*) FROM readings").rows
        write = cluster.request(
            "POST", "/api/v1/cluster/execute",
            {"sql": "INSERT INTO readings VALUES (999, 'new', 3)"})
        assert write.status == 200
        for _ in range(CLUSTER_WORKERS * 2):
            response = cluster.request(
                "POST", "/api/v1/cluster/sql",
                {"sql": "SELECT COUNT(*) FROM readings"})
            assert response.status == 200
            assert response.payload["rows"] == [[before[0][0] + 1]]

        stats = cluster.request("GET", "/api/v1/cluster/stats")
        assert stats.status == 200
        assert len(stats.payload["shards"]) == CLUSTER_WORKERS
        replicas = [entry["replica"]
                    for entry in stats.payload["shards"]]
        assert all(entry["generations"]["db"] == primary.generation
                   for entry in replicas)
    finally:
        cluster.close()
        manager.close()


@pytest.mark.stress
def test_multiprocess_user_listing_is_deterministic(tmp_path):
    primary, manager = _durable_primary(str(tmp_path))
    seed_readings(primary, 5)
    manager.sync()
    users = sorted(f"user-{index:02d}" for index in range(12))
    cluster = start_cluster(
        CLUSTER_WORKERS, "repro.cluster.testing:build_shard",
        builder_args={"directory": str(tmp_path)},
        primary=primary, durability=manager)
    try:
        for user in users:
            cluster.request("POST", "/api/v1/users", {"username": user})
        first = cluster.request("GET", "/api/v1/users",
                                {"limit": 100}).payload
        second = cluster.request("GET", "/api/v1/users",
                                 {"limit": 100}).payload
        assert first == second
        assert first["users"] == users
    finally:
        cluster.close()
        manager.close()
