"""Resource mapping (XML round trip) and the Semantic Query Module."""

import pytest

from repro.core import (MappingError, ResourceMapping, SemanticQueryModule,
                        StoredQueryRegistry, StoredQueryError)
from repro.rdf import IRI, Literal, Namespace, parse_turtle

SMG = Namespace("http://smartground.eu/ns#")

KB = parse_turtle("""
@prefix smg: <http://smartground.eu/ns#> .
smg:Mercury smg:dangerLevel "high" ; smg:isA smg:HazardousWaste .
smg:Asbestos smg:isA smg:HazardousWaste .
smg:Iron smg:dangerLevel "low" .
smg:Torino smg:inCountry smg:Italy .
smg:depth smg:threshold 4.5 .
""")


def test_to_term_default_iri_for_strings():
    mapping = ResourceMapping()
    assert mapping.to_term("elem_name", "Mercury") == SMG.Mercury


def test_to_term_literal_for_numbers():
    mapping = ResourceMapping()
    assert mapping.to_term("amount", 3.5) == Literal(3.5)


def test_explicit_literal_mapping():
    mapping = ResourceMapping()
    mapping.map_attribute("code", kind="literal")
    assert mapping.to_term("code", "X1") == Literal("X1")


def test_explicit_namespace_mapping():
    mapping = ResourceMapping()
    mapping.map_attribute("lab", kind="iri", namespace="http://lab.eu/")
    assert mapping.to_term("lab", "Chem") == IRI("http://lab.eu/Chem")


def test_to_sql_value_round_trips():
    mapping = ResourceMapping()
    assert mapping.to_sql_value(SMG.Mercury) == "Mercury"
    assert mapping.to_sql_value(Literal(4.5)) == 4.5
    assert mapping.to_sql_value(None) is None


def test_concept_and_property_expansion():
    mapping = ResourceMapping()
    assert mapping.concept_to_term("HazardousWaste") == SMG.HazardousWaste
    assert mapping.concept_to_term("rdfs:label").value.endswith("label")
    assert mapping.concept_to_term("http://x.org/C") == IRI("http://x.org/C")


def test_xml_round_trip():
    mapping = ResourceMapping("http://base.eu/ns#")
    mapping.map_attribute("elem_name", kind="iri")
    mapping.map_attribute("amount", kind="literal", datatype="real")
    xml = mapping.to_xml()
    again = ResourceMapping.from_xml(xml)
    assert again.default_namespace == "http://base.eu/ns#"
    assert again.attribute("elem_name").kind == "iri"
    assert again.attribute("amount").datatype == "real"


def test_xml_errors():
    with pytest.raises(MappingError):
        ResourceMapping.from_xml("<wrong/>")
    with pytest.raises(MappingError):
        ResourceMapping.from_xml("not xml at all <")
    with pytest.raises(MappingError):
        ResourceMapping.from_xml(
            "<resource-mapping><attribute/></resource-mapping>")


def test_bad_kind_rejected():
    mapping = ResourceMapping()
    with pytest.raises(MappingError):
        mapping.map_attribute("x", kind="nope")


# -- SQM -----------------------------------------------------------------------


def sqm(registry=None):
    return SemanticQueryModule(ResourceMapping(), registry)


def test_pairs_for_plain_property():
    extraction = sqm().pairs_for(KB, "dangerLevel")
    pairs = {(s.local_name(), o.value) for s, o in extraction.pairs}
    assert pairs == {("Mercury", "high"), ("Iron", "low")}
    assert "dangerLevel" in extraction.sparql


def test_pairs_for_missing_property_is_empty():
    assert sqm().pairs_for(KB, "noSuchProp").pairs == []


def test_subjects_for_concept():
    extraction = sqm().subjects_for(KB, "isA", "HazardousWaste")
    assert {s.local_name() for s in extraction.subjects} == {
        "Mercury", "Asbestos"}


def test_values_for_constant_via_property():
    extraction = sqm().values_for(KB, "inCountry", "Torino")
    assert [v.local_name() for v in extraction.values] == ["Italy"]


def test_values_for_stored_single_var_query():
    registry = StoredQueryRegistry()
    registry.register("dangerQuery", """
        PREFIX smg: <http://smartground.eu/ns#>
        SELECT ?e WHERE { ?e smg:isA smg:HazardousWaste }""")
    extraction = sqm(registry).values_for(KB, "dangerQuery", "Whatever")
    assert {v.local_name() for v in extraction.values} == {
        "Mercury", "Asbestos"}
    assert extraction.sparql == registry.get("dangerQuery").text


def test_pairs_for_stored_two_var_query():
    registry = StoredQueryRegistry()
    registry.register("levels", """
        PREFIX smg: <http://smartground.eu/ns#>
        SELECT ?s ?lvl WHERE { ?s smg:dangerLevel ?lvl }""")
    extraction = sqm(registry).pairs_for(KB, "levels")
    assert len(extraction.pairs) == 2


def test_pairs_for_stored_one_var_query_rejected():
    registry = StoredQueryRegistry()
    registry.register("only", """
        PREFIX smg: <http://smartground.eu/ns#>
        SELECT ?s WHERE { ?s smg:isA smg:HazardousWaste }""")
    with pytest.raises(StoredQueryError):
        sqm(registry).pairs_for(KB, "only")


def test_registry_validation():
    registry = StoredQueryRegistry()
    with pytest.raises(StoredQueryError):
        registry.register("bad", "not sparql at all")
    with pytest.raises(StoredQueryError):
        registry.register("ask", "ASK { ?s ?p ?o }")
    registry.register("ok", "SELECT ?s WHERE { ?s ?p ?o }")
    assert "ok" in registry
    registry.unregister("ok")
    assert "ok" not in registry
    with pytest.raises(StoredQueryError):
        registry.unregister("ok")
