"""The streaming execution surface: cursors end to end.

Covers the relational :class:`Cursor` protocol, lazy LIMIT early
termination, LIMIT/OFFSET validation, ``Database.stream``,
``Session.stream`` / ``PreparedQuery.stream`` with page-at-a-time
enrichment combination, and ``MediatorSession.stream``.
"""

from __future__ import annotations

import pytest

import repro
from repro.api import CursorTokenError, Page, decode_token, encode_token
from repro.api.cursor import (paginate_cursor, paginate_sequence,
                              request_signature)
from repro.rdf import parse_turtle
from repro.relational import Cursor, Database, ExecutionError, ResultSet

KB = """
@prefix smg: <http://smartground.eu/ns#> .
smg:Mercury smg:dangerLevel "high" .
smg:Lead smg:dangerLevel "medium" .
"""


@pytest.fixture
def elems_db() -> Database:
    db = Database()
    db.execute_script("""
        CREATE TABLE elem_contained (
            landfill_name TEXT, elem_name TEXT, amount REAL);
        INSERT INTO elem_contained VALUES
            ('a', 'Mercury', 12.0), ('a', 'Iron', 140.0),
            ('b', 'Lead', 7.0), ('b', 'Copper', 55.0);
    """)
    return db


# -- the Cursor protocol ------------------------------------------------------


def test_cursor_fetch_surface():
    cursor = Cursor(["x"], iter([(1,), (2,), (3,), (4,)]))
    assert cursor.columns == ["x"]
    assert cursor.fetchone() == (1,)
    assert cursor.fetchmany(2) == [(2,), (3,)]
    assert cursor.fetchall() == [(4,)]
    assert cursor.fetchone() is None
    assert cursor.closed


def test_cursor_is_iterable_and_context_manager():
    closed = []
    with Cursor(["x"], iter([(1,), (2,)]),
                on_close=lambda: closed.append(True)) as cursor:
        assert list(cursor) == [(1,), (2,)]
    assert closed == [True]          # exhaustion closed it exactly once
    assert cursor.fetchall() == []


def test_cursor_close_stops_generator():
    seen = []

    def rows():
        for i in range(100):
            seen.append(i)
            yield (i,)

    cursor = Cursor(["i"], rows())
    assert cursor.fetchone() == (0,)
    cursor.close()
    assert cursor.fetchone() is None
    assert seen == [0]


def test_resultset_from_cursor():
    cursor = Cursor(["a", "b"], iter([(1, 2), (3, 4)]))
    result = ResultSet.from_cursor(cursor)
    assert result.columns == ["a", "b"]
    assert result.rows == [(1, 2), (3, 4)]
    assert cursor.closed


# -- Database.stream ----------------------------------------------------------


def test_database_stream_matches_query(elems_db):
    sql = "SELECT elem_name, amount FROM elem_contained WHERE amount > 10"
    assert elems_db.stream(sql).fetchall() == elems_db.query(sql).rows


def test_database_stream_rejects_non_select(elems_db):
    with pytest.raises(ExecutionError):
        elems_db.stream("DELETE FROM elem_contained")


def test_stream_limit_terminates_early():
    """LIMIT stops pulling: a poisoned later row is never evaluated."""
    db = Database()
    db.execute_script("""
        CREATE TABLE t (id INTEGER, d INTEGER);
        INSERT INTO t VALUES (1, 1), (2, 1), (3, 0);
    """)
    sql = "SELECT id / d FROM t LIMIT 2"
    assert db.stream(sql).fetchall() == [(1,), (2,)]
    # The materialized path shares the lazy pipeline, so it stops
    # early too.
    assert db.query(sql).rows == [(1,), (2,)]
    with pytest.raises(ExecutionError):
        db.query("SELECT id / d FROM t")


def test_union_all_streams_lazily():
    db = Database()
    db.execute_script("""
        CREATE TABLE a (id INTEGER, d INTEGER);
        CREATE TABLE b (id INTEGER, d INTEGER);
        INSERT INTO a VALUES (1, 1);
        INSERT INTO b VALUES (2, 0);
    """)
    # The second UNION ALL operand (which would divide by zero) is
    # never started.
    sql = "SELECT id / d FROM a UNION ALL SELECT id / d FROM b LIMIT 1"
    assert db.query(sql).rows == [(1,)]


def test_stream_cursor_must_close_before_writing(elems_db):
    cursor = elems_db.stream("SELECT elem_name FROM elem_contained")
    assert cursor.fetchone() is not None
    # The open cursor holds the read lock; same-thread DML is refused
    # rather than deadlocking.
    with pytest.raises(RuntimeError):
        elems_db.execute("DELETE FROM elem_contained")
    cursor.close()
    assert elems_db.execute("DELETE FROM elem_contained") == 4


# -- LIMIT / OFFSET validation -------------------------------------------------


@pytest.mark.parametrize("sql", [
    "SELECT elem_name FROM elem_contained LIMIT -1",
    "SELECT elem_name FROM elem_contained LIMIT 'two'",
    "SELECT elem_name FROM elem_contained LIMIT 1.5",
    "SELECT elem_name FROM elem_contained LIMIT 2 OFFSET -3",
    "SELECT elem_name FROM elem_contained LIMIT 2 OFFSET 'x'",
])
def test_bad_limit_offset_raises_execution_error(elems_db, sql):
    with pytest.raises(ExecutionError) as excinfo:
        elems_db.query(sql)
    message = str(excinfo.value)
    assert "non-negative integer" in message
    # Both paths validate identically.
    with pytest.raises(ExecutionError):
        elems_db.stream(sql).fetchall()


def test_null_limit_means_unbounded(elems_db):
    assert len(elems_db.query(
        "SELECT elem_name FROM elem_contained LIMIT NULL").rows) == 4


def test_offset_without_limit_streams(elems_db):
    sql = "SELECT elem_name FROM elem_contained OFFSET 2"
    assert elems_db.stream(sql).fetchall() == elems_db.query(sql).rows
    assert len(elems_db.query(sql).rows) == 2


# -- Session / PreparedQuery streaming ----------------------------------------


def test_session_stream_plain_sql(elems_db):
    session = repro.connect(elems_db)
    cursor = session.stream(
        "SELECT elem_name FROM elem_contained WHERE amount > ?", [50.0])
    assert cursor.columns == ["elem_name"]
    assert sorted(cursor.fetchall()) == [("Copper",), ("Iron",)]


def test_session_stream_matches_query_with_enrichment(elems_db):
    kb = parse_turtle(KB)
    session = repro.connect(elems_db, knowledge_base=kb)
    sesql = ("SELECT elem_name, amount FROM elem_contained "
             "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")
    materialized = session.query(sesql)
    for page_size in (1, 2, 100):
        cursor = session.stream(sesql, page_size=page_size)
        assert cursor.columns == materialized.columns
        assert cursor.fetchall() == materialized.rows


def test_prepared_stream_binds_parameters(elems_db):
    kb = parse_turtle(KB)
    session = repro.connect(elems_db, knowledge_base=kb)
    prepared = session.prepare(
        "SELECT elem_name FROM elem_contained WHERE amount < ? "
        "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")
    low = prepared.stream([10.0]).fetchall()
    assert low == [("Lead", "medium")]
    high = prepared.stream([1000.0]).fetchall()
    assert len(high) == 4


def test_stream_where_enrichment_cleans_temp_tables(elems_db):
    kb = parse_turtle(KB)
    session = repro.connect(elems_db, knowledge_base=kb)
    sesql = ("SELECT landfill_name FROM elem_contained "
             "WHERE ${elem_name = Hazard:c1} "
             "ENRICH REPLACECONSTANT(c1, Hazard, dangerLevel)")
    cursor = session.stream(sesql)
    assert any(name.startswith("__sesql")
               for name in elems_db.table_names())
    cursor.close()                        # closed before any fetch
    assert not any(name.startswith("__sesql")
                   for name in elems_db.table_names())
    cursor = session.stream(sesql)
    cursor.fetchall()                     # drained to exhaustion
    assert not any(name.startswith("__sesql")
                   for name in elems_db.table_names())


def test_session_stream_limit_stops_early(elems_db):
    session = repro.connect(elems_db)
    cursor = session.stream(
        "SELECT elem_name FROM elem_contained LIMIT 2")
    assert len(cursor.fetchall()) == 2


def test_closed_session_refuses_stream(elems_db):
    session = repro.connect(elems_db)
    session.close()
    with pytest.raises(repro.api.SessionError):
        session.stream("SELECT elem_name FROM elem_contained")


# -- mediator streaming --------------------------------------------------------


def _make_mediator():
    from repro.federation import Mediator

    north = Database("north")
    south = Database("south")
    for db, rows in ((north, [("a", 10), ("b", 20)]),
                     (south, [("c", 30), ("d", 40)])):
        db.execute("CREATE TABLE sites (name TEXT, score INTEGER)")
        db.insert_rows("sites", ({"name": n, "score": s}
                                 for n, s in rows))
    mediator = Mediator()
    mediator.register_source("north", north)
    mediator.register_source("south", south)
    mediator.define_view("all_sites", [
        ("north", "SELECT name, score FROM sites"),
        ("south", "SELECT name, score FROM sites")])
    return mediator


def test_mediator_stream_matches_execute():
    mediator = _make_mediator()
    sql = "SELECT name, score FROM all_sites ORDER BY score"
    expected = mediator.connect().query(sql)
    session = mediator.connect()
    cursor, report = session.stream(sql)
    assert cursor.columns == expected.columns
    assert cursor.fetchall() == expected.rows
    assert report.view_rows == {"all_sites": 4}
    # The materialization is cached: a second stream ships nothing.
    cursor2, report2 = session.stream(sql)
    assert cursor2.fetchall() == expected.rows
    assert report2.sub_queries == []


def test_mediator_stream_ships_full_views_no_partials():
    """Streams never leave a partial (filtered) materialization behind:
    views ship unfiltered and are cached, so an interleaved query on
    the same session cannot collide with a pushed-down copy."""
    mediator = _make_mediator()
    session = mediator.connect()
    sql = "SELECT name FROM all_sites WHERE score > 15"
    cursor, report = session.stream(sql)
    assert report.pushed_filters == {}    # unlike execute(): no pushdown
    # Before the first stream is drained, another query on the same
    # session works off the cached full materialization.
    result, report2 = session.execute("SELECT name FROM all_sites")
    assert len(result.rows) == 4
    assert report2.sub_queries == []      # served from the cache
    assert sorted(cursor.fetchall()) == [("b",), ("c",), ("d",)]
    # execute() still pushes filters down on a fresh session.
    _result, report3 = mediator.connect().execute(sql)
    assert report3.pushed_filters


# -- pagination tokens ---------------------------------------------------------


def test_token_round_trip():
    token = encode_token({"offset": 7, "sig": "abc"})
    assert decode_token(token) == {"offset": 7, "sig": "abc"}


@pytest.mark.parametrize("bad", ["", "!!!", "deadbeef", None, 42])
def test_malformed_tokens_rejected(bad):
    with pytest.raises(CursorTokenError):
        decode_token(bad)


def test_paginate_sequence_walks_to_the_end():
    signature = request_signature("users")
    items = list(range(10))
    seen, token = [], None
    for _ in range(10):
        page = paginate_sequence(items, 3, token, signature)
        seen.extend(page.items)
        token = page.next_token
        if token is None:
            break
    assert seen == items


def test_paginate_sequence_rejects_foreign_token():
    token = paginate_sequence(
        list(range(10)), 3, None, request_signature("a")).next_token
    with pytest.raises(CursorTokenError):
        paginate_sequence(list(range(10)), 3, token,
                          request_signature("b"))


def test_paginate_cursor_lookahead():
    signature = request_signature("q")
    page = paginate_cursor(Cursor(["x"], iter([(i,) for i in range(5)])),
                           5, None, signature)
    assert isinstance(page, Page)
    assert len(page.items) == 5
    assert page.next_token is None        # exactly exhausted: no token
    page = paginate_cursor(Cursor(["x"], iter([(i,) for i in range(6)])),
                           5, None, signature)
    assert page.next_token is not None
