"""Shared fixtures: a small SmartGround-shaped database used across tests."""

from __future__ import annotations

import pytest

from repro.relational import Database


@pytest.fixture
def db() -> Database:
    """Empty database."""
    return Database()


@pytest.fixture
def landfill_db() -> Database:
    """The Fig. 3 fragment in miniature: landfills and contained elements."""
    database = Database()
    database.execute_script("""
        CREATE TABLE landfill (
            id INTEGER PRIMARY KEY,
            name TEXT NOT NULL UNIQUE,
            city TEXT,
            area REAL
        );
        CREATE TABLE elem_contained (
            landfill_name TEXT NOT NULL,
            elem_name TEXT NOT NULL,
            amount REAL
        );
        INSERT INTO landfill VALUES
            (1, 'a', 'Torino', 120.5),
            (2, 'b', 'Lyon', 80.0),
            (3, 'c', 'Torino', 45.25),
            (4, 'd', NULL, NULL);
        INSERT INTO elem_contained VALUES
            ('a', 'Mercury', 12.0),
            ('a', 'Asbestos', 3.5),
            ('a', 'Iron', 140.0),
            ('b', 'Mercury', 7.25),
            ('b', 'Copper', 55.0),
            ('c', 'Lead', 9.0),
            ('c', 'Iron', 220.0);
    """)
    return database
