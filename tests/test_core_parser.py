"""ENRICH-clause grammar (Fig. 5) and the SESQL splitter."""

import pytest

from repro.core import (BoolSchemaExtension, BoolSchemaReplacement,
                        ReplaceConstant, ReplaceVariable, SchemaExtension,
                        SchemaReplacement, SesqlSyntaxError,
                        parse_enrichments, parse_sesql, split_sesql)


def test_split_at_top_level_enrich():
    sql, enrich = split_sesql(
        "SELECT a FROM t WHERE x = 1 ENRICH SCHEMAEXTENSION(a, p)")
    assert sql.strip() == "SELECT a FROM t WHERE x = 1"
    assert enrich.strip() == "SCHEMAEXTENSION(a, p)"


def test_split_ignores_enrich_in_strings():
    sql, enrich = split_sesql("SELECT 'ENRICH' FROM t")
    assert enrich is None


def test_split_ignores_identifier_containing_enrich():
    sql, enrich = split_sesql("SELECT enrichment FROM t")
    assert enrich is None


def test_split_case_insensitive():
    _sql, enrich = split_sesql("SELECT a FROM t enrich SCHEMAEXTENSION(a,p)")
    assert enrich is not None


def test_parse_each_clause_type():
    parsed = parse_enrichments("""
        SCHEMAEXTENSION(elem_name, dangerLevel)
        SCHEMAREPLACEMENT(city, inCountry)
        BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)
        BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)
        REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)
        REPLACEVARIABLE(cond1, Elecond2.elem_name, oreAssemblage)
    """)
    assert [type(node) for node in parsed] == [
        SchemaExtension, SchemaReplacement, BoolSchemaExtension,
        BoolSchemaReplacement, ReplaceConstant, ReplaceVariable]


def test_spaced_spelling_accepted():
    parsed = parse_enrichments(
        "SCHEMA EXTENSION(a, p) SCHEMA REPLACEMENT(b, q)")
    assert isinstance(parsed[0], SchemaExtension)
    assert isinstance(parsed[1], SchemaReplacement)


def test_case_insensitive_clause_names():
    parsed = parse_enrichments("schemaextension(a, p)")
    assert isinstance(parsed[0], SchemaExtension)


def test_qualified_attr_preserved():
    parsed = parse_enrichments(
        "REPLACEVARIABLE(cond1, Elecond2.elem_name, oreAssemblage)")
    assert parsed[0].attr == "Elecond2.elem_name"


def test_quoted_string_arguments():
    parsed = parse_enrichments("SCHEMAEXTENSION('elem name', 'my prop')")
    assert parsed[0].attr == "elem name"
    assert parsed[0].prop == "my prop"


def test_replaceconstant_two_arg_form_infers_condition():
    parsed = parse_enrichments(
        "REPLACECONSTANT(HazardousWaste, dangerQuery)",
        known_conditions={"cond1"})
    assert parsed[0].cond == "cond1"
    assert parsed[0].constant == "HazardousWaste"


def test_replaceconstant_two_arg_form_ambiguous_rejected():
    with pytest.raises(SesqlSyntaxError):
        parse_enrichments("REPLACECONSTANT(X, p)",
                          known_conditions={"c1", "c2"})


def test_wrong_arity_rejected():
    with pytest.raises(SesqlSyntaxError):
        parse_enrichments("SCHEMAEXTENSION(a)")
    with pytest.raises(SesqlSyntaxError):
        parse_enrichments("BOOLSCHEMAEXTENSION(a, p)")


def test_unknown_clause_rejected():
    with pytest.raises(SesqlSyntaxError):
        parse_enrichments("FOO(a, b)")


def test_empty_enrich_clause_rejected():
    with pytest.raises(SesqlSyntaxError):
        parse_enrichments("   ")


def test_parse_sesql_full_query():
    enriched = parse_sesql("""
        SELECT elem_name FROM elem_contained
        WHERE ${elem_name = HazardousWaste:cond1}
        ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)""")
    assert len(enriched.enrichments) == 1
    assert "cond1" in enriched.conditions
    assert "${" not in enriched.sql_text


def test_parse_sesql_unknown_condition_reference():
    from repro.core import EnrichmentError
    with pytest.raises(EnrichmentError):
        parse_sesql("""
            SELECT a FROM t WHERE ${a = 1:c1}
            ENRICH REPLACECONSTANT(nope, X, p)""")


def test_parse_sesql_plain_sql_accepted():
    enriched = parse_sesql("SELECT a FROM t")
    assert enriched.enrichments == []


def test_parse_sesql_requires_select():
    with pytest.raises(SesqlSyntaxError):
        parse_sesql("DELETE FROM t ENRICH SCHEMAEXTENSION(a, p)")
