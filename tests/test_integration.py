"""End-to-end integration across every layer of the reproduction.

These tests chain the substrates the way the deployed system would:
federated sources -> mediator -> databank -> CroSSE platform -> REST,
with SESQL queries evaluated in evolving per-user contexts.
"""

import pytest

from repro.core import SESQLEngine
from repro.crosse import CrossePlatform
from repro.federation import (CrosseRestService, Mediator,
                              RemoteTableSource, attach_foreign_table)
from repro.rdf import SMG, parse_turtle, serialize_turtle
from repro.relational import Database
from repro.smartground import (DANGER_QUERY_SPARQL, SmartGroundConfig,
                               generate_databank)
from repro.sparql import SparqlEngine


def test_mediated_sources_feed_enriched_queries():
    """National sources -> GAV view -> SESQL enrichment on the result."""
    sources = {}
    mediator = Mediator()
    for country, materials in (("italy", ["Mercury", "Iron"]),
                               ("france", ["Asbestos"])):
        db = Database(country)
        db.execute("CREATE TABLE sites (site TEXT, material TEXT)")
        for index, material in enumerate(materials):
            db.execute(f"INSERT INTO sites VALUES "
                       f"('{country}_{index}', '{material}')")
        mediator.register_source(country, db)
        sources[country] = db
    mediator.define_view("eu_sites", [
        ("italy", "SELECT site, material FROM sites"),
        ("france", "SELECT site, material FROM sites")])
    view, _report = mediator.query("SELECT site, material FROM eu_sites")

    integrated = Database("integrated")
    integrated.execute("CREATE TABLE eu_sites (site TEXT, material TEXT)")
    for row in view.rows:
        integrated.table("eu_sites").insert_tuple(row)

    kb = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury smg:dangerLevel "high" .
        smg:Asbestos smg:dangerLevel "extreme" .
    """)
    outcome = SESQLEngine(integrated, kb).execute("""
        SELECT site, material FROM eu_sites
        ENRICH SCHEMAEXTENSION(material, dangerLevel)""")
    by_material = {row[1]: row[2] for row in outcome.rows}
    assert by_material == {"Mercury": "high", "Iron": None,
                           "Asbestos": "extreme"}


def test_foreign_table_participates_in_sesql():
    """A SESQL query whose FROM includes an fdw-attached remote table."""
    remote = Database("remote")
    remote.execute("CREATE TABLE hazards (elem TEXT, level TEXT)")
    remote.execute("INSERT INTO hazards VALUES ('Mercury', 'reported')")

    local = Database("local")
    local.execute("CREATE TABLE elem_contained "
                  "(landfill_name TEXT, elem_name TEXT)")
    local.execute("INSERT INTO elem_contained VALUES "
                  "('a', 'Mercury'), ('a', 'Iron')")
    attach_foreign_table(local, "remote_hazards",
                         RemoteTableSource(remote, "hazards"))

    kb = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury smg:dangerLevel "high" .
    """)
    outcome = SESQLEngine(local, kb).execute("""
        SELECT e.elem_name, r.level
        FROM elem_contained e JOIN remote_hazards r
          ON e.elem_name = r.elem
        ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)""")
    assert outcome.rows == [("Mercury", "reported", "high")]


def test_knowledge_lifecycle_changes_query_results():
    """Annotation -> acceptance -> retraction, observed through SESQL."""
    platform = CrossePlatform(
        generate_databank(SmartGroundConfig(n_landfills=10, seed=4)))
    platform.register_user("author")
    platform.register_user("reader")
    sesql = """SELECT DISTINCT elem_name FROM elem_contained
               ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)"""

    def flagged_count(user):
        outcome = platform.run_sesql(user, sesql)
        return sum(1 for row in outcome.rows if row[1])

    assert flagged_count("reader") == 0
    record = platform.annotate_free(
        "author", SMG.Iron, SMG.isA, SMG.HazardousWaste)
    assert flagged_count("reader") == 0          # not yet accepted
    platform.accept_statement("reader", record.statement_id)
    assert flagged_count("reader") == 1          # borrowed knowledge
    assert flagged_count("author") == 1          # own knowledge
    platform.statements.retract("author", record.statement_id)
    assert flagged_count("reader") == 0          # retraction propagates


def test_fig4_export_is_sparql_queryable():
    """The provenance graph itself answers SPARQL questions."""
    platform = CrossePlatform(
        generate_databank(SmartGroundConfig(n_landfills=5, seed=1)))
    platform.register_user("giulia")
    platform.register_user("marco")
    record = platform.annotate_free(
        "giulia", SMG.Mercury, SMG.dangerLevel, "high")
    platform.accept_statement("marco", record.statement_id)

    graph = platform.statements.to_rdf_graph()
    engine = SparqlEngine(graph)
    believers = engine.query("""
        PREFIX smg: <http://smartground.eu/ns#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?user WHERE {
            ?user smg:userBelief ?stm .
            ?stm rdf:subject smg:Mercury }""")
    assert [term.local_name() for term in believers.values("user")] == [
        "user_marco"]
    # The export also round-trips through Turtle.
    assert len(parse_turtle(serialize_turtle(graph))) == len(graph)


def test_rest_drives_the_full_social_loop():
    """User creation, annotation, acceptance and querying over REST."""
    service = CrosseRestService(CrossePlatform(
        generate_databank(SmartGroundConfig(n_landfills=8, seed=2))))
    for username in ("giulia", "marco"):
        assert service.request("POST", "/api/users",
                               {"username": username}).status == 200
    created = service.request("POST", "/api/annotations", {
        "username": "giulia", "subject": "Mercury",
        "property": "isA", "object": "HazardousWaste"})
    statement_id = created.payload["statement_id"]
    service.request("POST", f"/api/statements/{statement_id}/accept",
                    {"username": "marco"})
    response = service.request("POST", "/api/sesql", {
        "username": "marco",
        "query": """SELECT DISTINCT elem_name FROM elem_contained
                    ENRICH BOOLSCHEMAEXTENSION(elem_name, isA,
                                               HazardousWaste)"""})
    assert response.status == 200
    flags = {row[0]: row[1] for row in response.payload["rows"]}
    assert flags.get("Mercury", False) in (True, False)
    if "Mercury" in flags:
        assert flags["Mercury"] is True


def test_where_and_select_enrichments_compose_in_one_query():
    db = Database()
    db.execute_script("""
        CREATE TABLE elem_contained (landfill_name TEXT, elem_name TEXT);
        INSERT INTO elem_contained VALUES
            ('a','Mercury'), ('a','Iron'), ('b','Lead'), ('c','Copper');
    """)
    kb = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury smg:isA smg:HazardousWaste ;
                    smg:dangerLevel "high" .
        smg:Lead smg:isA smg:HazardousWaste ;
                 smg:dangerLevel "high" .
    """)
    engine = SESQLEngine(db, kb)
    # `^isA` is the inverse-path extension: "everything classified as
    # HazardousWaste" (a plain `isA` would read the constant as subject).
    outcome = engine.execute("""
        SELECT landfill_name, elem_name FROM elem_contained
        WHERE ${elem_name = HazardousWaste:c1}
        ENRICH
        REPLACECONSTANT(c1, HazardousWaste, ^isA)
        SCHEMAEXTENSION(elem_name, dangerLevel)""")
    assert sorted(outcome.rows) == [
        ("a", "Mercury", "high"), ("b", "Lead", "high")]
    # One SPARQL per enrichment, one final SQL for the SELECT strategy.
    assert len(outcome.sparql_queries) == 2
    assert len(outcome.final_sqls) == 1


def test_replace_constant_via_property_uses_constant_as_subject():
    """REPLACECONSTANT with a plain property: values of (const, prop, ?o)."""
    db = Database()
    db.execute_script("""
        CREATE TABLE landfill (name TEXT, city TEXT);
        INSERT INTO landfill VALUES
            ('a','Torino'), ('b','Milano'), ('c','Lyon');
    """)
    kb = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Piemonte smg:hasCity smg:Torino .
    """)
    outcome = SESQLEngine(db, kb).execute("""
        SELECT name FROM landfill
        WHERE ${city = Piemonte:c1}
        ENRICH REPLACECONSTANT(c1, Piemonte, hasCity)""")
    assert outcome.rows == [("a",)]
