"""Property-based vectorized/row-path equivalence.

Random tables (mixed column types, NULLs, deletes interleaved with the
inserts) crossed with random SELECT shapes: the vectorized executor
must return byte-identical results to a ``Database(vectorized=False)``
twin over the same data — same column headers, same rows, same order
for ORDER BY queries, same multiset otherwise.

NaN is deliberately excluded from the generated data: SQL comparison
semantics over NaN are pinned by the deterministic kernel tests, while
here float equality would make "byte-identical" ill-defined.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Database

int_values = st.one_of(st.none(), st.integers(-3, 6))
real_values = st.one_of(st.none(), st.integers(-2, 4).map(float),
                        st.just(0.5), st.just(-1.25))
text_values = st.one_of(st.none(), st.sampled_from(["a", "b", "ab", ""]))
bool_values = st.one_of(st.none(), st.booleans())

table_rows = st.lists(
    st.tuples(int_values, real_values, text_values, bool_values),
    min_size=0, max_size=25)
#: Which generated rows to delete again, interleaved with the inserts.
delete_mask = st.lists(st.booleans(), min_size=25, max_size=25)

int_literal = st.integers(-3, 6)
real_literal = st.sampled_from([-2.0, -1.25, 0.0, 0.5, 2.0, 4.0])
text_literal = st.sampled_from(["'a'", "'b'", "'ab'", "''"])

comparison_op = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def predicates(draw, depth: int = 2) -> str:
    if depth > 0 and draw(st.booleans()):
        left = draw(predicates(depth=depth - 1))
        right = draw(predicates(depth=depth - 1))
        combiner = draw(st.sampled_from(["AND", "OR"]))
        clause = f"({left} {combiner} {right})"
        return f"NOT {clause}" if draw(st.booleans()) else clause
    kind = draw(st.sampled_from(
        ["int-cmp", "real-cmp", "text-cmp", "bool", "null", "in",
         "between", "like", "col-col"]))
    if kind == "int-cmp":
        return f"i {draw(comparison_op)} {draw(int_literal)}"
    if kind == "real-cmp":
        return f"r {draw(comparison_op)} {draw(real_literal)}"
    if kind == "text-cmp":
        return f"t {draw(comparison_op)} {draw(text_literal)}"
    if kind == "bool":
        return draw(st.sampled_from(["b", "NOT b"]))
    if kind == "null":
        column = draw(st.sampled_from(["i", "r", "t", "b"]))
        form = draw(st.sampled_from(["IS NULL", "IS NOT NULL"]))
        return f"{column} {form}"
    if kind == "in":
        items = draw(st.lists(int_literal, min_size=1, max_size=3))
        negated = "NOT IN" if draw(st.booleans()) else "IN"
        return f"i {negated} ({', '.join(map(str, items))})"
    if kind == "between":
        low, high = draw(int_literal), draw(int_literal)
        negated = "NOT BETWEEN" if draw(st.booleans()) else "BETWEEN"
        return f"i {negated} {low} AND {high}"
    if kind == "like":
        pattern = draw(st.sampled_from(["'a%'", "'%b'", "'a_'", "'%'"]))
        negated = "NOT LIKE" if draw(st.booleans()) else "LIKE"
        return f"t {negated} {pattern}"
    return f"i {draw(comparison_op)} i"          # col-col


@st.composite
def select_queries(draw) -> tuple[str, bool]:
    """A random SELECT over table ``t``; returns (sql, ordered)."""
    shape = draw(st.sampled_from(["star", "project", "aggregate"]))
    where = f" WHERE {draw(predicates())}" \
        if draw(st.booleans()) else ""
    if shape == "aggregate":
        # GROUP BY output order is first-seen on both paths.
        return (f"SELECT t, COUNT(*), COUNT(i), SUM(i), AVG(r), "
                f"MIN(i), MAX(r) FROM t{where} GROUP BY t"), False
    items = "*" if shape == "star" else \
        ", ".join(draw(st.permutations(["i", "r", "t", "b"]))[:3])
    sql = f"SELECT {items} FROM t{where}"
    if draw(st.booleans()):
        direction = draw(st.sampled_from(["ASC", "DESC"]))
        sql += f" ORDER BY i {direction}, r {direction}"
        if draw(st.booleans()):
            sql += f" LIMIT {draw(st.integers(0, 10))}"
        return sql, True
    return sql, False


def build(vectorized: bool, rows, mask) -> Database:
    db = Database(vectorized=vectorized)
    db.execute("CREATE TABLE t (i INTEGER, r REAL, t TEXT, b BOOLEAN)")
    table = db.catalog.table("t")
    pending = []
    for position, row in enumerate(rows):
        row_id = table.insert_row(
            dict(zip(("i", "r", "t", "b"), row)))
        pending.append(row_id)
        # Interleave deletes with the inserts so the deleted bitmap
        # (and its batch-boundary handling) is exercised mid-build.
        if mask[position] and len(pending) > 1:
            victim = pending.pop(position % len(pending))
            table.delete_row(victim)
    return db


@given(rows=table_rows, mask=delete_mask, query=select_queries())
@settings(max_examples=120, deadline=None)
def test_vectorized_matches_row_path(rows, mask, query):
    sql, ordered = query
    vector_db = build(True, rows, mask)
    row_db = build(False, rows, mask)
    got = vector_db.query(sql)
    expected = row_db.query(sql)
    assert got.columns == expected.columns
    if ordered:
        assert got.rows == expected.rows
    else:
        assert Counter(got.rows) == Counter(expected.rows)
    # The two databases really took different paths.
    assert row_db.last_vectorized_ops == set()
