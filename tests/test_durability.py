"""Durability subsystem: WAL codec, snapshots, recovery, wiring.

Crash-point fault injection lives in ``test_durability_crash.py`` and
the hypothesis round-trips in ``test_durability_properties.py``; this
file covers the deterministic behaviour: frame encoding, options
validation, snapshot + WAL-tail recovery, corrupt-snapshot fallback,
retention, the satellite exclusions (ANALYZE, SESQL temp tables,
foreign-table remote fetches), per-store generation provenance, and the
``connect()`` / ``CrossePlatform`` wiring.
"""

from __future__ import annotations

import glob
import os

import pytest

import repro
from repro.api import SessionError
from repro.core import SESQLEngine
from repro.crosse import CrossePlatform
from repro.durability import (DurabilityError, DurabilityManager,
                              DurabilityOptions, SnapshotError,
                              database_state, encode_frame, iter_frames,
                              read_frames, state_digest, store_state)
from repro.durability.snapshot import load_snapshot_file
from repro.durability.wal import WAL_HEADER_COMPONENT
from repro.federation import Mediator
from repro.federation.foreign import (CallableSource, CsvSource,
                                      QuerySource, attach_foreign_table)
from repro.rdf import IRI, Literal, Namespace, TripleStore, parse_turtle
from repro.relational import Database
from repro.relational.schema import Column, DataType

SMG = Namespace("http://smartground.eu/ns#")


def populate(db: Database) -> None:
    db.execute_script("""
        CREATE TABLE landfill (
            id INTEGER PRIMARY KEY, name TEXT NOT NULL, area REAL);
        CREATE TABLE elem_contained (
            landfill_name TEXT, elem_name TEXT, amount REAL);
        INSERT INTO landfill VALUES (1, 'a', 120.5), (2, 'b', NULL);
        INSERT INTO elem_contained VALUES
            ('a', 'Mercury', 12.0), ('b', 'Iron', 140.0);
    """)


def populate_store(store: TripleStore) -> None:
    store.add(SMG.Mercury, SMG.dangerLevel, Literal("high"))
    store.add(SMG.Iron, SMG.dangerLevel, Literal("low"))


def fresh_manager(directory: str, **overrides) -> tuple[
        DurabilityManager, Database, TripleStore]:
    options = DurabilityOptions(directory=directory, fsync="never",
                                **overrides)
    manager = DurabilityManager(options)
    db = Database()
    store = TripleStore()
    manager.attach_database(db, name="main")
    manager.attach_store(store, name="kb")
    return manager, db, store


def digests(db: Database, store: TripleStore) -> tuple[str, str]:
    return (state_digest(database_state(db)),
            state_digest(store_state(store)))


# -- WAL frame codec ---------------------------------------------------------


def test_frame_codec_round_trips():
    payloads = [{"c": "db:main", "q": i, "g": i, "t": "sql",
                 "d": {"sql": f"INSERT -- {i}"}} for i in range(5)]
    data = b"".join(encode_frame(p) for p in payloads)
    decoded = [payload for payload, _end in iter_frames(data)]
    assert decoded == payloads


def test_frame_codec_preserves_rdf_terms():
    payload = {"c": "store:kb", "q": 1, "g": 1, "t": "add",
               "d": {"triple": [SMG.Mercury,
                                Literal("hg", lang="en"),
                                Literal(3, datatype=str(SMG.level))]}}
    (decoded, _end), = iter_frames(encode_frame(payload))
    subject, lang_lit, typed_lit = decoded["d"]["triple"]
    assert subject == SMG.Mercury
    assert lang_lit == Literal("hg", lang="en")
    assert typed_lit == Literal(3, datatype=str(SMG.level))


def test_iter_frames_stops_at_torn_tail():
    good = encode_frame({"c": "x", "q": 1})
    torn = encode_frame({"c": "x", "q": 2})[:-3]
    frames = list(iter_frames(good + torn))
    assert [p["q"] for p, _ in frames] == [1]
    assert frames[-1][1] == len(good)


def test_iter_frames_stops_at_corrupt_checksum():
    first = encode_frame({"c": "x", "q": 1})
    second = bytearray(encode_frame({"c": "x", "q": 2}))
    second[-1] ^= 0xFF  # flip a payload byte: CRC mismatch
    frames = list(iter_frames(first + bytes(second)))
    assert [p["q"] for p, _ in frames] == [1]


def test_read_frames_reports_valid_end(tmp_path):
    path = str(tmp_path / "seg.log")
    good = encode_frame({"c": "x", "q": 1})
    with open(path, "wb") as handle:
        handle.write(good + b"\x00\x00\x00")
    frames, valid_end, size = read_frames(path)
    assert len(frames) == 1
    assert valid_end == len(good)
    assert size == len(good) + 3


# -- options -----------------------------------------------------------------


def test_options_validation(tmp_path):
    directory = str(tmp_path)
    with pytest.raises(DurabilityError):
        DurabilityOptions(directory=directory, fsync="sometimes")
    with pytest.raises(DurabilityError):
        DurabilityOptions(directory=directory, group_commit_records=0)
    with pytest.raises(DurabilityError):
        DurabilityOptions(directory=directory, keep_epochs=0)
    with pytest.raises(DurabilityError):
        DurabilityOptions(directory=directory, snapshot_every=-1)
    base = DurabilityOptions(directory=directory)
    assert base.replace(fsync="always").fsync == "always"
    assert base.fsync == "batch"  # replace() leaves the original alone


# -- basic recovery ----------------------------------------------------------


def test_wal_only_recovery_round_trips(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, store = fresh_manager(directory)
    manager.recover()
    populate(db)
    populate_store(store)
    db.execute("UPDATE landfill SET area = 99.0 WHERE id = 2")
    store.remove(SMG.Iron, SMG.dangerLevel, Literal("low"))
    expected = digests(db, store)
    expected_gens = (db.generation, store.generation)
    manager.close()

    manager2, db2, store2 = fresh_manager(directory)
    report = manager2.recover()
    assert report.snapshot_epoch is None
    assert report.frames_applied > 0
    assert report.replay_errors == 0
    assert digests(db2, store2) == expected
    assert (db2.generation, store2.generation) == expected_gens
    manager2.close()


def test_snapshot_plus_tail_recovery(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, store = fresh_manager(directory)
    manager.recover()
    populate(db)
    manager.snapshot()
    populate_store(store)  # tail records, past the snapshot cut
    db.execute("DELETE FROM elem_contained WHERE elem_name = 'Iron'")
    expected = digests(db, store)
    manager.close()

    manager2, db2, store2 = fresh_manager(directory)
    report = manager2.recover()
    assert report.snapshot_epoch == 1
    # Only the post-snapshot tail replays; the bulk rides the snapshot.
    assert 0 < report.frames_applied <= 4
    assert digests(db2, store2) == expected
    manager2.close()


def test_corrupt_latest_snapshot_falls_back(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, store = fresh_manager(directory)
    manager.recover()
    populate(db)
    manager.snapshot()
    populate_store(store)
    manager.snapshot()
    db.execute("INSERT INTO elem_contained VALUES ('b', 'Lead', 3.0)")
    expected = digests(db, store)
    manager.close()

    snap2 = os.path.join(directory, "snap-000002.snap")
    with open(snap2, "r+b") as handle:
        handle.seek(40)
        handle.write(b"\xff\xff\xff\xff")  # corrupt the body

    manager2, db2, store2 = fresh_manager(directory)
    report = manager2.recover()
    assert report.snapshot_epoch == 1  # fell back one epoch
    assert any("snap-000002" in warning for warning in report.warnings)
    assert digests(db2, store2) == expected
    # The next snapshot must not collide with the corrupt epoch 2.
    path = manager2.snapshot()
    assert path.endswith("snap-000003.snap")
    manager2.close()


def test_all_snapshots_corrupt_is_an_error(tmp_path):
    path = str(tmp_path / "snap-000001.snap")
    with open(path, "wb") as handle:
        handle.write(b"not a snapshot at all\n")
    with pytest.raises(SnapshotError):
        load_snapshot_file(path)


def test_recover_requires_empty_components_over_prior_state(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, _store = fresh_manager(directory)
    manager.recover()
    populate(db)
    manager.close()

    manager2, db2, _store2 = fresh_manager(directory)
    db2.execute("CREATE TABLE already_here (x INTEGER)")
    with pytest.raises(DurabilityError):
        manager2.recover()


def test_fresh_directory_over_populated_stack_snapshots_baseline(tmp_path):
    directory = str(tmp_path / "dur")
    db = Database()
    store = TripleStore()
    populate(db)
    populate_store(store)
    gens = (db.generation, store.generation)
    manager = DurabilityManager(
        DurabilityOptions(directory=directory, fsync="never"))
    manager.attach_database(db, name="main")
    manager.attach_store(store, name="kb")
    report = manager.recover()
    assert report.initial_snapshot
    assert os.path.exists(os.path.join(directory, "snap-000001.snap"))
    # Arming durability must not reset live generation counters.
    assert (db.generation, store.generation) == gens
    expected = digests(db, store)
    manager.close()

    manager2, db2, store2 = fresh_manager(directory)
    manager2.recover()
    assert digests(db2, store2) == expected
    assert (db2.generation, store2.generation) == gens
    manager2.close()


def test_retention_prunes_old_epochs(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, _store = fresh_manager(directory, keep_epochs=1)
    manager.recover()
    populate(db)
    for n in range(3):
        db.execute(f"INSERT INTO landfill VALUES ({10 + n}, 'x', 1.0)")
        manager.snapshot()
    manager.close()
    snaps = sorted(os.path.basename(p)
                   for p in glob.glob(os.path.join(directory, "snap-*")))
    wals = sorted(os.path.basename(p)
                  for p in glob.glob(os.path.join(directory, "wal-*")))
    assert snaps == ["snap-000003.snap"]
    assert wals == ["wal-000002.log", "wal-000003.log"]
    manager2, db2, _ = fresh_manager(directory)
    manager2.recover()
    assert db2.query("SELECT COUNT(*) FROM landfill").rows[0][0] == 5
    manager2.close()


def test_snapshot_before_recover_is_rejected(tmp_path):
    manager, _db, _store = fresh_manager(str(tmp_path / "dur"))
    with pytest.raises(DurabilityError):
        manager.snapshot()


def test_attach_after_recover_is_rejected(tmp_path):
    manager, _db, _store = fresh_manager(str(tmp_path / "dur"))
    manager.recover()
    with pytest.raises(DurabilityError):
        manager.attach_database(Database(), name="late")
    manager.close()


def test_auto_snapshot_thread_compacts(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, _store = fresh_manager(directory, snapshot_every=5)
    manager.recover()
    populate(db)
    for n in range(20):
        db.execute(f"INSERT INTO elem_contained VALUES ('a', 'E{n}', 1.0)")
    for _ in range(100):
        if glob.glob(os.path.join(directory, "snap-*")):
            break
        import time
        time.sleep(0.05)
    manager.close()
    assert glob.glob(os.path.join(directory, "snap-*"))
    assert not manager.snapshot_errors
    manager2, db2, _ = fresh_manager(directory)
    manager2.recover()
    assert database_state(db2) == database_state(db)
    manager2.close()


# -- satellite: non-durable mutations stay out of the WAL --------------------


def wal_frames(directory: str) -> list[dict]:
    frames: list[dict] = []
    for path in sorted(glob.glob(os.path.join(directory, "wal-*.log"))):
        frames.extend(read_frames(path)[0])
    return [f for f in frames if f["c"] != WAL_HEADER_COMPONENT]


def test_analyze_is_not_journaled(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, _store = fresh_manager(directory)
    manager.recover()
    populate(db)
    manager.sync()
    before = len(wal_frames(directory))
    seq_before = db.durability_journal.seq
    db.analyze()
    db.execute("ANALYZE landfill")
    assert db.durability_journal.seq == seq_before
    manager.sync()
    assert len(wal_frames(directory)) == before
    manager.close()


def test_temp_tables_are_never_journaled_or_snapshotted(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, _store = fresh_manager(directory)
    manager.recover()
    populate(db)
    seq_before = db.durability_journal.seq
    db.create_temp_table("__sesql_scratch_1",
                         [Column("elem_name", DataType.TEXT)])
    assert db.durability_journal.seq == seq_before
    path = manager.snapshot()
    payload = load_snapshot_file(path)
    names = [t["name"] for t in payload["components"]["db:main"]["tables"]]
    assert "__sesql_scratch_1" not in names
    db.drop_temp_table("__sesql_scratch_1")
    assert db.durability_journal.seq == seq_before
    manager.close()

    manager2, db2, _ = fresh_manager(directory)
    manager2.recover()
    assert "__sesql_scratch_1" not in db2.table_names()
    manager2.close()


def test_sesql_enrichment_leaves_no_wal_records(tmp_path):
    directory = str(tmp_path / "dur")
    db = Database()
    populate(db)
    kb = parse_turtle("""
        @prefix smg: <http://smartground.eu/ns#> .
        smg:Mercury smg:dangerLevel "high" .
        smg:Iron smg:dangerLevel "low" .
    """)
    session = repro.connect(
        db, knowledge_base=kb,
        durability=DurabilityOptions(directory=directory, fsync="never"))
    frames_before = len(wal_frames(directory))
    outcome = session.query(
        "SELECT elem_name FROM elem_contained WHERE amount > 5 "
        "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")
    assert len(outcome.rows) == 2
    session.durability.sync()
    # The WHERE rewrite injects (and drops) temp tables; a read query
    # must add nothing to durable history.
    assert len(wal_frames(directory)) == frames_before
    session.close()


def test_foreign_csv_reattaches_from_descriptor(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, _store = fresh_manager(directory)
    manager.recover()
    source = CsvSource("elem,level\nMercury,4\nIron,1\n", "levels")
    attach_foreign_table(db, "levels", source, mode="live")
    expected = db.query("SELECT elem, level FROM levels ORDER BY elem").rows
    manager.close()

    manager2, db2, _ = fresh_manager(directory)
    manager2.recover()  # no foreign_sources: CSV is self-contained
    got = db2.query("SELECT elem, level FROM levels ORDER BY elem").rows
    assert got == expected
    manager2.close()


def test_foreign_recovery_never_replays_remote_fetch(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, _store = fresh_manager(directory)
    manager.recover()
    remote = Database("remote")
    remote.execute_script("""
        CREATE TABLE measurements (site TEXT, value REAL);
        INSERT INTO measurements VALUES ('a', 1.5), ('b', 2.5);
    """)
    source = QuerySource(remote, "SELECT site, value FROM measurements",
                         name="remote_view")
    attach_foreign_table(db, "remote_view", source, mode="live")
    expected = db.query("SELECT site, value FROM remote_view").rows
    manager.close()

    fetches = []

    def supplier():
        fetches.append(1)
        return [("a", 1.5), ("b", 2.5)]

    replacement = CallableSource(source.schema(), supplier)
    manager2, db2, _ = fresh_manager(directory)
    manager2.recover(foreign_sources={"remote_view": replacement})
    # Re-attachment restores the handle without touching the remote ...
    assert fetches == []
    # ... and the first query after recovery is a live fetch again.
    assert db2.query("SELECT site, value FROM remote_view").rows == expected
    assert fetches == [1]
    manager2.close()


def test_foreign_recovery_without_resolver_is_reported(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, _store = fresh_manager(directory)
    manager.recover()
    remote = Database("remote")
    remote.execute("CREATE TABLE t (x INTEGER)")
    attach_foreign_table(
        db, "remote_t",
        QuerySource(remote, "SELECT x FROM t", name="remote_t"))
    manager.close()

    manager2, db2, _ = fresh_manager(directory)
    report = manager2.recover()  # identity-only descriptor, no resolver
    assert report.replay_errors == 1
    assert any("remote_t" in warning for warning in report.warnings)
    assert "remote_t" not in db2.table_names()
    manager2.close()


# -- satellite: generation provenance ----------------------------------------


def test_store_generations_are_per_store_not_global():
    first = TripleStore()
    second = TripleStore()
    populate_store(first)
    assert first.generation > 0
    assert second.generation == 0
    second.add(SMG.Lead, SMG.dangerLevel, Literal("high"))
    assert second.generation == 1
    assert first.store_id != second.store_id


def test_recovered_generations_match_exactly(tmp_path):
    directory = str(tmp_path / "dur")
    manager, db, store = fresh_manager(directory)
    other = TripleStore()
    manager.attach_store(other, name="annotations")
    manager.recover()
    populate(db)
    populate_store(store)
    other.add(IRI("urn:a"), IRI("urn:b"), Literal(1))
    manager.snapshot()
    db.execute("INSERT INTO landfill VALUES (7, 'g', 4.0)")
    store.add(SMG.Lead, SMG.dangerLevel, Literal("high"))
    expected = {"db": db.generation, "kb": store.generation,
                "annotations": other.generation}
    manager.close()

    manager2, db2, store2 = fresh_manager(directory)
    other2 = TripleStore()
    manager2.attach_store(other2, name="annotations")
    report = manager2.recover()
    got = {"db": db2.generation, "kb": store2.generation,
           "annotations": other2.generation}
    assert got == expected  # exact, not merely >=
    assert report.components["db:main"]["generation"] == expected["db"]
    assert report.components["store:annotations"]["generation"] \
        == expected["annotations"]
    # Post-recovery mutations keep moving forward monotonically.
    db2.execute("INSERT INTO landfill VALUES (8, 'h', 5.0)")
    assert db2.generation == expected["db"] + 1
    manager2.close()


def test_generation_restored_from_wal_header_after_quiet_epoch(tmp_path):
    # A snapshot rotation writes a header carrying each component's
    # generation; a component with *no* tail records must still come
    # back at its pre-crash generation via that header floor.
    directory = str(tmp_path / "dur")
    manager, db, store = fresh_manager(directory)
    manager.recover()
    populate(db)
    populate_store(store)
    manager.snapshot()
    gen_db, gen_store = db.generation, store.generation
    manager.close()

    # Simulate losing the snapshot (but not the WAL chain).
    for path in glob.glob(os.path.join(directory, "snap-*")):
        os.remove(path)
    manager2, db2, store2 = fresh_manager(directory)
    manager2.recover()
    assert (db2.generation, store2.generation) == (gen_db, gen_store)
    manager2.close()


# -- wiring: connect() and the platform --------------------------------------


def test_connect_durability_round_trip(tmp_path):
    directory = str(tmp_path / "dur")
    db = Database()
    kb = TripleStore()
    session = repro.connect(
        db, knowledge_base=kb,
        durability=DurabilityOptions(directory=directory, fsync="never"))
    assert isinstance(session.durability, DurabilityManager)
    populate(db)
    populate_store(kb)
    expected = digests(db, kb)
    session.close()

    db2, kb2 = Database(), TripleStore()
    session2 = repro.connect(db2, knowledge_base=kb2, durability=directory)
    assert digests(db2, kb2) == expected
    session2.close()


def test_connect_rejects_durability_for_engine_platform_mediator(tmp_path):
    directory = str(tmp_path / "dur")
    db = Database()
    populate(db)
    with pytest.raises(SessionError):
        repro.connect(SESQLEngine(db, TripleStore()), durability=directory)
    with pytest.raises(SessionError):
        repro.connect(CrossePlatform(Database()), durability=directory)
    with pytest.raises(SessionError):
        repro.connect(Mediator(), durability=directory)


def test_platform_constructor_durability_round_trip(tmp_path):
    directory = str(tmp_path / "dur")
    db = Database()
    populate(db)
    options = DurabilityOptions(directory=directory, fsync="never")
    platform = CrossePlatform(db, durability=options)
    platform.register_user("giulia", "Giulia", "polito",
                           ["mining", "landfills"])
    platform.register_user("dirk", "Dirk", "tu-berlin", ["recycling"])
    statement = platform.annotate_free(
        "giulia", SMG.Mercury, SMG.dangerLevel, Literal("high"))
    platform.accept_statement("dirk", statement.statement_id)
    platform.add_document("d1", "Survey", "heavy metals in landfills",
                          ["mercury"])
    platform.register_stored_query(
        "danger", "SELECT ?s WHERE { ?s smg:dangerLevel ?o }", "giulia")
    from repro.durability import platform_state
    expected = state_digest(platform_state(platform))
    platform.durability.close()

    db2 = Database()
    platform2 = CrossePlatform(db2, durability=options)
    assert state_digest(platform_state(platform2)) == expected
    assert db2.query("SELECT COUNT(*) FROM landfill").rows[0][0] == 2
    assert sorted(u.username for u in platform2.users.users()) \
        == ["dirk", "giulia"]
    record = platform2.statements.get(statement.statement_id)
    assert "dirk" in record.accepted_by
    platform2.durability.close()


def test_session_close_closes_owned_manager(tmp_path):
    directory = str(tmp_path / "dur")
    db = Database()
    session = repro.connect(db, durability=directory)
    manager = session.durability
    session.close()
    assert manager._closed
    with pytest.raises(DurabilityError):
        manager.snapshot()
