"""The examples/ scripts must stay runnable (regression guard).

Each example's ``main()`` is imported and executed with stdout captured;
these tests assert the narrative landmarks each script promises.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "dangerLevel" in out
    assert "NULL" in out                     # Iron has no knowledge
    assert "LEFT JOIN" in out                # the final SQL is shown


def test_pollution_personas(capsys):
    out = run_example("pollution_personas", capsys)
    assert "Researcher's view" in out
    assert "City planner's view" in out
    # Both personas produce a hazard table.
    assert out.count("hazardous_materials") == 2


def test_crowdsourced_knowledge(capsys):
    out = run_example("crowdsourced_knowledge", capsys)
    assert "Marco accepts" in out
    assert "Peers recommended to Giulia" in out
    assert "eva" in out
    assert "**Mercury**" in out              # highlighted snippet


def test_session_api(capsys):
    out = run_example("session_api", capsys)
    assert "The plan:" in out
    assert "extract" in out                  # explain shows SQM stages
    assert "Second run extraction cache hits: 1" in out
    assert "warm run shipped 0" in out       # mediator reuse


def test_streaming_api(capsys):
    out = run_example("streaming_api", capsys)
    assert "Streaming cursor columns" in out
    assert "dangerLevel" in out
    assert "page 2 (limit 5):" in out                # token round-trip
    assert "Batch statuses: [200, 200]" in out
    assert "405" in out                              # structured errors


def test_telemetry(capsys):
    out = run_example("telemetry", capsys)
    assert "One span tree" in out
    assert "sesql.query" in out
    assert out.count("federation.fragment") == 2     # one per source
    assert "# TYPE" in out                           # Prometheus render
    assert "Slow-query log captured q-" in out
    assert "/api/v1/traces/" in out and "-> 200" in out


def test_federated_databanks(capsys):
    out = run_example("federated_databanks", capsys)
    assert "Mediated EU-wide rollup" in out
    assert "rows per source" in out
    assert "Contextually-enriched view" in out
    assert "Italy" in out                    # SCHEMAREPLACEMENT fired


@pytest.mark.parametrize("name", [
    "quickstart", "pollution_personas", "crowdsourced_knowledge",
    "federated_databanks", "session_api", "streaming_api", "telemetry"])
def test_examples_exist_and_document_themselves(name):
    source = (EXAMPLES_DIR / f"{name}.py").read_text(encoding="utf-8")
    assert source.startswith('"""')          # every example has a docstring
    assert "def main()" in source
