"""Tokenizer behaviour: literals, comments, operators, error positions."""

import pytest

from repro.relational import SqlSyntaxError
from repro.relational.lexer import tokenize


def kinds(sql):
    return [(token.type, token.value) for token in tokenize(sql)[:-1]]


def test_keywords_case_insensitive():
    assert kinds("select SELECT SeLeCt") == [
        ("KEYWORD", "SELECT")] * 3


def test_identifiers_preserve_case():
    assert kinds("Landfill elem_name") == [
        ("IDENT", "Landfill"), ("IDENT", "elem_name")]


def test_quoted_identifier_with_spaces_and_escapes():
    assert kinds('"week day" "a""b"') == [
        ("IDENT", "week day"), ("IDENT", 'a"b')]


def test_string_literal_with_escaped_quote():
    assert kinds("'it''s'") == [("STRING", "it's")]


def test_unterminated_string_raises_with_position():
    with pytest.raises(SqlSyntaxError):
        tokenize("SELECT 'oops")


def test_integer_and_float_literals():
    assert kinds("1 2.5 .5 1e3 2E-2") == [
        ("NUMBER", 1), ("NUMBER", 2.5), ("NUMBER", 0.5),
        ("NUMBER", 1000.0), ("NUMBER", 0.02)]


def test_number_followed_by_dot_star_stays_separate():
    values = [token.value for token in tokenize("t1.*")[:-1]]
    assert values == ["t1", ".", "*"]


def test_operators_longest_match():
    assert kinds("<= >= <> != ||") == [
        ("OP", "<="), ("OP", ">="), ("OP", "<>"), ("OP", "<>"), ("OP", "||")]


def test_line_comment_skipped():
    assert kinds("SELECT -- comment here\n 1") == [
        ("KEYWORD", "SELECT"), ("NUMBER", 1)]


def test_block_comment_skipped():
    assert kinds("SELECT /* multi\nline */ 1") == [
        ("KEYWORD", "SELECT"), ("NUMBER", 1)]


def test_unterminated_block_comment_raises():
    with pytest.raises(SqlSyntaxError):
        tokenize("SELECT /* oops")


def test_unexpected_character_raises():
    with pytest.raises(SqlSyntaxError):
        tokenize("SELECT @")


def test_line_and_column_tracking():
    tokens = tokenize("SELECT\n  name")
    assert tokens[0].line == 1
    assert tokens[1].line == 2
    assert tokens[1].column == 3


def test_eof_token_terminates_stream():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type == "EOF"
