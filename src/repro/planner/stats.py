"""The statistics catalog: per-table and per-column summaries.

``StatisticsCatalog.analyze`` scans a table once and records, per
column: non-NULL count, NULL count, number of distinct values, min/max
and (for numeric columns) an equi-width histogram.  The catalog is
maintained *incrementally* on DML routed through the Database facade:
inserts update counts, min/max and histogram buckets in place; deletes
and updates decay the counters.  Live table cardinality is always read
from the heap itself (``len(table)`` is exact and free), so estimates
degrade gracefully between ``ANALYZE`` runs instead of going stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

_NUMERIC = (int, float)


def _is_number(value: Any) -> bool:
    return isinstance(value, _NUMERIC) and not isinstance(value, bool)


@dataclass
class Histogram:
    """Equi-width bucket counts over a numeric column's [low, high]."""

    low: float
    high: float
    counts: list[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def _bucket_of(self, value: float) -> int:
        if self.high == self.low:
            return 0
        position = (value - self.low) / (self.high - self.low)
        return min(int(position * len(self.counts)), len(self.counts) - 1)

    def add(self, value: float) -> None:
        """Incremental maintenance: count an inserted in-range value."""
        if self.low <= value <= self.high:
            self.counts[self._bucket_of(value)] += 1

    def fraction_below(self, value: float, inclusive: bool) -> float:
        """Estimated fraction of values ``< value`` (or ``<=``)."""
        if self.total == 0:
            return 0.5
        if value < self.low:
            return 0.0
        if value >= self.high:
            return 1.0
        width = (self.high - self.low) / len(self.counts)
        bucket = self._bucket_of(value)
        below = sum(self.counts[:bucket])
        # Linear interpolation inside the bucket.
        bucket_start = self.low + bucket * width
        partial = ((value - bucket_start) / width) if width else 0.0
        below += self.counts[bucket] * min(max(partial, 0.0), 1.0)
        fraction = below / self.total
        if inclusive and self.total:
            fraction = min(fraction + 1.0 / self.total, 1.0)
        return fraction

    def fraction_equal(self, value: float) -> float | None:
        """Estimated fraction of values equal to ``value`` (bucket/width)."""
        if self.total == 0:
            return None
        if value < self.low or value > self.high:
            return 0.0
        return self.counts[self._bucket_of(value)] / self.total


@dataclass
class ColumnStats:
    """Summary of one column at ANALYZE time (plus incremental deltas)."""

    name: str
    non_null: int = 0
    null_count: int = 0
    distinct: int = 0
    min_value: Any = None
    max_value: Any = None
    histogram: Histogram | None = None

    @property
    def null_fraction(self) -> float:
        total = self.non_null + self.null_count
        return (self.null_count / total) if total else 0.0

    def note_value(self, value: Any) -> None:
        """Fold one inserted value into the summary (distinct is left
        as analyzed: it can only be re-counted by a full scan)."""
        if value is None:
            self.null_count += 1
            return
        self.non_null += 1
        if _is_number(value):
            if self.min_value is None or (_is_number(self.min_value)
                                          and value < self.min_value):
                self.min_value = value
            if self.max_value is None or (_is_number(self.max_value)
                                          and value > self.max_value):
                self.max_value = value
            if self.histogram is not None:
                self.histogram.add(float(value))
        elif isinstance(value, str) and isinstance(self.min_value, str):
            self.min_value = min(self.min_value, value)
            self.max_value = max(self.max_value, value)


@dataclass
class TableStats:
    """Everything the estimator knows about one table."""

    table_name: str
    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())


class StatisticsCatalog:
    """Registry of :class:`TableStats`, keyed by lower-cased table name."""

    def __init__(self) -> None:
        self._stats: dict[str, TableStats] = {}

    def __contains__(self, table_name: str) -> bool:
        return table_name.lower() in self._stats

    def get(self, table_name: str) -> TableStats | None:
        return self._stats.get(table_name.lower())

    def table_names(self) -> list[str]:
        return sorted(stats.table_name for stats in self._stats.values())

    def forget(self, table_name: str) -> None:
        self._stats.pop(table_name.lower(), None)

    def clear(self) -> None:
        self._stats.clear()

    # -- collection ---------------------------------------------------------

    def analyze(self, table, buckets: int = 32) -> TableStats:
        """Scan *table* (anything with ``schema`` and ``rows()``) once.

        Columnar tables expose ``column_values``; reading each column
        slice directly skips materializing row tuples entirely.
        """
        schema = table.schema
        column_values = getattr(table, "column_values", None)
        if column_values is not None:
            stats = TableStats(schema.name, row_count=len(table))
            values_of = column_values
        else:
            rows = list(table.rows())
            stats = TableStats(schema.name, row_count=len(rows))

            def values_of(position):
                return [row[position] for row in rows]

        for position, column in enumerate(schema.columns):
            stats.columns[column.name.lower()] = _summarize(
                column.name, values_of(position), buckets)
        self._stats[schema.name.lower()] = stats
        return stats

    def analyze_all(self, tables: Iterable, buckets: int = 32) -> None:
        for table in tables:
            self.analyze(table, buckets)

    # -- incremental maintenance on DML ------------------------------------

    def note_inserted(self, table_name: str,
                      rows: Iterable[tuple], schema) -> None:
        stats = self.get(table_name)
        if stats is None:
            return
        for row in rows:
            stats.row_count += 1
            for column, value in zip(schema.columns, row):
                column_stats = stats.column(column.name)
                if column_stats is not None:
                    column_stats.note_value(value)

    def note_deleted(self, table_name: str, count: int) -> None:
        stats = self.get(table_name)
        if stats is None:
            return
        stats.row_count = max(stats.row_count - count, 0)

    def note_updated(self, table_name: str,
                     new_rows: Iterable[tuple], schema) -> None:
        """An update keeps the row count; widen min/max for new values."""
        stats = self.get(table_name)
        if stats is None:
            return
        for row in new_rows:
            for column, value in zip(schema.columns, row):
                column_stats = stats.column(column.name)
                if column_stats is not None and value is not None \
                        and _is_number(value):
                    if _is_number(column_stats.min_value) \
                            and value < column_stats.min_value:
                        column_stats.min_value = value
                    if _is_number(column_stats.max_value) \
                            and value > column_stats.max_value:
                        column_stats.max_value = value


def _summarize(name: str, values: list[Any], buckets: int) -> ColumnStats:
    non_null = [value for value in values if value is not None]
    distinct = len({_distinct_key(value) for value in non_null})
    stats = ColumnStats(
        name=name,
        non_null=len(non_null),
        null_count=len(values) - len(non_null),
        distinct=distinct,
    )
    numbers = [value for value in non_null if _is_number(value)]
    if numbers:
        stats.min_value = min(numbers)
        stats.max_value = max(numbers)
        low, high = float(stats.min_value), float(stats.max_value)
        histogram = Histogram(low, high, [0] * max(buckets, 1))
        for value in numbers:
            histogram.add(float(value))
        stats.histogram = histogram
    elif non_null and all(isinstance(value, str) for value in non_null):
        stats.min_value = min(non_null)
        stats.max_value = max(non_null)
    return stats


def _distinct_key(value: Any) -> Any:
    if isinstance(value, bool):
        return ("b", value)
    if _is_number(value):
        return ("n", value)
    return ("v", value)
