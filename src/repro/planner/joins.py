"""Join-order optimization: left-deep DP for small FROM lists, greedy
beyond, with a physical strategy picked per join step.

The optimizer works on a *join graph*: base relations (the leaves of an
all-INNER/CROSS FROM tree) and conjuncts classified by the set of
relations they touch.  Single-relation conjuncts are pushed below the
joins by the caller before ordering; what remains here are genuine join
predicates (and the residual unclassifiable ones the caller keeps in
WHERE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..relational import ast
from ..relational.table import Table, find_probe_index
from .cost import CostModel
from .estimate import join_selectivity, predicate_selectivity
from .explain import OperatorNode
from .stats import StatisticsCatalog, TableStats

FOREIGN_ROWS_GUESS = 1000.0
GROUP_FACTOR = 0.2
DISTINCT_FACTOR = 0.5


@dataclass
class BaseRelation:
    """One FROM leaf as the optimizer sees it."""

    expr: ast.TableExpr          # possibly a pushdown wrapper
    binding: str                 # lower-cased
    columns: list[str] | None
    table: Table | None          # underlying heap table, if a bare scan
    raw_rows: float              # before any pushed filter
    est_rows: float              # after pushed filters
    filtered: bool
    node: OperatorNode = field(default=None)  # type: ignore[assignment]


@dataclass
class JoinPredicate:
    """A conjunct spanning two or more relations."""

    expr: ast.Expr
    bindings: frozenset[str]
    selectivity: float
    #: ``(binding_a, column_a, binding_b, column_b)`` for an equi
    #: conjunct ``a.x = b.y``; ``None`` otherwise.
    equi: tuple[str, str, str, str] | None = None


@dataclass
class JoinStep:
    """One step of the chosen left-deep order."""

    relation: BaseRelation
    predicates: list[JoinPredicate]
    strategy: str                # 'hash' | 'index' | 'nested-loop'
    est_rows: float
    est_cost: float


# ---------------------------------------------------------------------------
# Flattening and predicate analysis
# ---------------------------------------------------------------------------


def flatten_inner_joins(table_expr: ast.TableExpr
                        ) -> tuple[list[ast.TableExpr],
                                   list[ast.Expr]] | None:
    """Leaves and ON-conjuncts of an all-INNER/CROSS join tree, or
    ``None`` when an outer join pins the written shape."""
    leaves: list[ast.TableExpr] = []
    conditions: list[ast.Expr] = []

    def walk(expr: ast.TableExpr) -> bool:
        if isinstance(expr, ast.Join):
            if expr.join_type == "LEFT":
                return False
            if not walk(expr.left) or not walk(expr.right):
                return False
            if expr.condition is not None:
                conditions.extend(ast.conjuncts(expr.condition))
            return True
        leaves.append(expr)
        return True

    if not walk(table_expr):
        return None
    return leaves, conditions


def classify_equi(expr: ast.Expr,
                  binding_columns: dict[str, list[str] | None]
                  ) -> tuple[str, str, str, str] | None:
    """``a.x = b.y`` across two distinct relations, resolved."""
    if not (isinstance(expr, ast.BinaryOp) and expr.op == "="):
        return None
    sides = []
    for side in (expr.left, expr.right):
        if not isinstance(side, ast.ColumnRef):
            return None
        if side.qualifier is not None:
            binding = side.qualifier.lower()
            columns = binding_columns.get(binding)
            if columns is None or side.name.lower() not in columns:
                return None
        else:
            owners = [b for b, columns in binding_columns.items()
                      if columns is not None
                      and side.name.lower() in columns]
            if len(owners) != 1:
                return None
            binding = owners[0]
        sides.append((binding, side.name.lower()))
    if sides[0][0] == sides[1][0]:
        return None
    return sides[0][0], sides[0][1], sides[1][0], sides[1][1]




# ---------------------------------------------------------------------------
# Row estimation for relations and whole queries
# ---------------------------------------------------------------------------


def table_rows(table, stats: TableStats | None) -> float:
    if isinstance(table, Table):
        return float(len(table))
    if stats is not None:
        return float(stats.row_count)
    snapshot = getattr(table, "_snapshot", None)
    if snapshot is not None:
        return float(len(snapshot))
    return FOREIGN_ROWS_GUESS


def estimate_query_rows(query: ast.SelectQuery, catalog,
                        stats: StatisticsCatalog) -> float:
    total = 0.0
    for core in [query.core] + [c for _op, c in query.compounds]:
        total += _estimate_core_rows(core, catalog, stats)
    if query.limit is not None and isinstance(query.limit, ast.Literal) \
            and isinstance(query.limit.value, (int, float)):
        total = min(total, float(query.limit.value))
    return max(total, 0.1)


def _estimate_core_rows(core: ast.SelectCore, catalog,
                        stats: StatisticsCatalog) -> float:
    if core.from_clause is None:
        return 1.0
    from .rewrite import binding_of, from_leaves, output_columns
    flat = flatten_inner_joins(core.from_clause)
    if flat is None:
        leaves = from_leaves(core.from_clause)
        conditions = []
    else:
        leaves, conditions = flat
    rows = 1.0
    binding_columns: dict[str, list[str] | None] = {}
    binding_stats: dict[str, TableStats | None] = {}
    for leaf in leaves:
        rows *= _relation_raw_rows(leaf, catalog, stats)
        binding = binding_of(leaf)
        if binding is not None:
            binding_columns[binding] = output_columns(leaf, catalog)
            binding_stats[binding] = _leaf_stats(leaf, stats)
    resolve = make_resolver(binding_stats, binding_columns)
    for conjunct in conditions + list(ast.conjuncts(core.where)):
        equi = classify_equi(conjunct, binding_columns)
        if equi is not None:
            left = _column_stats(binding_stats.get(equi[0]), equi[1])
            right = _column_stats(binding_stats.get(equi[2]), equi[3])
            rows *= join_selectivity(left, right)
        else:
            rows *= predicate_selectivity(conjunct, resolve)
    has_aggregate = bool(core.group_by) or core.having is not None
    if has_aggregate:
        rows = max(rows * GROUP_FACTOR, 1.0) if core.group_by else 1.0
    if core.distinct:
        rows *= DISTINCT_FACTOR
    return max(rows, 0.1)


def _relation_raw_rows(leaf: ast.TableExpr, catalog,
                       stats: StatisticsCatalog) -> float:
    if isinstance(leaf, ast.TableRef):
        if not catalog.has_table(leaf.name):
            return FOREIGN_ROWS_GUESS
        return table_rows(catalog.table(leaf.name), stats.get(leaf.name))
    if isinstance(leaf, ast.SubqueryRef):
        return estimate_query_rows(leaf.query, catalog, stats)
    return FOREIGN_ROWS_GUESS


def _leaf_stats(leaf: ast.TableExpr,
                stats: StatisticsCatalog) -> TableStats | None:
    if isinstance(leaf, ast.TableRef):
        return stats.get(leaf.name)
    return None


def _column_stats(table_stats: TableStats | None, column: str):
    if table_stats is None:
        return None
    return table_stats.column(column)


def make_resolver(binding_stats: dict[str, TableStats | None],
                  binding_columns: dict[str, list[str] | None]):
    """Build the ``ColumnRef -> ColumnStats | None`` lookup the
    selectivity estimator needs."""

    def resolve(ref: ast.ColumnRef):
        if ref.qualifier is not None:
            return _column_stats(binding_stats.get(ref.qualifier.lower()),
                                 ref.name.lower())
        owners = [binding for binding, columns in binding_columns.items()
                  if columns is not None and ref.name.lower() in columns]
        if len(owners) == 1:
            return _column_stats(binding_stats.get(owners[0]),
                                 ref.name.lower())
        return None

    return resolve


# ---------------------------------------------------------------------------
# Ordering
# ---------------------------------------------------------------------------


def order_joins(relations: list[BaseRelation],
                predicates: list[JoinPredicate],
                binding_stats: dict[str, TableStats | None],
                cost_model: CostModel,
                dp_limit: int,
                index_probe: bool) -> tuple[list[int], list[JoinStep]]:
    """Choose a left-deep order (as relation indices) and its steps."""
    if len(relations) <= dp_limit:
        return _order_dp(relations, predicates, cost_model, index_probe)
    return _order_greedy(relations, predicates, cost_model, index_probe)


def _access_cost(relation: BaseRelation, cost_model: CostModel) -> float:
    # A local table is columnar, so its scan (with any pushed-down
    # filter) runs vectorized; foreign/subquery relations do not.
    return cost_model.scan_cost(relation.raw_rows,
                                vectorized=relation.table is not None)


def _step_for(acc_bindings: frozenset[str], acc_rows: float,
              relation: BaseRelation, predicates: list[JoinPredicate],
              cost_model: CostModel, index_probe: bool) -> JoinStep:
    joined = acc_bindings | {relation.binding}
    applicable = [p for p in predicates
                  if relation.binding in p.bindings
                  and p.bindings <= joined]
    out_rows = acc_rows * relation.est_rows
    for predicate in applicable:
        out_rows *= predicate.selectivity
    out_rows = max(out_rows, 0.05)

    inner_equi_columns = []
    for predicate in applicable:
        if predicate.equi is None:
            continue
        binding_a, column_a, binding_b, column_b = predicate.equi
        if binding_a == relation.binding and binding_b in acc_bindings:
            inner_equi_columns.append(column_a)
        elif binding_b == relation.binding and binding_a in acc_bindings:
            inner_equi_columns.append(column_b)
    has_equi = bool(inner_equi_columns)
    index_available = (
        index_probe and has_equi and not relation.filtered
        and relation.table is not None
        and find_probe_index(relation.table,
                             inner_equi_columns) is not None)

    choice = cost_model.choose_join(acc_rows, relation.est_rows, out_rows,
                                    has_equi, index_available)
    cost = choice.cost
    if choice.strategy != "index":
        cost += _access_cost(relation, cost_model)
    return JoinStep(relation, applicable, choice.strategy, out_rows, cost)


def _order_dp(relations: list[BaseRelation],
              predicates: list[JoinPredicate],
              cost_model: CostModel,
              index_probe: bool) -> tuple[list[int], list[JoinStep]]:
    indices = range(len(relations))
    best: dict[frozenset[int], tuple[float, float, list[int],
                                     list[JoinStep]]] = {}
    for i in indices:
        best[frozenset([i])] = (_access_cost(relations[i], cost_model),
                                relations[i].est_rows, [i], [])
    for size in range(2, len(relations) + 1):
        for subset in combinations(indices, size):
            key = frozenset(subset)
            champion = None
            for last in subset:
                prev_key = key - {last}
                if prev_key not in best:
                    continue
                prev_cost, prev_rows, prev_order, prev_steps = best[prev_key]
                acc_bindings = frozenset(
                    relations[i].binding for i in prev_order)
                step = _step_for(acc_bindings, prev_rows, relations[last],
                                 predicates, cost_model, index_probe)
                total = prev_cost + step.est_cost
                if champion is None or total < champion[0]:
                    champion = (total, step.est_rows, prev_order + [last],
                                prev_steps + [step])
            best[key] = champion
    _cost, _rows, order, steps = best[frozenset(indices)]
    return order, steps


def _order_greedy(relations: list[BaseRelation],
                  predicates: list[JoinPredicate],
                  cost_model: CostModel,
                  index_probe: bool) -> tuple[list[int], list[JoinStep]]:
    remaining = set(range(len(relations)))
    start = min(remaining, key=lambda i: relations[i].est_rows)
    order = [start]
    remaining.discard(start)
    steps: list[JoinStep] = []
    rows = relations[start].est_rows
    while remaining:
        acc_bindings = frozenset(relations[i].binding for i in order)
        champion = None
        for i in remaining:
            step = _step_for(acc_bindings, rows, relations[i],
                             predicates, cost_model, index_probe)
            rank = (step.est_cost + step.est_rows, step.est_rows)
            if champion is None or rank < champion[0]:
                champion = (rank, i, step)
        _rank, chosen, step = champion
        order.append(chosen)
        remaining.discard(chosen)
        steps.append(step)
        rows = step.est_rows
    return order, steps


# ---------------------------------------------------------------------------
# Tree rebuild
# ---------------------------------------------------------------------------

_STEP_KIND = {"hash": "hash-join", "index": "index-join",
              "nested-loop": "nested-loop"}


def build_join_tree(relations: list[BaseRelation], order: list[int],
                    steps: list[JoinStep],
                    annotations: dict[int, OperatorNode]
                    ) -> tuple[ast.TableExpr, OperatorNode]:
    """Assemble the chosen left-deep ast.Join chain and its trace."""
    acc_expr = relations[order[0]].expr
    acc_node = relations[order[0]].node
    for step in steps:
        condition = ast.conjoin([p.expr for p in step.predicates])
        join = ast.Join("INNER", acc_expr, step.relation.expr, condition)
        node = OperatorNode(
            kind=(_STEP_KIND[step.strategy] if condition is not None
                  else "cross-join"),
            label=f"to {step.relation.binding}",
            est_rows=step.est_rows,
            children=[acc_node, step.relation.node])
        annotations[id(join)] = node
        acc_expr, acc_node = join, node
    return acc_expr, acc_node
