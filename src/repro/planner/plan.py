"""The planning driver: one call turns a parsed SELECT into a
:class:`PlannedStatement` — a rewritten (private) AST plus the operator
tree EXPLAIN renders and the executor instruments.

``plan_select`` never raises in production use: any planning failure
falls back to executing the query exactly as written (``strict`` mode,
used by the tests, re-raises instead so planner bugs cannot hide).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..relational import ast
from .cost import CostModel
from .estimate import predicate_selectivity
from .explain import OperatorNode
from .joins import (BaseRelation, JoinPredicate, build_join_tree,
                    classify_equi, estimate_query_rows, flatten_inner_joins,
                    join_selectivity, make_resolver, order_joins,
                    _column_stats, _leaf_stats, _relation_raw_rows)
from .options import PlannerOptions
from .rewrite import (binding_of, expand_star_items, fold_expr, from_leaves,
                      needed_columns, null_safe_bindings, output_columns,
                      prune_derived_projection, prune_wrapper_projection,
                      referenced_bindings, wrap_with_filter)
from .stats import StatisticsCatalog


@dataclass
class PlannedStatement:
    """What the planner decided for one SELECT."""

    original: ast.SelectQuery
    query: ast.SelectQuery            # the (rewritten) AST to compile
    root: OperatorNode
    annotations: dict[int, OperatorNode] = field(default_factory=dict)
    #: Aggregate nodes keyed by SELECT core id.  Separate from
    #: ``annotations`` because a core's id already keys its filter node,
    #: and the executor needs to reach both (filter instrumentation vs.
    #: marking the aggregation vectorized).
    agg_annotations: dict[int, OperatorNode] = field(default_factory=dict)
    options: PlannerOptions = field(default_factory=PlannerOptions)
    notes: list[str] = field(default_factory=list)
    reordered: bool = False
    #: When set (EXPLAIN ANALYZE), the executor counts the rows that
    #: actually flow through each annotated operator.
    instrument: bool = False

    def annotation_for(self, node) -> OperatorNode | None:
        return self.annotations.get(id(node))

    def operators(self) -> list[OperatorNode]:
        return list(self.root.walk())

    def format(self) -> str:
        lines = [self.root.format()]
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def is_trivial_select(query: ast.SelectQuery) -> bool:
    """True when planning cannot improve the statement: a single core
    over at most one base table, with no derived tables and no
    subqueries anywhere.  The executor's own single-table index fast
    path already covers this shape, so the hot path skips the planner
    (no deep copy, no trace) entirely."""
    if query.compounds:
        return False
    core = query.core
    if core.from_clause is not None \
            and not isinstance(core.from_clause, ast.TableRef):
        return False
    for node in ast.iter_query_nodes(query):
        if isinstance(node, (ast.Join, ast.SubqueryRef, ast.InSubquery,
                             ast.Exists, ast.ScalarSubquery)):
            return False
    return True


def plan_select(query: ast.SelectQuery, catalog,
                stats: StatisticsCatalog,
                options: PlannerOptions) -> PlannedStatement:
    """Plan one SELECT; on failure, degrade to the query as written."""
    working = copy.deepcopy(query)
    planned = PlannedStatement(original=query, query=working,
                               root=OperatorNode("result", "select"),
                               options=options)
    try:
        planned.root = _plan_query(working, catalog, stats, options, planned)
    except Exception as exc:
        if options.strict:
            raise
        return PlannedStatement(
            original=query, query=query,
            root=OperatorNode("result", "select"), options=options,
            notes=[f"planning failed, executing as written: {exc!r}"])
    return planned


# ---------------------------------------------------------------------------
# Query / core planning
# ---------------------------------------------------------------------------


def _plan_query(query: ast.SelectQuery, catalog, stats, options,
                planned: PlannedStatement) -> OperatorNode:
    cores = [query.core] + [core for _op, core in query.compounds]
    children = [_plan_core(core, query, catalog, stats, options, planned)
                for core in cores]
    if query.is_compound:
        label = " / ".join(op for op, _core in query.compounds)
        inner = OperatorNode("set-op", label, children=children)
    else:
        inner = children[0]
    root = OperatorNode("result", "select",
                        est_rows=inner.est_rows, children=[inner])
    return root


def _plan_core(core: ast.SelectCore, query: ast.SelectQuery, catalog,
               stats, options: PlannerOptions,
               planned: PlannedStatement) -> OperatorNode:
    if options.fold_constants:
        _fold_core(core)
    _plan_expression_subqueries(core, catalog, stats, options, planned)

    if core.from_clause is None:
        return OperatorNode("values", "no FROM", est_rows=1.0)

    node = _plan_from(core, query, catalog, stats, options, planned)

    if bool(core.group_by) or core.having is not None or core.distinct:
        label = "group by" if core.group_by else (
            "aggregate" if core.having is not None else "distinct")
        node = OperatorNode("aggregate", label, children=[node])
        planned.agg_annotations[id(core)] = node
    return node


def _fold_core(core: ast.SelectCore) -> None:
    if core.where is not None:
        core.where = fold_expr(core.where)
        if isinstance(core.where, ast.Literal) and core.where.value is True:
            core.where = None
    if core.having is not None:
        core.having = fold_expr(core.having)
        if isinstance(core.having, ast.Literal) \
                and core.having.value is True:
            core.having = None
    for item in core.items:
        if not item.is_star:
            item.expr = fold_expr(item.expr)


def _plan_expression_subqueries(core: ast.SelectCore, catalog, stats,
                                options, planned) -> None:
    """Recursively plan subqueries embedded in expressions (the WHERE
    rewrites of the SESQL pipeline inject exactly these)."""
    roots: list[ast.Expr] = [item.expr for item in core.items
                             if not item.is_star]
    if core.where is not None:
        roots.append(core.where)
    if core.having is not None:
        roots.append(core.having)
    for root in roots:
        for node in ast.walk_expr(root):
            if isinstance(node, (ast.InSubquery, ast.Exists,
                                 ast.ScalarSubquery)) \
                    and node.query is not None:
                _plan_query(node.query, catalog, stats, options, planned)


def _has_ordinals(exprs) -> bool:
    return any(isinstance(expr, ast.Literal)
               and isinstance(expr.value, int)
               and not isinstance(expr.value, bool)
               for expr in exprs)


def _plan_from(core: ast.SelectCore, query: ast.SelectQuery, catalog,
               stats, options: PlannerOptions,
               planned: PlannedStatement) -> OperatorNode:
    leaves = from_leaves(core.from_clause)
    bindings = [binding_of(leaf) for leaf in leaves]
    if None in bindings or len(set(bindings)) != len(bindings):
        # Something we do not model (or a duplicate alias the executor
        # will reject): leave the FROM exactly as written.
        return _trace_as_written(core, catalog, stats, planned)

    # Plan derived tables from the inside out (their own pushdown and
    # ordering), pruning unread columns first.
    binding_columns: dict[str, list[str] | None] = {}
    inner_roots: dict[str, OperatorNode] = {}
    for leaf, binding in zip(leaves, bindings):
        if isinstance(leaf, ast.SubqueryRef):
            if options.prune_projections:
                columns = output_columns(leaf, catalog)
                if columns is not None:
                    needed = needed_columns(query, binding, columns,
                                            exclude=leaf.query)
                    if needed is not None:
                        prune_derived_projection(leaf, needed)
            inner_roots[binding] = _plan_query(leaf.query, catalog, stats,
                                               options, planned)
        binding_columns[binding] = output_columns(leaf, catalog)

    flat = flatten_inner_joins(core.from_clause)
    reorderable = (flat is not None and len(leaves) >= 2
                   and options.reorder_joins)
    if reorderable and any(item.is_star for item in core.items):
        ordinals = _has_ordinals(core.group_by) \
            or _has_ordinals([item.expr for item in query.order_by])
        if ordinals or not expand_star_items(core, catalog):
            reorderable = False

    if not reorderable:
        _pushdown_in_place(core, query, catalog, stats, options, planned,
                           binding_columns)
        return _trace_as_written(core, catalog, stats, planned,
                                 inner_roots)

    return _reorder_from(core, query, catalog, stats, options, planned,
                         flat[0], flat[1], binding_columns, inner_roots)


# ---------------------------------------------------------------------------
# The reordering path (all-INNER/CROSS FROM)
# ---------------------------------------------------------------------------


def _reorder_from(core: ast.SelectCore, query: ast.SelectQuery, catalog,
                  stats, options: PlannerOptions,
                  planned: PlannedStatement,
                  leaves: list[ast.TableExpr],
                  on_conjuncts: list[ast.Expr],
                  binding_columns: dict,
                  inner_roots: dict[str, OperatorNode]) -> OperatorNode:
    binding_stats = {binding_of(leaf): _leaf_stats(leaf, stats)
                     for leaf in leaves}
    resolve = make_resolver(binding_stats, binding_columns)

    # Classify every conjunct (ON and WHERE are equivalent here).
    conjunct_pool = on_conjuncts + list(ast.conjuncts(core.where))
    pushes: dict[str, list[ast.Expr]] = {}
    join_predicates: list[JoinPredicate] = []
    residual: list[ast.Expr] = []
    for conjunct in conjunct_pool:
        touched = referenced_bindings(conjunct, binding_columns)
        if touched is None or len(touched) == 0:
            residual.append(conjunct)
        elif len(touched) == 1 and options.predicate_pushdown:
            pushes.setdefault(next(iter(touched)), []).append(conjunct)
        elif len(touched) == 1:
            residual.append(conjunct)
        else:
            equi = classify_equi(conjunct, binding_columns)
            if equi is not None:
                selectivity = join_selectivity(
                    _column_stats(binding_stats.get(equi[0]), equi[1]),
                    _column_stats(binding_stats.get(equi[2]), equi[3]))
            else:
                selectivity = predicate_selectivity(conjunct, resolve)
            join_predicates.append(JoinPredicate(
                conjunct, touched, selectivity, equi))

    # Column pruning sets must be computed before wrappers introduce
    # their own SELECT * (which would read as "needs everything").
    needed_by_binding: dict[str, set[str] | None] = {}
    for leaf in leaves:
        binding = binding_of(leaf)
        columns = binding_columns.get(binding)
        exclude = leaf.query if isinstance(leaf, ast.SubqueryRef) else None
        needed_by_binding[binding] = (
            needed_columns(query, binding, columns, exclude=exclude)
            if columns is not None else None)

    relations: list[BaseRelation] = []
    for leaf in leaves:
        relations.append(_build_relation(
            leaf, catalog, stats, options, planned, resolve,
            pushes.get(binding_of(leaf), []),
            binding_columns, needed_by_binding, inner_roots))

    order, steps = order_joins(
        relations, join_predicates, binding_stats, CostModel(),
        options.dp_relation_limit, options.index_probe_joins)
    tree, join_root = build_join_tree(relations, order, steps,
                                      planned.annotations)
    core.from_clause = tree
    core.where = ast.conjoin(residual)
    if order != list(range(len(relations))):
        planned.reordered = True
        planned.notes.append(
            "join order: " + " -> ".join(relations[i].binding
                                         for i in order))

    top = join_root
    if core.where is not None:
        est = (join_root.est_rows or 1.0) * max(
            predicate_selectivity(core.where, resolve), 0.0005)
        top = OperatorNode("filter", "residual WHERE", est_rows=est,
                           children=[join_root])
        planned.annotations[id(core)] = top
    return top


def _build_relation(leaf, catalog, stats, options: PlannerOptions,
                    planned: PlannedStatement, resolve,
                    pushed: list[ast.Expr], binding_columns,
                    needed_by_binding,
                    inner_roots: dict[str, OperatorNode]) -> BaseRelation:
    from ..relational.table import Table

    binding = binding_of(leaf)
    raw_rows = _relation_raw_rows(leaf, catalog, stats)
    table = None
    if isinstance(leaf, ast.TableRef) and catalog.has_table(leaf.name):
        candidate = catalog.table(leaf.name)
        if isinstance(candidate, Table):
            table = candidate

    if isinstance(leaf, ast.SubqueryRef):
        scan_node = OperatorNode("derived", binding, est_rows=raw_rows)
        if binding in inner_roots:
            scan_node.children.append(inner_roots[binding])
    else:
        scan_node = OperatorNode("scan", _scan_label(leaf),
                                 est_rows=raw_rows)
    planned.annotations[id(leaf)] = scan_node

    if not pushed:
        return BaseRelation(leaf, binding, binding_columns.get(binding),
                            table, raw_rows, raw_rows, False,
                            node=scan_node)

    selectivity = 1.0
    for conjunct in pushed:
        selectivity *= predicate_selectivity(conjunct, resolve)
    est_rows = max(raw_rows * selectivity, 0.05)
    wrapper = wrap_with_filter(leaf, pushed)
    if options.prune_projections:
        needed = needed_by_binding.get(binding)
        columns = binding_columns.get(binding)
        if needed is not None and columns is not None:
            keep = [name for name in columns if name in needed]
            # Join/residual predicates live above the wrapper and read
            # through it, so their columns are part of "needed" already.
            if keep and len(keep) < len(columns) \
                    and prune_wrapper_projection(wrapper, keep):
                binding_columns[binding] = keep
    filter_node = OperatorNode("filter", binding, est_rows=est_rows,
                               detail="pushed-down predicate",
                               children=[scan_node])
    # The wrapper's inner core compiles through the executor's batch
    # gate, so a columnar base table scans (and often filters)
    # vectorized — unlike bare join inputs, which stay row-at-a-time.
    if table is not None \
            and not _has_index_probe(ast.conjoin(pushed), table):
        scan_node.vectorized = True
        if _any_vector_conjunct(ast.conjoin(pushed), table):
            filter_node.vectorized = True
    planned.annotations[id(wrapper)] = filter_node
    return BaseRelation(wrapper, binding, binding_columns.get(binding),
                        table, raw_rows, est_rows, True, node=filter_node)


def _scan_label(leaf: ast.TableRef) -> str:
    if leaf.alias and leaf.alias.lower() != leaf.name.lower():
        return f"{leaf.name} as {leaf.alias}"
    return leaf.name


# ---------------------------------------------------------------------------
# The as-written path (LEFT joins, single relations, opt-outs)
# ---------------------------------------------------------------------------


def _pushdown_in_place(core: ast.SelectCore, query: ast.SelectQuery,
                       catalog, stats, options: PlannerOptions,
                       planned: PlannedStatement,
                       binding_columns: dict) -> None:
    """Push WHERE conjuncts into null-safe leaves of a FROM tree whose
    shape is kept (LEFT joins present, or reordering is off)."""
    if not options.predicate_pushdown or core.where is None:
        return
    if not isinstance(core.from_clause, ast.Join):
        return  # single relation: WHERE already sits on the scan
    safe = null_safe_bindings(core.from_clause)
    pushes: dict[str, list[ast.Expr]] = {}
    residual: list[ast.Expr] = []
    for conjunct in ast.conjuncts(core.where):
        touched = referenced_bindings(conjunct, binding_columns)
        if touched is not None and len(touched) == 1 \
                and next(iter(touched)) in safe:
            pushes.setdefault(next(iter(touched)), []).append(conjunct)
        else:
            residual.append(conjunct)
    if not pushes:
        return
    core.where = ast.conjoin(residual)
    core.from_clause = _wrap_leaves(core.from_clause, pushes)


def _wrap_leaves(table_expr: ast.TableExpr,
                 pushes: dict[str, list[ast.Expr]]) -> ast.TableExpr:
    if isinstance(table_expr, ast.Join):
        table_expr.left = _wrap_leaves(table_expr.left, pushes)
        table_expr.right = _wrap_leaves(table_expr.right, pushes)
        return table_expr
    binding = binding_of(table_expr)
    if binding in pushes:
        return wrap_with_filter(table_expr, pushes[binding])
    return table_expr


def _columnar_table(table_expr, catalog):
    """The columnar Table behind a TableRef, or None."""
    from ..relational.table import Table

    if not isinstance(table_expr, ast.TableRef) \
            or not catalog.has_table(table_expr.name):
        return None
    table = catalog.table(table_expr.name)
    return table if isinstance(table, Table) else None


def _has_index_probe(where, table) -> bool:
    """Mirror the executor's preference: an indexed ``col = literal``
    conjunct becomes a point probe, not a vectorized scan."""
    if where is None:
        return False
    for conjunct in ast.conjuncts(where):
        if not (isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="):
            continue
        for side, other in ((conjunct.left, conjunct.right),
                            (conjunct.right, conjunct.left)):
            if isinstance(side, ast.ColumnRef) \
                    and isinstance(other, ast.Literal) \
                    and table.schema.has_column(side.name) \
                    and table.find_index_on([side.name]) is not None:
                return True
    return False


def _any_vector_conjunct(where, table) -> bool:
    """Would at least one WHERE conjunct compile to a vector kernel?"""
    from ..relational.vectors import compile_filter_kernel

    if where is None:
        return False
    schema = table.schema

    def resolve(ref):
        if not schema.has_column(ref.name):
            return None
        position = schema.position_of(ref.name)
        return position, schema.columns[position].data_type

    return any(compile_filter_kernel(conjunct, resolve) is not None
               for conjunct in ast.conjuncts(where))


def _trace_as_written(core: ast.SelectCore, catalog, stats,
                      planned: PlannedStatement,
                      inner_roots: dict[str, OperatorNode] | None = None
                      ) -> OperatorNode:
    """Build (and register) display/instrumentation nodes for a FROM
    tree the planner left structurally alone."""
    node = _trace_table_expr(core.from_clause, catalog, stats, planned,
                             inner_roots or {})
    vector_table = _columnar_table(core.from_clause, catalog)
    if vector_table is not None \
            and _has_index_probe(core.where, vector_table):
        vector_table = None
    if vector_table is not None:
        node.vectorized = True
    if core.where is not None:
        top = OperatorNode("filter", "WHERE", children=[node])
        if vector_table is not None \
                and _any_vector_conjunct(core.where, vector_table):
            top.vectorized = True
        planned.annotations[id(core)] = top
        return top
    return node


def _trace_table_expr(table_expr: ast.TableExpr, catalog, stats,
                      planned: PlannedStatement,
                      inner_roots: dict[str, OperatorNode]) -> OperatorNode:
    if isinstance(table_expr, ast.Join):
        left = _trace_table_expr(table_expr.left, catalog, stats, planned,
                                 inner_roots)
        right = _trace_table_expr(table_expr.right, catalog, stats,
                                  planned, inner_roots)
        label = ("left join" if table_expr.join_type == "LEFT"
                 else "join" if table_expr.condition is not None
                 else "cross join")
        node = OperatorNode("join", label, children=[left, right])
        planned.annotations[id(table_expr)] = node
        return node
    if isinstance(table_expr, ast.SubqueryRef):
        inner = table_expr.query
        # Pushdown wrappers carry their filter in the inner WHERE.
        label = binding_of(table_expr) or "derived"
        node = OperatorNode("derived", label,
                            est_rows=estimate_query_rows(inner, catalog,
                                                         stats))
        if label in inner_roots:
            node.children.append(inner_roots[label])
        planned.annotations[id(table_expr)] = node
        return node
    est = _relation_raw_rows(table_expr, catalog, stats) \
        if isinstance(table_expr, ast.TableRef) else None
    node = OperatorNode("scan", _scan_label(table_expr)
                        if isinstance(table_expr, ast.TableRef)
                        else "?", est_rows=est)
    planned.annotations[id(table_expr)] = node
    return node
