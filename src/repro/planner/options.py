"""Planner configuration.

Every :class:`~repro.relational.engine.Database` owns a
:class:`PlannerOptions` (on by default).  Individual passes can be
switched off independently, which the equivalence tests use to compare
planned and unplanned executions of the same query.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PlannerOptions:
    """Feature flags and tuning knobs of the cost-based planner."""

    #: Master switch.  Off = compile the query exactly as written.
    enabled: bool = True
    #: Fold literal-only sub-expressions (``1 + 1`` -> ``2``) and
    #: simplify AND/OR/NOT around literal booleans.
    fold_constants: bool = True
    #: Push single-relation WHERE/ON conjuncts below joins.
    predicate_pushdown: bool = True
    #: Drop derived-table select items the outer query never reads.
    prune_projections: bool = True
    #: Re-order inner-join trees by estimated cost.
    reorder_joins: bool = True
    #: Let equi-joins probe a matching index on the inner table.
    index_probe_joins: bool = True
    #: Exhaustive (left-deep DP) ordering up to this many relations;
    #: larger FROM lists fall back to the greedy heuristic.
    dp_relation_limit: int = 6
    #: Equi-width histogram buckets collected per numeric column.
    histogram_buckets: int = 32
    #: Re-raise planner bugs instead of silently executing the query as
    #: written.  Tests set this; production paths leave it off so a
    #: planning failure can never break a query.
    strict: bool = False

    def replace(self, **changes) -> "PlannerOptions":
        return replace(self, **changes)
