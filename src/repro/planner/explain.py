"""Operator trees for EXPLAIN: estimated vs. actual rows per operator.

The planner builds one :class:`OperatorNode` per physical operator it
decided on (scans, filters, joins, aggregation).  The executor, when
handed the same plan, instruments the corresponding iterators so each
node also records the rows that actually flowed through it — the
``est=…`` / ``actual=…`` pair EXPLAIN ANALYZE prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OperatorNode:
    """One operator of a planned query."""

    kind: str                     # scan | filter | hash-join | index-join |
    #                               nested-loop | aggregate | result | ...
    label: str
    est_rows: float | None = None
    actual_rows: int | None = None
    detail: str = ""
    #: True when this operator runs on the columnar batch path
    #: (vectorized scan/filter/aggregate) rather than row-at-a-time.
    vectorized: bool = False
    children: list["OperatorNode"] = field(default_factory=list)

    def count(self, rows: int) -> None:
        self.actual_rows = (self.actual_rows or 0) + rows

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def format(self, indent: int = 0) -> str:
        parts = [f"{'  ' * indent}{self.kind} {self.label}".rstrip()]
        annotations = []
        if self.est_rows is not None:
            annotations.append(f"est={_round(self.est_rows)}")
        if self.actual_rows is not None:
            annotations.append(f"actual={self.actual_rows}")
        if self.vectorized:
            annotations.append("vectorized")
        if self.detail:
            annotations.append(self.detail)
        if annotations:
            parts[0] += "  (" + ", ".join(annotations) + ")"
        parts.extend(child.format(indent + 1) for child in self.children)
        return "\n".join(parts)


def _round(value: float) -> str:
    if value >= 100 or float(value).is_integer():
        return str(int(round(value)))
    return f"{value:.1f}"
