"""Cardinality estimation: selectivities from statistics + heuristics.

The estimator is deliberately System-R-shaped: independent-predicate
selectivities multiplied together, equi-join selectivity of
``1 / max(distinct(left), distinct(right))``, and fixed magic fractions
when no statistics exist.  Its job is not to be precise — it only has
to order alternatives correctly often enough for the join orderer to
avoid catastrophic plans.
"""

from __future__ import annotations

from typing import Any, Callable

from ..relational import ast
from .stats import ColumnStats

# Fallback selectivities when statistics are missing (System-R lore).
EQ_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 1.0 / 3.0
LIKE_SELECTIVITY = 0.15
DEFAULT_SELECTIVITY = 0.25
JOIN_SELECTIVITY = 0.1

#: ``resolve(column_ref) -> ColumnStats | None`` — the caller (which
#: knows which relation a column belongs to) supplies the lookup.
StatsResolver = Callable[[ast.ColumnRef], "ColumnStats | None"]


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _clamp(fraction: float) -> float:
    return min(max(fraction, 0.0005), 1.0)


def _literal(expr: ast.Expr) -> tuple[bool, Any]:
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-" \
            and isinstance(expr.operand, ast.Literal) \
            and _is_number(expr.operand.value):
        return True, -expr.operand.value
    return False, None


def equality_selectivity(stats: ColumnStats | None, value: Any) -> float:
    if stats is None or stats.non_null == 0:
        return EQ_SELECTIVITY
    base = 1.0 / max(stats.distinct, 1)
    if _is_number(value):
        if _is_number(stats.min_value) and (value < stats.min_value
                                            or value > stats.max_value):
            return 0.0005  # out of the observed range
        if stats.histogram is not None:
            bucket = stats.histogram.fraction_equal(float(value))
            if bucket is not None:
                if bucket == 0.0:
                    return 0.0005  # empty bucket: key effectively absent
                # One key holds ~ bucket_fraction / (distinct / buckets)
                # of the rows, assuming keys spread evenly over buckets;
                # the whole bucket is an upper bound either way.
                per_key = bucket * len(stats.histogram.counts) \
                    / max(stats.distinct, 1)
                base = min(max(per_key, 1.0 / max(stats.non_null, 1)),
                           bucket)
    return _clamp(base * (1.0 - stats.null_fraction)
                  if stats.null_fraction < 1.0 else 0.0005)


def range_selectivity(stats: ColumnStats | None, op: str,
                      value: Any) -> float:
    if stats is None or not _is_number(value) \
            or not _is_number(stats.min_value) \
            or not _is_number(stats.max_value):
        return RANGE_SELECTIVITY
    low, high = float(stats.min_value), float(stats.max_value)
    if stats.histogram is not None and stats.histogram.total:
        below = stats.histogram.fraction_below(
            float(value), inclusive=op == "<=")
    elif high == low:
        below = 1.0 if float(value) >= low else 0.0
    else:
        below = (float(value) - low) / (high - low)
        below = min(max(below, 0.0), 1.0)
    if op in ("<", "<="):
        fraction = below
    else:  # '>', '>='
        fraction = 1.0 - below
    return _clamp(fraction * (1.0 - stats.null_fraction))


def predicate_selectivity(expr: ast.Expr, resolve: StatsResolver) -> float:
    """Selectivity of one WHERE/ON conjunct (3VL folded into 'kept')."""
    if isinstance(expr, ast.Literal):
        if expr.value is True:
            return 1.0
        return 0.0005 if expr.value in (False, None) else 1.0

    if isinstance(expr, ast.BinaryOp):
        if expr.op == "AND":
            return _clamp(predicate_selectivity(expr.left, resolve)
                          * predicate_selectivity(expr.right, resolve))
        if expr.op == "OR":
            left = predicate_selectivity(expr.left, resolve)
            right = predicate_selectivity(expr.right, resolve)
            return _clamp(left + right - left * right)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            column, value = _column_vs_literal(expr)
            if column is not None:
                stats = resolve(column)
                if expr.op == "=":
                    return equality_selectivity(stats, value)
                if expr.op == "<>":
                    return _clamp(1.0 - equality_selectivity(stats, value))
                return range_selectivity(stats, _oriented_op(expr, column),
                                         value)
            if expr.op == "=":
                return EQ_SELECTIVITY
            if expr.op == "<>":
                return 1.0 - EQ_SELECTIVITY
            return RANGE_SELECTIVITY
        return DEFAULT_SELECTIVITY

    if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
        return _clamp(1.0 - predicate_selectivity(expr.operand, resolve))

    if isinstance(expr, ast.IsNull):
        stats = (resolve(expr.operand)
                 if isinstance(expr.operand, ast.ColumnRef) else None)
        fraction = stats.null_fraction if stats is not None else 0.05
        return _clamp(1.0 - fraction if expr.negated else fraction)

    if isinstance(expr, ast.Between):
        low_ok, low = _literal(expr.low)
        high_ok, high = _literal(expr.high)
        if isinstance(expr.operand, ast.ColumnRef) and low_ok and high_ok:
            stats = resolve(expr.operand)
            fraction = _clamp(
                range_selectivity(stats, "<=", high)
                - range_selectivity(stats, "<", low))
            return _clamp(1.0 - fraction) if expr.negated else fraction
        return RANGE_SELECTIVITY

    if isinstance(expr, ast.InList):
        if isinstance(expr.operand, ast.ColumnRef):
            stats = resolve(expr.operand)
            total = 0.0
            for item in expr.items:
                ok, value = _literal(item)
                total += (equality_selectivity(stats, value)
                          if ok else EQ_SELECTIVITY)
            fraction = _clamp(total)
            return _clamp(1.0 - fraction) if expr.negated else fraction
        return DEFAULT_SELECTIVITY

    if isinstance(expr, ast.Like):
        return _clamp(1.0 - LIKE_SELECTIVITY) if expr.negated \
            else LIKE_SELECTIVITY

    return DEFAULT_SELECTIVITY


def join_selectivity(left: ColumnStats | None,
                     right: ColumnStats | None) -> float:
    """Equi-join selectivity: ``1 / max(distinct sides)``."""
    distincts = [stats.distinct for stats in (left, right)
                 if stats is not None and stats.distinct > 0]
    if not distincts:
        return JOIN_SELECTIVITY
    return _clamp(1.0 / max(distincts))


def _column_vs_literal(
        expr: ast.BinaryOp) -> tuple[ast.ColumnRef | None, Any]:
    for column_side, value_side in ((expr.left, expr.right),
                                    (expr.right, expr.left)):
        if isinstance(column_side, ast.ColumnRef):
            ok, value = _literal(value_side)
            if ok:
                return column_side, value
    return None, None


def _oriented_op(expr: ast.BinaryOp, column: ast.ColumnRef) -> str:
    """Flip the comparison when the literal is on the left side."""
    if expr.left is column:
        return expr.op
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[expr.op]
