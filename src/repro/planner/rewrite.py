"""Logical rewrites: constant folding, predicate classification and
pushdown, star expansion and projection pruning.

All rewrites operate on (already deep-copied) AST nodes from
:mod:`repro.relational.ast` and are individually semantics-preserving:

* **constant folding** evaluates literal-only sub-expressions with the
  executor's own operator semantics and simplifies AND/OR/NOT around
  boolean literals (3VL-safely: ``FALSE AND x`` is ``FALSE`` even when
  ``x`` is unknown);
* **predicate pushdown** relocates a WHERE/ON conjunct that touches a
  single relation below the joins by wrapping that relation in a
  derived table (``t`` becomes ``(SELECT * FROM t WHERE p) AS t``),
  which also re-enables the executor's single-table index fast path
  under a join;
* **projection pruning** narrows a derived table's select list to the
  columns the outer query actually reads.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..relational import ast
from ..relational.compiler import CompileContext, compile_expr

# ---------------------------------------------------------------------------
# Generic expression transformation
# ---------------------------------------------------------------------------


def map_expr(expr: ast.Expr,
             fn: Callable[[ast.Expr], ast.Expr]) -> ast.Expr:
    """Rebuild *expr* bottom-up, applying *fn* to every node."""
    rebuilt = _rebuild(expr, lambda child: map_expr(child, fn))
    return fn(rebuilt)


def _rebuild(expr: ast.Expr,
             recurse: Callable[[ast.Expr], ast.Expr]) -> ast.Expr:
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, recurse(expr.operand))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, recurse(expr.left),
                            recurse(expr.right))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(recurse(expr.operand), expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(recurse(expr.operand), recurse(expr.pattern),
                        expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(recurse(expr.operand),
                          [recurse(item) for item in expr.items],
                          expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(recurse(expr.operand), recurse(expr.low),
                           recurse(expr.high), expr.negated)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name,
                                [recurse(arg) for arg in expr.args],
                                expr.distinct, expr.star)
    if isinstance(expr, ast.CaseExpr):
        operand = recurse(expr.operand) if expr.operand is not None else None
        whens = [(recurse(c), recurse(r)) for c, r in expr.whens]
        else_result = (recurse(expr.else_result)
                       if expr.else_result is not None else None)
        return ast.CaseExpr(operand, whens, else_result)
    if isinstance(expr, ast.Cast):
        return ast.Cast(recurse(expr.operand), expr.type_name)
    # Literals, column/slot refs and subquery expressions are leaves
    # here (subquery internals are rewritten by the plan driver).
    return expr


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

_FOLDABLE = (ast.Literal, ast.UnaryOp, ast.BinaryOp, ast.IsNull, ast.Like,
             ast.InList, ast.Between, ast.FunctionCall, ast.CaseExpr,
             ast.Cast)

_fold_ctx = CompileContext(subplan_factory=None)  # type: ignore[arg-type]


def _is_literal_only(expr: ast.Expr) -> bool:
    if not isinstance(expr, _FOLDABLE):
        return False
    from ..relational.aggregates import AGGREGATE_NAMES
    for node in ast.walk_expr(expr):
        if not isinstance(node, _FOLDABLE):
            return False
        if isinstance(node, ast.FunctionCall) \
                and node.name.upper() in AGGREGATE_NAMES:
            return False
    return True


def _bool_literal(expr: ast.Expr) -> Optional[bool]:
    if isinstance(expr, ast.Literal) and isinstance(expr.value, bool):
        return expr.value
    return None


def fold_expr(expr: ast.Expr) -> ast.Expr:
    """Fold literal-only subtrees and simplify boolean connectives."""

    def fold_node(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.Literal):
            return node
        if isinstance(node, ast.BinaryOp) and node.op in ("AND", "OR"):
            left, right = _bool_literal(node.left), _bool_literal(node.right)
            if node.op == "AND":
                if left is False or right is False:
                    return ast.Literal(False)
                if left is True:
                    return node.right
                if right is True:
                    return node.left
            else:
                if left is True or right is True:
                    return ast.Literal(True)
                if left is False:
                    return node.right
                if right is False:
                    return node.left
            return node
        if isinstance(node, ast.UnaryOp) and node.op == "NOT":
            operand = _bool_literal(node.operand)
            if operand is not None:
                return ast.Literal(not operand)
            if isinstance(node.operand, ast.Literal) \
                    and node.operand.value is None:
                return ast.Literal(None)
            return node
        if _is_literal_only(node):
            try:
                value = compile_expr(node, [], _fold_ctx)(())
            except Exception:
                return node  # e.g. 1/0: keep runtime semantics intact
            if value is None or isinstance(value, (bool, int, float, str)):
                return ast.Literal(value)
        return node

    return map_expr(expr, fold_node)


# ---------------------------------------------------------------------------
# Relation shapes: bindings and output columns
# ---------------------------------------------------------------------------


def binding_of(table_expr: ast.TableExpr) -> str | None:
    if isinstance(table_expr, ast.TableRef):
        return table_expr.binding.lower()
    if isinstance(table_expr, ast.SubqueryRef):
        return table_expr.alias.lower()
    return None


def output_columns(table_expr: ast.TableExpr,
                   catalog) -> list[str] | None:
    """Lower-cased output column names of a FROM leaf, or ``None`` when
    they cannot be determined without compiling."""
    if isinstance(table_expr, ast.TableRef):
        if not catalog.has_table(table_expr.name):
            return None
        return [column.name.lower()
                for column in catalog.table(table_expr.name).schema.columns]
    if isinstance(table_expr, ast.SubqueryRef):
        return query_output_columns(table_expr.query, catalog)
    return None


def query_output_columns(query: ast.SelectQuery,
                         catalog) -> list[str] | None:
    core = query.core
    names: list[str] = []
    for item in core.items:
        if item.is_star:
            star: ast.Star = item.expr  # type: ignore[assignment]
            expanded = _expand_star_names(star, core.from_clause, catalog)
            if expanded is None:
                return None
            names.extend(expanded)
        else:
            names.append(item.output_name().lower())
    return names


def _expand_star_names(star: ast.Star,
                       from_clause: ast.TableExpr | None,
                       catalog) -> list[str] | None:
    if from_clause is None:
        return None
    leaves = from_leaves(from_clause)
    names: list[str] = []
    for leaf in leaves:
        leaf_binding = binding_of(leaf)
        if star.qualifier is not None \
                and leaf_binding != star.qualifier.lower():
            continue
        columns = output_columns(leaf, catalog)
        if columns is None:
            return None
        names.extend(columns)
    return names


def from_leaves(table_expr: ast.TableExpr) -> list[ast.TableExpr]:
    """The base relations of a FROM tree, left to right."""
    if isinstance(table_expr, ast.Join):
        return (from_leaves(table_expr.left)
                + from_leaves(table_expr.right))
    return [table_expr]


# ---------------------------------------------------------------------------
# Conjunct classification
# ---------------------------------------------------------------------------


def _contains_subquery(expr: ast.Expr) -> bool:
    return any(isinstance(node, (ast.InSubquery, ast.Exists,
                                 ast.ScalarSubquery))
               for node in ast.walk_expr(expr))


def referenced_bindings(expr: ast.Expr,
                        binding_columns: dict[str, list[str] | None]
                        ) -> frozenset[str] | None:
    """Bindings a conjunct touches; ``None`` = not safely relocatable
    (unknown/ambiguous column, outer reference or embedded subquery)."""
    if _contains_subquery(expr):
        return None
    touched: set[str] = set()
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.Star):
            return None
        if not isinstance(node, ast.ColumnRef):
            continue
        if node.qualifier is not None:
            binding = node.qualifier.lower()
            columns = binding_columns.get(binding)
            if columns is None or node.name.lower() not in columns:
                return None
            touched.add(binding)
        else:
            owners = [binding for binding, columns in binding_columns.items()
                      if columns is not None
                      and node.name.lower() in columns]
            if len(owners) != 1:
                return None
            touched.add(owners[0])
    return frozenset(touched)


# ---------------------------------------------------------------------------
# Pushdown and pruning
# ---------------------------------------------------------------------------


def null_safe_bindings(table_expr: ast.TableExpr,
                       under_nullable: bool = False) -> set[str]:
    """Bindings a WHERE predicate may be pushed onto: everything not on
    the nullable (right) side of a LEFT join."""
    if isinstance(table_expr, ast.Join):
        left = null_safe_bindings(table_expr.left, under_nullable)
        right = null_safe_bindings(
            table_expr.right,
            under_nullable or table_expr.join_type == "LEFT")
        return left | right
    binding = binding_of(table_expr)
    if binding is None or under_nullable:
        return set()
    return {binding}


def wrap_with_filter(leaf: ast.TableExpr,
                     conjuncts: list[ast.Expr]) -> ast.SubqueryRef:
    """``t`` -> ``(SELECT * FROM t WHERE p) AS t`` with the original
    binding preserved, so references above the join keep resolving."""
    binding = binding_of(leaf)
    assert binding is not None
    inner = ast.SelectQuery(core=ast.SelectCore(
        items=[ast.SelectItem(ast.Star(None), None)],
        from_clause=leaf,
        where=ast.conjoin(conjuncts)))
    return ast.SubqueryRef(inner, alias=binding)


def needed_columns(query: ast.SelectQuery,
                   binding: str,
                   columns: list[str],
                   exclude: ast.SelectQuery | None = None
                   ) -> set[str] | None:
    """Columns of *binding* the query reads anywhere; ``None`` = all
    (a star may expand to them, or a reference is ambiguous).

    *exclude* names a subtree to ignore — the derived table being
    pruned references all of its own columns internally, which must not
    count as outer reads.
    """
    needed: set[str] = set()
    column_set = set(columns)
    excluded: set[int] = set()
    if exclude is not None:
        excluded = {id(node) for node in ast.iter_query_nodes(exclude)}
    for node in ast.iter_query_nodes(query):
        if id(node) in excluded:
            continue
        if isinstance(node, ast.Star):
            if node.qualifier is None or node.qualifier.lower() == binding:
                return None
        if isinstance(node, ast.ColumnRef):
            if node.qualifier is not None:
                if node.qualifier.lower() == binding:
                    needed.add(node.name.lower())
            elif node.name.lower() in column_set:
                # Unqualified: conservatively assume it may be ours.
                needed.add(node.name.lower())
    return needed


def prune_wrapper_projection(wrapper: ast.SubqueryRef,
                             keep: Iterable[str]) -> bool:
    """Narrow a planner-generated ``SELECT *`` wrapper to *keep*."""
    inner = wrapper.query.core
    leaf = inner.from_clause
    binding = binding_of(leaf) if leaf is not None else None
    if binding is None or len(inner.items) != 1 \
            or not inner.items[0].is_star:
        return False
    keep_list = list(keep)
    if not keep_list:
        return False
    inner.items = [ast.SelectItem(ast.ColumnRef(name, binding), None)
                   for name in keep_list]
    return True


def prune_derived_projection(derived: ast.SubqueryRef,
                             needed: set[str]) -> bool:
    """Drop select items of a user-written derived table that the outer
    query never reads.  Only applies to shapes where dropping an item
    cannot change row counts or positional resolution."""
    query = derived.query
    core = query.core
    if query.is_compound or core.distinct or query.order_by:
        return False
    if core.group_by or core.having is not None:
        return False  # ordinals / alias targets could shift
    if any(item.is_star for item in core.items):
        return False
    from ..relational.aggregates import AGGREGATE_NAMES
    for item in core.items:
        for node in ast.walk_expr(item.expr):
            if isinstance(node, ast.FunctionCall) \
                    and node.name.upper() in AGGREGATE_NAMES:
                return False  # dropping could toggle aggregation
    kept = [item for item in core.items
            if item.output_name().lower() in needed]
    if not kept or len(kept) == len(core.items):
        return False
    if {item.output_name().lower() for item in kept} < needed:
        return False  # something needed is not among the items
    core.items = kept
    return True


def expand_star_items(core: ast.SelectCore, catalog) -> bool:
    """Replace ``*`` / ``alias.*`` select items with explicit qualified
    column references (so join re-ordering cannot permute the output).
    Returns False (leaving the core untouched) when a leaf's columns
    cannot be determined."""
    if core.from_clause is None:
        return False
    expanded: list[ast.SelectItem] = []
    for item in core.items:
        if not item.is_star:
            expanded.append(item)
            continue
        star: ast.Star = item.expr  # type: ignore[assignment]
        matched = False
        for leaf in from_leaves(core.from_clause):
            leaf_binding = binding_of(leaf)
            if leaf_binding is None:
                return False
            if star.qualifier is not None \
                    and leaf_binding != star.qualifier.lower():
                continue
            columns = output_columns(leaf, catalog)
            if columns is None:
                return False
            matched = True
            # Preserve the original (possibly aliased) qualifier casing.
            qualifier = (leaf.binding if isinstance(leaf, ast.TableRef)
                         else leaf.alias)
            expanded.extend(ast.SelectItem(ast.ColumnRef(name, qualifier),
                                           None)
                            for name in columns)
        if not matched:
            return False
    core.items = expanded
    return True
