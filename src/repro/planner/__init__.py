"""Cost-based query planning for the relational engine.

The planner turns a parsed SELECT into a cheaper, semantically
equivalent plan before compilation:

* :mod:`repro.planner.stats` — the statistics catalog (``ANALYZE``
  collection, incremental maintenance on DML, equi-width histograms);
* :mod:`repro.planner.estimate` — selectivity / cardinality estimation;
* :mod:`repro.planner.cost` — the physical cost model;
* :mod:`repro.planner.rewrite` — logical rewrites (constant folding,
  predicate pushdown, projection pruning);
* :mod:`repro.planner.joins` — join-order optimization (left-deep DP up
  to :attr:`PlannerOptions.dp_relation_limit` relations, greedy beyond)
  with a physical strategy — hash, index probe or nested loop — chosen
  per join;
* :mod:`repro.planner.plan` — the driver producing a
  :class:`PlannedStatement`, whose operator tree records estimated and
  (after execution) actual rows per operator.

The planner is wired into :class:`repro.relational.Database` (on by
default, see :class:`PlannerOptions`), which makes every layer above —
the SESQL engine's rewritten WHERE clauses, sessions, the federation
mediator's scratch database — benefit transparently.
"""

from .cost import CostModel, JoinChoice
from .estimate import (equality_selectivity, join_selectivity,
                       predicate_selectivity, range_selectivity)
from .explain import OperatorNode
from .options import PlannerOptions
from .plan import PlannedStatement, plan_select
from .stats import ColumnStats, Histogram, StatisticsCatalog, TableStats

__all__ = [
    "PlannerOptions", "PlannedStatement", "plan_select",
    "OperatorNode", "CostModel", "JoinChoice",
    "StatisticsCatalog", "TableStats", "ColumnStats", "Histogram",
    "predicate_selectivity", "equality_selectivity", "range_selectivity",
    "join_selectivity",
]
