"""A simple cost model over the executor's physical operators.

Costs are abstract "row visits" — good enough to rank join orders and
pick a physical join strategy.  Constants reflect the Python executor:
hashing a build side costs a bit more per row than streaming the probe
side, a per-row index lookup costs more than one dict probe (the
HashIndex copies its bucket and fetches rows by id), and nested loops
pay the full cross product.
"""

from __future__ import annotations

from dataclasses import dataclass

SCAN_COST_PER_ROW = 1.0
#: Columnar tables scan batch-at-a-time: the measured per-row cost of a
#: vectorized scan is a fraction of the row-at-a-time generator walk.
VECTORIZED_SCAN_FACTOR = 0.3
HASH_BUILD_PER_ROW = 1.6
HASH_PROBE_PER_ROW = 1.0
INDEX_PROBE_PER_LOOKUP = 3.0
NESTED_LOOP_PER_PAIR = 0.9
OUTPUT_COST_PER_ROW = 0.2


@dataclass(frozen=True)
class JoinChoice:
    """One costed physical alternative for a join step."""

    strategy: str          # 'hash' | 'index' | 'nested-loop'
    cost: float


class CostModel:
    """Rank scan and join alternatives by estimated row visits."""

    def scan_cost(self, rows: float, vectorized: bool = False) -> float:
        if vectorized:
            return rows * SCAN_COST_PER_ROW * VECTORIZED_SCAN_FACTOR
        return rows * SCAN_COST_PER_ROW

    def hash_join_cost(self, left_rows: float, right_rows: float,
                       out_rows: float) -> float:
        return (right_rows * HASH_BUILD_PER_ROW
                + left_rows * HASH_PROBE_PER_ROW
                + out_rows * OUTPUT_COST_PER_ROW)

    def index_join_cost(self, left_rows: float,
                        out_rows: float) -> float:
        # The inner side is never scanned or built: each outer row pays
        # one index lookup plus the matches it yields.
        return (left_rows * INDEX_PROBE_PER_LOOKUP
                + out_rows * (1.0 + OUTPUT_COST_PER_ROW))

    def nested_loop_cost(self, left_rows: float, right_rows: float,
                         out_rows: float) -> float:
        return (left_rows * right_rows * NESTED_LOOP_PER_PAIR
                + out_rows * OUTPUT_COST_PER_ROW)

    def choose_join(self, left_rows: float, right_rows: float,
                    out_rows: float, has_equi: bool,
                    index_available: bool) -> JoinChoice:
        """Cheapest strategy the executor can actually run."""
        if not has_equi:
            return JoinChoice("nested-loop", self.nested_loop_cost(
                left_rows, right_rows, out_rows))
        choices = [JoinChoice("hash", self.hash_join_cost(
            left_rows, right_rows, out_rows))]
        if index_available:
            choices.append(JoinChoice("index", self.index_join_cost(
                left_rows, out_rows)))
        return min(choices, key=lambda choice: choice.cost)
