"""LRU caches backing the session layer.

Two caches sit on the repeated-query hot path:

* :class:`PlanCache` — SESQL text → parsed :class:`EnrichedQuery`
  template (+ placeholder count).  Parsing is KB-independent, so the
  key is the raw text alone.
* :class:`ExtractionCache` — (kind, KB store id + generation,
  arguments) → SPARQL :class:`~repro.core.sqm.Extraction`.  Generations
  are per-store counters (see :mod:`repro.rdf.store`), so the key pairs
  each with the store's process-unique ``store_id``: a (store,
  generation) pair is never reused for different data, a stale entry
  can never be observed; it simply stops being requested and ages out
  of the LRU order.

Both expose ``hits`` / ``misses`` counters which ``explain()`` and the
E9 benchmark read.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable


class LRUCache:
    """A size-bounded mapping with move-to-front on access.

    ``maxsize <= 0`` disables the cache entirely (every ``get`` misses,
    ``put`` is a no-op) so callers never need a separate code path.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable) -> Any | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def stats(self) -> dict[str, int]:
        return {"size": len(self._entries), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses}


class PlanCache(LRUCache):
    """SESQL text → prepared plan template."""


class ExtractionCache(LRUCache):
    """KB-generation-keyed memo for SQM extraction results."""
