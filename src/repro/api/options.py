"""Per-session query defaults."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..analysis.diagnostics import AnalysisOptions


@dataclass(frozen=True)
class QueryOptions:
    """Session-wide defaults; ``execute`` accepts per-call overrides.

    ``include_original`` and ``join_strategy`` default to ``None`` =
    *defer to the engine* — important when a session wraps an engine
    that was already configured (e.g. ``repro.connect(engine)``).
    """

    #: Keep the original constant/condition alongside the enrichment
    #: (the "include original" semantics toggle of DESIGN.md).
    include_original: bool | None = None
    #: JoinManager strategy: "tempdb" (paper-faithful) or "direct".
    join_strategy: str | None = None
    #: Entries in the SESQL-text → parsed-template LRU (0 disables).
    plan_cache_size: int = 128
    #: Entries in the SPARQL-extraction memo LRU (0 disables).
    extraction_cache_size: int = 512
    #: Static-analysis behaviour at ``prepare()`` time: ``None`` means
    #: the defaults (analyze, attach diagnostics, never raise); pass
    #: ``AnalysisOptions(strict=True)`` to reject statements with
    #: errors, or ``AnalysisOptions(enabled=False)`` to skip analysis.
    analysis: AnalysisOptions | None = None

    def replace(self, **changes) -> "QueryOptions":
        return dataclasses.replace(self, **changes)
