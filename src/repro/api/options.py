"""Per-session query defaults."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class QueryOptions:
    """Session-wide defaults; ``execute`` accepts per-call overrides.

    ``include_original`` and ``join_strategy`` default to ``None`` =
    *defer to the engine* — important when a session wraps an engine
    that was already configured (e.g. ``repro.connect(engine)``).
    """

    #: Keep the original constant/condition alongside the enrichment
    #: (the "include original" semantics toggle of DESIGN.md).
    include_original: bool | None = None
    #: JoinManager strategy: "tempdb" (paper-faithful) or "direct".
    join_strategy: str | None = None
    #: Entries in the SESQL-text → parsed-template LRU (0 disables).
    plan_cache_size: int = 128
    #: Entries in the SPARQL-extraction memo LRU (0 disables).
    extraction_cache_size: int = 512

    def replace(self, **changes) -> "QueryOptions":
        return dataclasses.replace(self, **changes)
