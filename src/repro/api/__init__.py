"""The unified session API (DB-API-flavoured front door).

One entry point — :func:`connect` — covers every backend: a plain
databank, a per-user CroSSE context, or a federated mediator.  Sessions
add prepared queries with ``?`` parameters, an LRU plan cache, KB-
generation-keyed SPARQL extraction memoization, batching and
``explain()`` observability on top of the Fig. 6 pipeline.
"""

from ..analysis import AnalysisError, AnalysisOptions, AnalysisReport
from .cache import ExtractionCache, LRUCache, PlanCache
from .cursor import (Cursor, Page, decode_token, encode_token,
                     paginate_cursor, paginate_sequence)
from .errors import CursorTokenError, PoolTimeoutError, SessionError
from .options import QueryOptions
from .plan import PlanStage, QueryPlan
from .pool import SessionLease, SessionPool
from .prepared import PreparedQuery
from .session import PlatformSession, Session, connect

__all__ = [
    "connect", "Session", "PlatformSession", "PreparedQuery",
    "QueryOptions", "QueryPlan", "PlanStage",
    "PlanCache", "ExtractionCache", "LRUCache",
    "Cursor", "Page", "encode_token", "decode_token",
    "paginate_sequence", "paginate_cursor",
    "SessionPool", "SessionLease",
    "SessionError", "PoolTimeoutError", "CursorTokenError",
    "AnalysisError", "AnalysisOptions", "AnalysisReport",
]
