"""The unified session API (DB-API-flavoured front door).

One entry point — :func:`connect` — covers every backend: a plain
databank, a per-user CroSSE context, or a federated mediator.  Sessions
add prepared queries with ``?`` parameters, an LRU plan cache, KB-
generation-keyed SPARQL extraction memoization, batching and
``explain()`` observability on top of the Fig. 6 pipeline.
"""

from .cache import ExtractionCache, LRUCache, PlanCache
from .errors import SessionError
from .options import QueryOptions
from .plan import PlanStage, QueryPlan
from .prepared import PreparedQuery
from .session import PlatformSession, Session, connect

__all__ = [
    "connect", "Session", "PlatformSession", "PreparedQuery",
    "QueryOptions", "QueryPlan", "PlanStage",
    "PlanCache", "ExtractionCache", "LRUCache",
    "SessionError",
]
