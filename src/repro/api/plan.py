"""Structured query plans returned by ``Session.explain()``.

``explain()`` runs the *planning* stages of the Fig. 6 pipeline — parse
(or plan-cache recall), parameter binding, SPARQL extraction and the
WHERE rewrite — but, by default, never the databank query or the
combine join, so it is safe to call on expensive queries.  The plan
exposes exactly what an execution would do: the stage list, every
SPARQL text, the rewritten SQL, how many extractions were served from
cache, and the databank's cost-based operator tree with estimated rows
per operator.  ``explain(..., analyze=True)`` additionally runs the
databank stage with row counters attached, so every operator reports
estimated *and* actual rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PlanStage:
    """One step of the pipeline as it would run.

    SESQL sessions emit ``parse | bind | extract | rewrite | sql |
    combine`` stages; mediator sessions emit ``prune | materialize |
    sql``, where one ``materialize`` stage may carry a whole *batch* of
    fragments the federation executor ships in parallel.
    """

    name: str
    description: str
    queries: list[str] = field(default_factory=list)
    cached: bool = False      # served from a cache rather than computed

    def format(self) -> str:
        marker = " [cached]" if self.cached else ""
        lines = [f"{self.name}{marker}: {self.description}"]
        lines.extend(f"    {query}" for query in self.queries)
        return "\n".join(lines)


@dataclass
class QueryPlan:
    """What executing the statement would do, without doing it."""

    statement: str            # the SESQL text as given (placeholders intact)
    base_sql: str             # cleaned SQL part
    rewritten_sql: str        # SQL after the WHERE-enrichment rewrite
    join_strategy: str
    stages: list[PlanStage] = field(default_factory=list)
    sparql_queries: list[str] = field(default_factory=list)
    cache_hits: int = 0       # extractions recalled from the memo
    cache_misses: int = 0
    parse_cached: bool = False  # template came from the plan cache
    #: The databank's cost-based plan for the (rewritten) SQL stage — a
    #: :class:`repro.planner.PlannedStatement` whose operator tree
    #: carries estimated rows (and actual rows under ``analyze=True``).
    db_plan: object | None = None
    #: The static-analysis :class:`~repro.analysis.AnalysisReport` for
    #: the statement (``None`` when analysis is disabled).
    diagnostics: object | None = None

    def operators(self) -> list:
        """The databank plan's operator nodes, outermost first."""
        if self.db_plan is None:
            return []
        return list(self.db_plan.root.walk())

    def format(self) -> str:
        """Pretty multi-line rendering (EXPLAIN-style)."""
        lines = [f"plan for: {' '.join(self.statement.split())}"]
        for stage in self.stages:
            lines.append("  " + stage.format().replace("\n", "\n  "))
        if self.db_plan is not None:
            lines.append("  databank operators (est/actual rows):")
            lines.append("    "
                         + self.db_plan.format().replace("\n", "\n    "))
        if self.diagnostics is not None and len(self.diagnostics):
            lines.append("  diagnostics:")
            for diagnostic in self.diagnostics:
                lines.append("    " + diagnostic.format())
        lines.append(f"  cache: {self.cache_hits} hit(s), "
                     f"{self.cache_misses} miss(es)")
        return "\n".join(lines)
