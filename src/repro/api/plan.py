"""Structured query plans returned by ``Session.explain()``.

``explain()`` runs the *planning* stages of the Fig. 6 pipeline — parse
(or plan-cache recall), parameter binding, SPARQL extraction and the
WHERE rewrite — but never the databank query or the combine join, so it
is safe to call on expensive queries.  The plan exposes exactly what an
execution would do: the stage list, every SPARQL text, the rewritten
SQL and how many extractions were served from cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PlanStage:
    """One step of the pipeline as it would run."""

    name: str                 # parse | bind | extract | rewrite | sql | combine
    description: str
    queries: list[str] = field(default_factory=list)
    cached: bool = False      # served from a cache rather than computed

    def format(self) -> str:
        marker = " [cached]" if self.cached else ""
        lines = [f"{self.name}{marker}: {self.description}"]
        lines.extend(f"    {query}" for query in self.queries)
        return "\n".join(lines)


@dataclass
class QueryPlan:
    """What executing the statement would do, without doing it."""

    statement: str            # the SESQL text as given (placeholders intact)
    base_sql: str             # cleaned SQL part
    rewritten_sql: str        # SQL after the WHERE-enrichment rewrite
    join_strategy: str
    stages: list[PlanStage] = field(default_factory=list)
    sparql_queries: list[str] = field(default_factory=list)
    cache_hits: int = 0       # extractions recalled from the memo
    cache_misses: int = 0
    parse_cached: bool = False  # template came from the plan cache

    def format(self) -> str:
        """Pretty multi-line rendering (EXPLAIN-style)."""
        lines = [f"plan for: {' '.join(self.statement.split())}"]
        for stage in self.stages:
            lines.append("  " + stage.format().replace("\n", "\n  "))
        lines.append(f"  cache: {self.cache_hits} hit(s), "
                     f"{self.cache_misses} miss(es)")
        return "\n".join(lines)
