"""Session-layer errors."""

from __future__ import annotations

from ..core.errors import SesqlError


class SessionError(SesqlError):
    """Misuse of the session API (closed session, bad source, ...)."""


class PoolTimeoutError(SessionError):
    """No session became available within the checkout timeout."""


class CursorTokenError(SessionError):
    """A pagination token is malformed or belongs to another request."""
