"""Session-layer errors."""

from __future__ import annotations

from ..core.errors import SesqlError


class SessionError(SesqlError):
    """Misuse of the session API (closed session, bad source, ...)."""
