"""Cursor plumbing for the service layer.

Re-exports the relational :class:`~repro.relational.Cursor` (the
streaming result handle ``Session.stream`` returns) and implements the
**opaque pagination tokens** the versioned REST surface uses: a token
encodes the continuation state of a paginated request (offset plus a
signature binding it to the request it belongs to) as URL-safe base64
JSON.  Tokens are deliberately opaque to clients — they round-trip them
verbatim via ``next_token`` — but stateless for the server: no cursor
registry is kept between requests.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Sequence

from ..relational.result import Cursor
from .errors import CursorTokenError

__all__ = [
    "Cursor", "Page", "encode_token", "decode_token", "token_offset",
    "request_signature", "paginate_sequence", "paginate_cursor",
]


def encode_token(payload: dict[str, Any]) -> str:
    """Serialize a continuation payload into an opaque token."""
    raw = json.dumps(payload, separators=(",", ":"),
                     sort_keys=True).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def decode_token(token: str) -> dict[str, Any]:
    """Decode an opaque token; malformed input raises CursorTokenError."""
    if not isinstance(token, str) or not token:
        raise CursorTokenError(f"invalid cursor token {token!r}")
    padded = token + "=" * (-len(token) % 4)
    try:
        raw = base64.urlsafe_b64decode(padded.encode("ascii"))
        payload = json.loads(raw.decode("utf-8"))
    except (binascii.Error, UnicodeError, ValueError):
        raise CursorTokenError(f"invalid cursor token {token!r}") from None
    if not isinstance(payload, dict):
        raise CursorTokenError(f"invalid cursor token {token!r}")
    return payload


def request_signature(*parts: Any) -> str:
    """A short fingerprint binding a token to the request that made it.

    A token handed back with different request parameters (another
    query, another user) is rejected instead of silently paginating the
    wrong result.
    """
    canonical = json.dumps(parts, separators=(",", ":"), sort_keys=True,
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass
class Page:
    """One page of a paginated listing."""

    items: list
    next_token: str | None


def token_offset(token: str | None, signature: str) -> int:
    """The validated continuation offset a token carries (0 for none).

    Callers that open expensive resources (a streaming cursor holding
    the databank read lock) should validate the token *first* so a
    forged/expired token costs nothing.
    """
    if token is None:
        return 0
    payload = decode_token(token)
    if payload.get("sig") != signature:
        raise CursorTokenError(
            "cursor token does not belong to this request")
    offset = payload.get("offset")
    if not isinstance(offset, int) or isinstance(offset, bool) or offset < 0:
        raise CursorTokenError(f"invalid cursor token offset {offset!r}")
    return offset


def paginate_sequence(items: Sequence, limit: int,
                      token: str | None, signature: str) -> Page:
    """Offset-paginate a materialized sequence with opaque tokens."""
    offset = token_offset(token, signature)
    window = list(items[offset:offset + limit])
    next_token = None
    if offset + limit < len(items):
        next_token = encode_token({"offset": offset + limit,
                                   "sig": signature})
    return Page(window, next_token)


def paginate_cursor(cursor: Cursor, limit: int,
                    token: str | None, signature: str) -> Page:
    """Offset-paginate a streaming cursor.

    Pulls ``offset + limit + 1`` rows at most — the one-row lookahead
    decides whether a ``next_token`` is warranted — then closes the
    cursor, *whatever happens*: the cursor may hold a database read
    lock, so even a malformed token must not leak it.
    """
    try:
        offset = token_offset(token, signature)
        for _ in range(offset):
            if cursor.fetchone() is None:
                return Page([], None)
        rows = cursor.fetchmany(limit)
        more = cursor.fetchone() is not None
    finally:
        cursor.close()
    next_token = (encode_token({"offset": offset + limit, "sig": signature})
                  if more else None)
    return Page(rows, next_token)
