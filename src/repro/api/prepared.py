"""Prepared SESQL queries: parse once, bind and execute many times."""

from __future__ import annotations

from ..core.ast import EnrichedQuery
from ..core.errors import ParameterError
from ..core.sqp import bind_parameters, clone_enriched


class PreparedQuery:
    """A SESQL statement parsed once, executable with ``?`` parameters.

    Obtained from :meth:`repro.api.Session.prepare`.  The underlying
    template lives in the session's plan cache; every execution binds a
    fresh copy, so a prepared query can be reused (and shared) freely.
    """

    def __init__(self, session, text: str, template: EnrichedQuery,
                 parameter_count: int, from_cache: bool = False,
                 parse_time_s: float = 0.0, diagnostics=None) -> None:
        self._session = session
        self.text = text
        self._template = template
        self.parameter_count = parameter_count
        #: Whether ``prepare`` found the template in the plan cache.
        self.from_cache = from_cache
        #: Wall time the SQP spent parsing (0.0 on plan-cache hits);
        #: traced executions report it as a synthetic ``sesql.parse``
        #: span so the tree covers the whole pipeline.
        self.parse_time_s = parse_time_s
        #: The static-analysis :class:`~repro.analysis.AnalysisReport`
        #: for the template (computed once per template, shared across
        #: plan-cache hits), or ``None`` when analysis is disabled.
        self.diagnostics = diagnostics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PreparedQuery({self.text!r}, "
                f"parameters={self.parameter_count})")

    # -- binding ------------------------------------------------------------

    def bind(self, params=None) -> EnrichedQuery:
        """A private, parameter-substituted copy of the template."""
        values = tuple(params) if params is not None else ()
        if len(values) != self.parameter_count:
            raise ParameterError(
                f"query expects {self.parameter_count} parameter(s), "
                f"got {len(values)}")
        if not values:
            return clone_enriched(self._template)
        return bind_parameters(self._template, values)

    # -- execution ----------------------------------------------------------

    def execute(self, params=None, *, include_original=None,
                join_strategy=None):
        """Run the query; skips re-parsing and re-runs only stale SPARQL."""
        return self._session._execute_prepared(self, params, {
            "include_original": include_original,
            "join_strategy": join_strategy,
        })

    def execute_many(self, param_rows) -> list:
        """Execute once per parameter row, reusing the parsed template."""
        return [self.execute(row) for row in param_rows]

    def stream(self, params=None, *, include_original=None,
               join_strategy=None, page_size: int = 256):
        """Run lazily: a :class:`~repro.relational.Cursor` whose rows
        are produced as fetched, with SELECT enrichments combined one
        page at a time (see :meth:`repro.api.Session.stream`)."""
        return self._session._stream_prepared(self, params, {
            "include_original": include_original,
            "join_strategy": join_strategy,
        }, page_size=page_size)

    def explain(self, params=None, *, analyze: bool = False):
        """The :class:`~repro.api.QueryPlan`; by default nothing is
        executed.  ``analyze=True`` runs the databank stage so the
        operator tree reports actual rows alongside the estimates."""
        return self._session._explain_prepared(self, params,
                                               analyze=analyze)
