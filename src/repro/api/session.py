"""The unified session layer: one entry point for every query backend.

``repro.connect(...)`` hands out a :class:`Session` no matter what is
being queried — a plain databank, a CroSSE platform user context, or a
GAV mediator — mirroring how mediator-style systems put a single
federated query service in front of heterogeneous backends.

A session owns the two hot-path caches:

* the **plan cache** (SESQL text → parsed template), so repeated and
  prepared queries skip the SQP entirely;
* the **extraction cache** (KB generation → SPARQL results), so
  re-executions against an unchanged knowledge base skip re-running
  their extractions.

``prepare()`` returns a :class:`~repro.api.PreparedQuery` with DB-API
style ``?`` parameters, ``execute_many()`` batches, and ``explain()``
returns a structured :class:`~repro.api.QueryPlan` without running the
query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analysis import (AnalysisError, AnalysisReport, DEFAULT_OPTIONS,
                        analyze_enriched)
from ..core.ast import EnrichedQuery
from ..core.engine import SESQLEngine, SESQLResult
from ..core.sqp import expand_placeholders
from ..relational.render import render_query
from ..relational.result import ResultSet
from .cache import ExtractionCache, PlanCache
from .errors import SessionError
from .options import QueryOptions
from .plan import PlanStage, QueryPlan
from .prepared import PreparedQuery


@dataclass
class _CachedPlan:
    """Plan-cache entry: a parsed template plus its placeholder count.

    The static-analysis report rides along: analysis runs once per
    template (on the cache miss), so cache hits — the prepared hot
    path — pay nothing for diagnostics.
    """

    template: EnrichedQuery
    parameter_count: int
    analysis: AnalysisReport | None = None


class Session:
    """A stateful query session over one SESQL engine.

    Construct via :func:`repro.connect` (plain databank) or
    :meth:`PlatformSession.as_user` (per-user CroSSE context).  The old
    entry points — ``SESQLEngine.execute`` and
    ``CrossePlatform.run_sesql`` — remain supported; the latter now
    delegates here.
    """

    def __init__(self, engine: SESQLEngine,
                 options: QueryOptions | None = None,
                 kb_provider=None, on_result=None,
                 engine_factory=None) -> None:
        self.engine = engine
        self.options = options or QueryOptions()
        self.plan_cache = PlanCache(self.options.plan_cache_size)
        self._owns_extraction_cache = (
            engine.sqm.cache is None
            and self.options.extraction_cache_size > 0)
        if self._owns_extraction_cache:
            engine.sqm.cache = ExtractionCache(
                self.options.extraction_cache_size)
        #: Optional callable returning the KB to evaluate against; used
        #: by platform sessions so the *effective* KB (own + accepted
        #: statements) is re-resolved on every call.
        self._kb_provider = kb_provider
        #: Optional observer fed every SESQLResult (context tracking).
        self._on_result = on_result
        #: Optional zero-arg engine rebuilder; ``invalidate_engine``
        #: marks the current engine stale and the next query swaps in a
        #: fresh one (platform sessions use this so invalidation is
        #: O(1) and held sessions pick up registry changes lazily).
        self._engine_factory = engine_factory
        self._engine_stale = False
        #: The session-owned :class:`repro.durability.DurabilityManager`
        #: when ``connect(..., durability=...)`` switched durability on
        #: (None otherwise); closed together with the session.
        self.durability = None
        #: The :class:`repro.telemetry.Telemetry` bundle when observability
        #: is on (None otherwise — the default, and then every hot-path
        #: check is a single ``is None`` test).
        self.telemetry = None
        self._telemetry_user: str | None = None
        self._last_trace = None
        self._closed = False

    # -- plumbing -----------------------------------------------------------

    @property
    def databank(self):
        return self.engine.databank

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")
        self._ensure_engine()

    def _ensure_engine(self) -> None:
        if self._engine_stale and self._engine_factory is not None:
            self.engine = self._engine_factory()
            self._engine_stale = False
            if self.telemetry is not None:
                self.engine.attach_telemetry(self.telemetry)

    def attach_telemetry(self, telemetry, user: str | None = None) -> None:
        """Switch observability on (or off, with None) for this session.

        *telemetry* is anything :func:`repro.telemetry.create_telemetry`
        accepts — a :class:`~repro.telemetry.Telemetry` bundle (shareable
        across sessions), :class:`~repro.telemetry.TelemetryOptions`, or
        ``True`` for defaults.  *user* labels this session's per-query
        metrics (platform sessions pass the username).
        """
        from ..telemetry import create_telemetry
        tel = create_telemetry(telemetry)
        self.telemetry = tel
        self._telemetry_user = user
        self.engine.attach_telemetry(tel)

    def last_trace(self):
        """Root :class:`~repro.telemetry.Span` of this session's most
        recent traced query (None when telemetry is off or before the
        first query).  Streamed queries appear as soon as the stream
        starts; the root stays ``open`` until the cursor is drained."""
        return self._last_trace

    def invalidate_engine(self) -> None:
        """Mark the engine stale; the next query rebuilds it lazily."""
        self._engine_stale = True

    def _current_kb(self):
        if self._kb_provider is not None:
            return self._kb_provider()
        return self.engine.knowledge_base

    def close(self) -> None:
        """Release cached plans; further queries raise SessionError.

        Only caches this session created are cleared — an extraction
        cache the wrapped engine already carried (and may share with
        other callers) is left warm.
        """
        self.plan_cache.clear()
        if self._owns_extraction_cache:
            self.engine.sqm.cache.clear()
        if self.durability is not None:
            self.durability.close()
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss counters of both session caches."""
        extraction = self.engine.sqm.cache
        return {
            "plan_cache": self.plan_cache.stats(),
            "extraction_cache": (extraction.stats()
                                 if extraction is not None else {}),
        }

    # -- the DB-API-flavoured surface ------------------------------------------

    def prepare(self, text: str) -> PreparedQuery:
        """Parse once (or recall from the plan cache) and return a
        reusable prepared query with ``?`` parameter slots.

        The parsed template is also statically analyzed (name/scope
        resolution, type families, performance lints — see
        :mod:`repro.analysis`); the report is attached as
        ``PreparedQuery.diagnostics``.  Under
        ``QueryOptions(analysis=AnalysisOptions(strict=True))`` a
        report with errors raises :class:`~repro.analysis.AnalysisError`
        instead.  Analysis runs once per template: plan-cache hits
        reuse the stored report.
        """
        self._check_open()
        cached = self.plan_cache.get(text)
        from_cache = cached is not None
        parse_time = 0.0
        if cached is None:
            started = time.perf_counter()
            expanded, count = expand_placeholders(text)
            template = self.engine.parse(expanded)
            parse_time = time.perf_counter() - started
            cached = _CachedPlan(template, count,
                                 self._analyze_template(template))
            self.plan_cache.put(text, cached)
        analysis_options = self.options.analysis or DEFAULT_OPTIONS
        if analysis_options.strict and cached.analysis is not None \
                and cached.analysis.has_errors:
            raise AnalysisError(cached.analysis)
        return PreparedQuery(self, text, cached.template,
                             cached.parameter_count, from_cache=from_cache,
                             parse_time_s=parse_time,
                             diagnostics=cached.analysis)

    def _analyze_template(self, template: EnrichedQuery):
        options = self.options.analysis or DEFAULT_OPTIONS
        if not options.enabled:
            return None
        try:
            return analyze_enriched(template, self.engine.databank,
                                    options=options)
        except Exception:
            # Analysis is advisory: a crash in it must never take down
            # prepare() for a statement the engine would accept.
            return None

    def execute(self, text: str, params=None,
                include_original: bool | None = None,
                join_strategy: str | None = None) -> SESQLResult:
        """Run one SESQL query (goes through the plan cache)."""
        return self.prepare(text).execute(
            params, include_original=include_original,
            join_strategy=join_strategy)

    def query(self, text: str, params=None) -> ResultSet:
        """Execute and return just the enriched result rows."""
        return self.execute(text, params).result

    def stream(self, text: str, params=None, *,
               include_original: bool | None = None,
               join_strategy: str | None = None,
               page_size: int = 256):
        """Run one SESQL query lazily, returning a streaming
        :class:`~repro.relational.Cursor`.

        The SQL stage pulls from the databank on demand (``LIMIT k``
        stops after *k* rows) and SELECT enrichments are combined one
        page at a time.  The cursor holds the databank's read lock
        until exhausted or closed — drain it (or use ``with``) before
        mutating the databank from the same thread.
        """
        return self.prepare(text).stream(
            params, include_original=include_original,
            join_strategy=join_strategy, page_size=page_size)

    def execute_many(self, text: str, param_rows) -> list[SESQLResult]:
        """Execute the statement once per parameter row (single parse)."""
        return self.prepare(text).execute_many(param_rows)

    def explain(self, text: str, params=None,
                analyze: bool = False) -> QueryPlan:
        """Plan the query — stages, SPARQL, rewritten SQL and the
        databank operator tree with estimated rows.  ``analyze=True``
        also runs the databank stage so every operator reports actual
        rows next to its estimate."""
        return self.prepare(text).explain(params, analyze=analyze)

    # -- prepared-query internals ------------------------------------------------

    def _overrides(self, overrides: dict) -> tuple[bool | None, str | None]:
        """Per-call > session options > engine defaults (None = defer)."""
        include = overrides.get("include_original")
        if include is None:
            include = self.options.include_original
        strategy = overrides.get("join_strategy") \
            or self.options.join_strategy
        return include, strategy

    def _execute_prepared(self, prepared: PreparedQuery, params,
                          overrides: dict) -> SESQLResult:
        self._check_open()
        include, strategy = self._overrides(overrides)
        enriched = prepared.bind(params)
        tel = self.telemetry
        if tel is None:
            outcome = self.engine.execute_parsed(
                enriched, knowledge_base=self._current_kb(),
                include_original=include, join_strategy=strategy,
                reuse_ast=True)  # bind() already produced a private copy
            if self._on_result is not None:
                self._on_result(outcome)
            return outcome
        root = tel.tracer.start_root(
            "sesql.query", statement=prepared.text)
        try:
            with tel.tracer.activate(root):
                tel.tracer.record_synthetic(
                    "sesql.parse", prepared.parse_time_s,
                    cached=prepared.from_cache)
                outcome = self.engine.execute_parsed(
                    enriched, knowledge_base=self._current_kb(),
                    include_original=include, join_strategy=strategy,
                    reuse_ast=True)
                # Observer runs inside the root span: a context-feed's
                # journaled writes (and any snapshot they trigger) are
                # attributed to the query that caused them.
                if self._on_result is not None:
                    self._on_result(outcome)
        except BaseException as exc:
            root.finish(error=exc)
            self._last_trace = root
            tel.record_query(root, backend="sesql",
                             statement=prepared.text,
                             user=self._telemetry_user)
            raise
        root.finish()
        root.attrs["rows"] = len(outcome.result)
        self._last_trace = root
        tel.record_query(root, backend="sesql", statement=prepared.text,
                         user=self._telemetry_user,
                         rows=len(outcome.result))
        return outcome

    def _stream_prepared(self, prepared: PreparedQuery, params,
                         overrides: dict, page_size: int = 256):
        self._check_open()
        include, strategy = self._overrides(overrides)
        enriched = prepared.bind(params)
        tel = self.telemetry
        # Streamed executions bypass the on_result observer: the result
        # never materializes in one piece to observe.
        if tel is None:
            return self.engine.stream_parsed(
                enriched, knowledge_base=self._current_kb(),
                include_original=include, join_strategy=strategy,
                reuse_ast=True, page_size=page_size)
        root = tel.tracer.start_root(
            "sesql.stream", statement=prepared.text)
        try:
            with tel.tracer.activate(root):
                tel.tracer.record_synthetic(
                    "sesql.parse", prepared.parse_time_s,
                    cached=prepared.from_cache)
                inner = self.engine.stream_parsed(
                    enriched, knowledge_base=self._current_kb(),
                    include_original=include, join_strategy=strategy,
                    reuse_ast=True, page_size=page_size)
        except BaseException as exc:
            root.finish(error=exc)
            self._last_trace = root
            tel.record_query(root, backend="sesql-stream",
                             statement=prepared.text,
                             user=self._telemetry_user)
            raise
        self._last_trace = root
        return self._traced_cursor(tel, root, prepared.text, inner)

    def _traced_cursor(self, tel, root, statement: str, inner):
        """Wrap a streaming cursor so lazy execution stays in the trace.

        The root span is re-activated around every row pull (a plain
        ``with activate(...)`` spanning the generator's whole life would
        leak the context var into the consumer between pulls), and is
        finished — feeding the slow-query log with the true end-to-end
        drain time — when the stream is exhausted or closed.
        """
        from ..relational.result import Cursor
        tracer = tel.tracer

        def rows():
            source = iter(inner)
            try:
                while True:
                    with tracer.activate(root):
                        try:
                            row = next(source)
                        except StopIteration:
                            return
                    yield row
            finally:
                if root.open:
                    root.finish()
                    root.attrs["rows"] = inner.rows_yielded
                    tel.record_query(root, backend="sesql-stream",
                                     statement=statement,
                                     user=self._telemetry_user,
                                     rows=inner.rows_yielded)

        return Cursor(inner.columns, rows(), on_close=inner.close)

    def _explain_prepared(self, prepared: PreparedQuery, params,
                          analyze: bool = False) -> QueryPlan:
        self._check_open()
        include, strategy = self._overrides({})
        engine = self.engine
        if include is None:
            include = engine.include_original
        strategy = strategy or engine.join_strategy
        enriched = prepared.bind(params)
        kb = self._current_kb()
        cache = engine.sqm.cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0

        stages = [PlanStage(
            "parse", "SQP: split SESQL, strip tags, parse SQL + enrichments",
            [enriched.sql_text], cached=prepared.from_cache)]
        if prepared.parameter_count:
            stages.append(PlanStage(
                "bind", f"splice {prepared.parameter_count} typed "
                "parameter(s) into the AST"))

        sparql_queries: list[str] = []
        # Statement-level dedupe memo: every logical extraction still
        # gets its own plan stage and ``sparql_queries`` entry, but
        # duplicates execute once and report as cached.
        memo: dict = {}

        def extract_stage(enrichment):
            seen = cache.hits if cache is not None else 0
            deduped = engine.extraction_key(enrichment) in memo
            extraction = engine.extraction_for(enrichment, kb, memo)
            hit = deduped or (cache is not None and cache.hits > seen)
            sparql_queries.append(extraction.sparql)
            stages.append(PlanStage(
                "extract", f"SQM extraction for {enrichment.kind}",
                [extraction.sparql], cached=hit))
            return extraction

        where_plan = [(enrichment, extract_stage(enrichment))
                      for enrichment in enriched.where_enrichments()]
        rewriter = None
        if where_plan:
            rewriter = engine.apply_where_rewrites(enriched, where_plan,
                                                   include)
        try:
            rewritten_sql = render_query(enriched.query)
            # The databank's cost-based plan (estimates; plus actual
            # rows when analyze is requested).  Planned while the
            # extraction temp tables still exist, so enrichment-
            # injected predicates are estimated like any others.
            db_plan = None
            databank_explain = getattr(engine.databank, "explain", None)
            if databank_explain is not None:
                db_plan = databank_explain(enriched.query, analyze=analyze)
        finally:
            if rewriter is not None:
                rewriter.cleanup()
        if where_plan:
            stages.append(PlanStage(
                "rewrite", "tagged conditions rewritten over extraction "
                "temp tables", [rewritten_sql]))
        stages.append(PlanStage(
            "sql", ("databank executed the (rewritten) SQL [analyze]"
                    if analyze else
                    "databank executes the (rewritten) SQL"),
            [rewritten_sql]))

        select_enrichments = enriched.select_enrichments()
        for enrichment in select_enrichments:
            extract_stage(enrichment)
        if select_enrichments:
            stages.append(PlanStage(
                "combine", f"JoinManager folds {len(select_enrichments)} "
                f"SELECT enrichment(s) [{strategy} strategy]"))

        return QueryPlan(
            statement=prepared.text,
            base_sql=enriched.sql_text,
            rewritten_sql=rewritten_sql,
            join_strategy=strategy,
            stages=stages,
            sparql_queries=sparql_queries,
            cache_hits=(cache.hits - hits_before
                        if cache is not None else 0),
            cache_misses=(cache.misses - misses_before
                          if cache is not None else 0),
            parse_cached=prepared.from_cache,
            db_plan=db_plan,
            diagnostics=prepared.diagnostics,
        )


class PlatformSession:
    """Session factory over a :class:`~repro.crosse.CrossePlatform`.

    ``as_user`` hands out one cached :class:`Session` (hence one cached
    engine) per user, instead of the historical engine-per-call;
    statement acceptance and annotation invalidate the user's entry.
    """

    def __init__(self, platform, options: QueryOptions | None = None) -> None:
        self.platform = platform
        self.options = options or QueryOptions()
        self._users: dict[str, Session] = {}
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def as_user(self, username: str) -> Session:
        """The user-scoped session (own + accepted statements context).

        A cached session the caller closed (e.g. by using it as a
        context manager) is transparently replaced with a fresh one.
        """
        if self._closed:
            raise SessionError("platform session is closed")
        self.platform.users.get(username)
        session = self._users.get(username)
        if session is None or session._closed:
            session = self._build(username)
            self._users[username] = session
        session._ensure_engine()
        # Platform telemetry may be switched on (or swapped) after this
        # session was built; keep the cached session in sync.
        telemetry = getattr(self.platform, "telemetry", None)
        if session.telemetry is not telemetry:
            session.attach_telemetry(telemetry, user=username)
        return session

    def _build_engine(self, username: str) -> SESQLEngine:
        platform = self.platform
        return SESQLEngine(
            platform.databank,
            knowledge_base=platform.statements.effective_kb(username),
            mapping=platform.mapping,
            stored_queries=platform._registry_for(username),
            include_original=bool(self.options.include_original),
            join_strategy=self.options.join_strategy or "tempdb",
            extraction_cache=ExtractionCache(
                self.options.extraction_cache_size),
        )

    def _build(self, username: str) -> Session:
        platform = self.platform
        session = Session(
            self._build_engine(username), self.options,
            kb_provider=lambda: platform.statements.effective_kb(username),
            on_result=lambda outcome: platform._feed_context(username,
                                                             outcome),
            engine_factory=lambda: self._build_engine(username))
        telemetry = getattr(platform, "telemetry", None)
        if telemetry is not None:
            session.attach_telemetry(telemetry, user=username)
        return session

    def invalidate(self, username: str | None = None) -> None:
        """Mark cached per-user engines stale (all of them when no name).

        Handed-out :class:`Session` / prepared-query objects stay
        usable: the engine is rebuilt lazily on the user's next query
        (fresh stored-query registry snapshot and extraction cache)
        rather than the session being closed under the caller — and
        users who never query again cost nothing.
        """
        if username is None:
            for session in self._users.values():
                session.invalidate_engine()
            return
        session = self._users.get(username)
        if session is not None:
            session.invalidate_engine()

    def close(self) -> None:
        """Close every cached session; the platform stops tracking a
        closed session (and replaces it, if it was the shared one)."""
        for session in self._users.values():
            session.close()
        self._users.clear()
        self._closed = True


def _reject_durability(durability, kind: str, hint: str) -> None:
    if durability is not None:
        raise SessionError(
            f"durability does not apply when connecting a {kind}; {hint}")


def _enable_durability(durability, databank, knowledge_base):
    """Attach a manager to the databank (+ KB store) and recover."""
    from ..durability import DurabilityManager
    manager = (durability if isinstance(durability, DurabilityManager)
               else DurabilityManager(durability))
    manager.attach_database(databank)
    if knowledge_base is not None and hasattr(knowledge_base, "add_all"):
        manager.attach_store(knowledge_base, name="kb")
    manager.recover()
    return manager


def _reject_telemetry(telemetry, kind: str, hint: str) -> None:
    if telemetry is not None:
        raise SessionError(
            f"telemetry= does not apply when connecting a {kind}; {hint}")


def connect(source, options: QueryOptions | None = None,
            knowledge_base=None, mapping=None, stored_queries=None,
            durability=None, telemetry=None, **option_overrides):
    """The one entry point: a session over whatever *source* is.

    * :class:`~repro.relational.Database` — a plain databank; pass
      ``knowledge_base`` / ``mapping`` / ``stored_queries`` to wire the
      SESQL engine.
    * :class:`~repro.core.SESQLEngine` — wrap an existing engine.
    * :class:`~repro.crosse.CrossePlatform` — returns the platform's
      shared :class:`PlatformSession`; use ``.as_user(name)``.
    * :class:`~repro.federation.Mediator` — returns a
      :class:`~repro.federation.MediatorSession` over the global schema.
    * :class:`~repro.cluster.ClusterCoordinator` — returns a
      :class:`~repro.cluster.ClusterSession` routing per-user queries
      to the owning shard of a multi-process cluster.

    *durability* (a :class:`repro.durability.DurabilityOptions`, or a
    directory path) switches on write-ahead logging + snapshots for a
    plain-Database connection: the databank (and the given
    ``knowledge_base`` triple store, when one is passed) is attached,
    prior state in the directory is recovered, and an already-populated
    stack over a fresh directory gets an immediate baseline snapshot.
    When prior state exists the attached components must be empty —
    construct a fresh ``Database()`` (and empty store) and let recovery
    repopulate them.  The manager closes with the session and is
    reachable as ``session.durability``.  For a CroSSE platform, pass
    durability to the :class:`~repro.crosse.CrossePlatform` constructor
    instead.

    *telemetry* (a :class:`repro.telemetry.TelemetryOptions`, ``True``
    for defaults, or a shared :class:`repro.telemetry.Telemetry` bundle)
    switches on metrics + query tracing + the slow-query log for
    Database / SESQLEngine / Mediator connections; it is wired through
    every layer the session touches and reachable as
    ``session.telemetry``.  For a CroSSE platform, pass telemetry to
    the :class:`~repro.crosse.CrossePlatform` constructor instead.

    Keyword overrides (``join_strategy="direct"``, ...) build a
    :class:`QueryOptions` on the fly.
    """
    if option_overrides:
        options = (options or QueryOptions()).replace(**option_overrides)
    engine_wiring = any(value is not None for value
                        in (knowledge_base, mapping, stored_queries))

    def reject_wiring(kind: str) -> None:
        if engine_wiring:
            raise SessionError(
                "knowledge_base/mapping/stored_queries only apply when "
                f"connecting a plain Database; configure the {kind} "
                "directly instead")

    from ..relational.engine import Database
    if isinstance(source, SESQLEngine):
        reject_wiring("engine")
        _reject_durability(durability, "SESQLEngine",
                           "connect its Database instead")
        session = Session(source, options)
        if telemetry is not None:
            session.attach_telemetry(telemetry)
        return session
    if isinstance(source, Database):
        resolved = options or QueryOptions()
        engine = SESQLEngine(
            source, knowledge_base=knowledge_base, mapping=mapping,
            stored_queries=stored_queries,
            include_original=bool(resolved.include_original),
            join_strategy=resolved.join_strategy or "tempdb",
            extraction_cache=ExtractionCache(
                resolved.extraction_cache_size))
        session = Session(engine, resolved)
        if telemetry is not None:
            session.attach_telemetry(telemetry)
        if durability is not None:
            session.durability = _enable_durability(
                durability, source, knowledge_base)
            if session.telemetry is not None:
                session.durability.attach_telemetry(session.telemetry)
        return session

    from ..crosse.platform import CrossePlatform
    if isinstance(source, CrossePlatform):
        reject_wiring("platform")
        _reject_durability(
            durability, "CrossePlatform",
            "pass it to the CrossePlatform constructor instead")
        _reject_telemetry(
            telemetry, "CrossePlatform",
            "pass it to the CrossePlatform constructor instead")
        return source.connect(options)

    from ..federation.mediator import Mediator
    if isinstance(source, Mediator):
        reject_wiring("mediator")
        _reject_durability(durability, "Mediator",
                           "make each fragment database durable instead")
        if options is not None:
            raise SessionError(
                "QueryOptions do not apply to mediator sessions (no "
                "SESQL pipeline); call mediator.connect() directly")
        mediator_session = source.connect()
        if telemetry is not None:
            from ..telemetry import create_telemetry
            tel = create_telemetry(telemetry)
            if tel is not None:
                mediator_session.attach_telemetry(tel)
        return mediator_session

    from ..cluster.coordinator import ClusterCoordinator
    if isinstance(source, ClusterCoordinator):
        reject_wiring("cluster")
        _reject_durability(
            durability, "ClusterCoordinator",
            "the coordinator's primary already owns the WAL")
        _reject_telemetry(
            telemetry, "ClusterCoordinator",
            "pass it to the ClusterCoordinator constructor instead")
        if options is not None:
            raise SessionError(
                "QueryOptions do not apply to cluster sessions (each "
                "shard resolves its own); call coordinator.connect()")
        return source.connect()

    raise SessionError(
        f"cannot open a session over {type(source).__name__}; expected a "
        "Database, SESQLEngine, CrossePlatform, Mediator or "
        "ClusterCoordinator")
