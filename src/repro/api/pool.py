"""A capacity-bounded pool of query sessions.

The REST facade (and any multi-threaded embedder) serves many users at
once; building a session stack per request would rebuild engines and
caches every time, and handing every thread the same session would
serialize them on its mutable state.  :class:`SessionPool` sits in
between: a fixed number of *slots*, each holding a warm session stack,
checked out per request and returned afterwards.

* Over a :class:`~repro.crosse.CrossePlatform`, each slot is an
  independent :class:`~repro.api.PlatformSession` (registered with the
  platform, so KB/registry invalidation reaches pooled engines too) and
  ``checkout(username)`` yields that slot's per-user session.
* Over a plain :class:`~repro.relational.Database` or
  :class:`~repro.core.SESQLEngine`, each slot is a plain
  :class:`~repro.api.Session` and ``checkout()`` takes no username.

``checkout`` blocks while every slot is in use and raises
:class:`~repro.api.PoolTimeoutError` after *timeout* seconds, bounding
queueing time under overload instead of letting it grow without limit.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from .errors import PoolTimeoutError, SessionError
from .options import QueryOptions


class SessionLease:
    """A checked-out session; releasing returns the slot to the pool.

    Usable as a context manager (``with pool.checkout(user) as session``)
    or manually via ``.session`` + ``.release()``.  Release is
    idempotent.
    """

    def __init__(self, pool: "SessionPool", slot: Any, session: Any) -> None:
        self._pool = pool
        self._slot = slot
        self.session = session
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._pool._release(self._slot)

    def __enter__(self):
        return self.session

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.release()
        except Exception:
            pass


class SessionPool:
    """Check out per-user sessions under a fixed capacity."""

    def __init__(self, source: Any, capacity: int = 8,
                 options: QueryOptions | None = None,
                 telemetry=None) -> None:
        if capacity < 1:
            raise SessionError(
                f"pool capacity must be positive, got {capacity}")
        from ..crosse.platform import CrossePlatform
        self._source = source
        self._is_platform = isinstance(source, CrossePlatform)
        self.capacity = capacity
        self._options = options
        self._cond = threading.Condition()
        self._idle: list[Any] = []      # warm slots awaiting checkout
        self._in_use = 0
        self._closed = False
        #: Counters surfaced by :meth:`stats`.
        self.checkouts = 0
        self.timeouts = 0
        self.peak_in_use = 0
        #: Callers currently blocked waiting for a slot.
        self._waiting = 0
        #: Telemetry hook (duck-typed): checkout wait time, occupancy
        #: and timeout counts fold into the shared registry.
        self.telemetry = None
        if telemetry is None and self._is_platform:
            telemetry = getattr(source, "telemetry", None)
        self.attach_telemetry(telemetry)

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        if telemetry is None:
            return
        metrics = telemetry.metrics
        self._tm_wait = metrics.histogram(
            "repro_pool_checkout_wait_seconds",
            "Time callers waited for a free session-pool slot")
        self._tm_in_use = metrics.gauge(
            "repro_pool_in_use", "Session-pool slots currently leased")
        self._tm_checkouts = metrics.counter(
            "repro_pool_checkouts_total", "Session-pool checkouts")
        self._tm_timeouts = metrics.counter(
            "repro_pool_timeouts_total",
            "Checkouts abandoned after the timeout")
        self._tm_exhausted = metrics.counter(
            "repro_pool_exhausted_total",
            "Checkouts that found every slot leased and had to wait "
            "or time out")

    # -- slot construction ----------------------------------------------------

    def _build_slot(self) -> Any:
        if self._is_platform:
            # A non-None options object forces an independent
            # PlatformSession (the shared default one is single-slot);
            # the platform registers it for KB/registry invalidation.
            return self._source.connect(self._options or QueryOptions())
        from .session import Session, connect
        if isinstance(self._source, Session):
            raise SessionError(
                "pool over a single Session makes no sense; pass the "
                "Database, SESQLEngine or CrossePlatform instead")
        return connect(self._source, self._options)

    # -- checkout / release ---------------------------------------------------

    def checkout(self, username: str | None = None,
                 timeout: float | None = 30.0) -> SessionLease:
        """A session lease, blocking up to *timeout* s for a free slot."""
        if username is not None and not self._is_platform:
            raise SessionError(
                "per-user checkout requires a CrossePlatform-backed pool")
        if username is None and self._is_platform:
            raise SessionError(
                "platform-backed pools check out per-user sessions; "
                "pass username")
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        tel = self.telemetry
        started = time.perf_counter() if tel is not None else 0.0
        with self._cond:
            exhausted = False
            while True:
                if self._closed:
                    raise SessionError("session pool is closed")
                if self._in_use < self.capacity:
                    break
                if not exhausted:
                    # Counted once per checkout, not once per wakeup:
                    # the metric reads "checkouts that hit a full pool".
                    exhausted = True
                    self._waiting += 1
                    if tel is not None:
                        self._tm_exhausted.inc()
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    self._waiting -= 1
                    self.timeouts += 1
                    if tel is not None:
                        self._tm_timeouts.inc()
                    raise PoolTimeoutError(
                        f"no session available within {timeout}s "
                        f"(capacity {self.capacity}, "
                        f"{self._in_use} leased, "
                        f"{self._waiting} other caller(s) waiting)")
                try:
                    self._cond.wait(remaining)
                except BaseException:
                    self._waiting -= 1
                    raise
            if exhausted:
                self._waiting -= 1
            self._in_use += 1
            self.checkouts += 1
            self.peak_in_use = max(self.peak_in_use, self._in_use)
            if tel is not None:
                self._tm_wait.observe(time.perf_counter() - started)
                self._tm_checkouts.inc()
                self._tm_in_use.set(self._in_use)
            slot = self._idle.pop() if self._idle else None
        if slot is None:
            try:
                slot = self._build_slot()
            except BaseException:
                self._release(None)
                raise
        try:
            session = (slot.as_user(username) if self._is_platform
                       else slot)
        except BaseException:
            # e.g. an unknown username: the slot itself is healthy, so
            # hand it back instead of leaking capacity.
            self._release(slot)
            raise
        return SessionLease(self, slot, session)

    def _release(self, slot: Any) -> None:
        with self._cond:
            self._in_use -= 1
            if self.telemetry is not None:
                self._tm_in_use.set(self._in_use)
            if slot is not None and not self._closed:
                self._idle.append(slot)
            elif slot is not None:
                slot.close()
            self._cond.notify()

    # -- lifecycle / observability --------------------------------------------

    def close(self) -> None:
        """Close idle slots and refuse further checkouts.

        Outstanding leases stay usable; their slots are closed when
        released.
        """
        with self._cond:
            self._closed = True
            idle, self._idle = self._idle, []
            self._cond.notify_all()
        for slot in idle:
            slot.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {
                "capacity": self.capacity,
                "in_use": self._in_use,
                "idle": len(self._idle),
                "waiting": self._waiting,
                "checkouts": self.checkouts,
                "timeouts": self.timeouts,
                "peak_in_use": self.peak_in_use,
            }
