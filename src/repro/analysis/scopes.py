"""Name scopes for the query analyzer.

The executor resolves column references innermost-out over a list of
:class:`~repro.relational.schema.RowSchema` scopes
(:func:`repro.relational.compiler.resolve_column`); this module mirrors
that resolution without compiling anything, and adds the one thing a
*static* pass needs that the executor does not: an **open** scope.  A
scope is open when the analyzer cannot enumerate its columns — the FROM
item names a table that is not in the catalog (already reported as
``E-UNKNOWN-TABLE``), or a derived table whose own analysis was
inconclusive.  Resolution against a chain containing an open scope
never *fails*: a name we cannot find might well live in the table we
cannot see, and the analyzer must not invent errors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from ..relational.types import DataType

#: DataType → comparison family, as the vector kernels partition types.
FAMILY = {
    DataType.INTEGER: "num",
    DataType.REAL: "num",
    DataType.TEXT: "str",
    DataType.BOOLEAN: "bool",
}

#: Sentinel literals standing in for ``?`` placeholders in prepared
#: templates (see :mod:`repro.core.sqp`).  Their eventual type is the
#: bound parameter's, so the analyzer treats them as family-unknown.
PARAM_SENTINEL_RE = re.compile(r"\A__sesql_param_\d+__\Z")


def is_param_sentinel(value: Any) -> bool:
    return isinstance(value, str) and bool(PARAM_SENTINEL_RE.match(value))


def literal_family(value: Any) -> str | None:
    """The family of a literal: num/str/bool, "null", or None (unknown)."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        if is_param_sentinel(value):
            return None
        return "str"
    return None


@dataclass
class ScopeColumn:
    """One visible column: display name, binding qualifier, family."""

    name: str
    qualifier: str | None = None
    family: str | None = None

    def matches(self, name: str, qualifier: str | None) -> bool:
        # Mirrors ResultColumn.matches exactly.
        if name.lower() != self.name.lower():
            return False
        if qualifier is None:
            return True
        return (self.qualifier or "").lower() == qualifier.lower()


@dataclass
class Scope:
    """The columns one nesting level makes visible."""

    columns: list[ScopeColumn] = field(default_factory=list)
    #: True when the scope may contain columns we cannot enumerate.
    open: bool = False

    def find(self, name: str, qualifier: str | None) -> list[int]:
        return [i for i, column in enumerate(self.columns)
                if column.matches(name, qualifier)]

    def bindings(self) -> set[str]:
        return {(column.qualifier or "").lower()
                for column in self.columns if column.qualifier}


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one column reference."""

    status: str                 # "ok" | "unknown" | "ambiguous" | "open"
    family: str | None = None


def resolve(ref, scopes: list[Scope]) -> Resolution:
    """Mirror ``resolve_column``: innermost-out, ambiguity per level.

    With an open scope anywhere in the chain, a failed lookup returns
    ``open`` (no finding) — the missing name may belong to the table the
    analyzer cannot see, and the executor will have rejected the unknown
    table itself already.
    """
    any_open = any(scope.open for scope in scopes)
    for depth in range(len(scopes) - 1, -1, -1):
        matches = scopes[depth].find(ref.name, ref.qualifier)
        if len(matches) > 1:
            if any_open:
                return Resolution("open")
            return Resolution("ambiguous")
        if matches:
            return Resolution("ok",
                              scopes[depth].columns[matches[0]].family)
    if any_open:
        return Resolution("open")
    return Resolution("unknown")
