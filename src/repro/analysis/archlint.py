"""Architecture linter for the ``repro`` source tree.

The codebase keeps a strict layering DAG — the storage engines
(``relational``, ``rdf``) know nothing about the layers above them,
``core`` builds only on the engines, and the operational subsystems
(``telemetry``, ``durability``, ``cluster``) integrate through
duck-typed hook attributes rather than imports.  Nothing in the
*runtime* enforces that; this module does, by walking every file's
``ast`` and checking three rule families:

``layering``
    A module-level import may only target packages listed for the
    importing package in the layering table.  Function-scope (lazy)
    imports get an extra per-package allowance — that is how the
    intentional back-edges (``api`` → ``cluster``, ``relational`` →
    ``planner``) stay cycle-free at import time.  The *observed*
    module-level graph is additionally checked to be acyclic, so even
    a mis-edited config cannot silently admit a cycle.

``hooks``
    ``telemetry`` and ``durability`` are wired in via hook objects;
    importing them at module level is reserved for the packages that
    own the wiring (``cluster``).  Everyone else must import lazily
    inside the enable/attach call.

``locks``
    ``Table.insert_row`` / ``update_row`` / ``delete_row`` assume the
    caller holds the databank's write lock, so calls may appear only
    at the whitelisted choke points (``relational/engine.py``,
    ``relational/table.py``).

Defaults live in :data:`DEFAULT_CONFIG`; a ``[tool.repro.archlint]``
table in ``pyproject.toml`` overrides them key by key.  Run as
``python -m repro.analysis.archlint [src/repro]``; exit status 1 when
violations are found.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path

#: The shipped architecture contract.  ``layers`` maps each package (or
#: top-level module) to the packages it may import at module level;
#: ``lazy-layers`` adds targets allowed only from function scope.
DEFAULT_CONFIG: dict = {
    "exempt": ["__init__.py"],           # repro/__init__.py re-exports
    "layers": {
        "rwlock": [],
        "telemetry": [],
        "relational": ["rwlock"],
        "rdf": ["rwlock"],
        "sparql": ["rdf"],
        "planner": ["relational"],
        "smartground": ["relational", "rdf"],
        "analysis": ["relational"],
        "core": ["relational", "rdf", "sparql"],
        "api": ["analysis", "core", "relational"],
        "crosse": ["api", "core", "rdf", "relational"],
        "federation": ["analysis", "api", "core", "crosse", "planner",
                       "rdf", "relational"],
        "durability": ["core", "crosse", "federation", "rdf",
                       "relational"],
        "cluster": ["api", "crosse", "durability", "federation", "rdf",
                    "relational", "telemetry"],
        "workloads": ["core", "crosse", "rdf", "relational",
                      "smartground"],
    },
    "lazy-layers": {
        "relational": ["planner"],
        "analysis": ["core", "federation", "smartground", "sparql"],
        "api": ["cluster", "crosse", "durability", "federation",
                "telemetry"],
        "crosse": ["durability", "telemetry"],
    },
    "hook-modules": ["telemetry", "durability"],
    "hook-importers": ["cluster", "telemetry", "durability"],
    "mutator-methods": ["insert_row", "update_row", "delete_row"],
    "mutator-files": ["relational/engine.py", "relational/table.py"],
}


@dataclass(frozen=True)
class Violation:
    """One architecture-rule breach at a concrete source location."""

    file: str
    line: int
    rule: str      # 'layering' | 'layering-cycle' | 'hooks' | 'locks'
    message: str

    def format(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


def load_config(pyproject: Path | None = None) -> dict:
    """The default contract, overridden by ``[tool.repro.archlint]``."""
    config = {key: (dict(value) if isinstance(value, dict)
                    else list(value))
              for key, value in DEFAULT_CONFIG.items()}
    if pyproject is None or not pyproject.is_file():
        return config
    import tomllib
    table = (tomllib.loads(pyproject.read_text())
             .get("tool", {}).get("repro", {}).get("archlint", {}))
    for key, value in table.items():
        if isinstance(value, dict) and isinstance(config.get(key), dict):
            config[key].update(value)
        else:
            config[key] = value
    return config


@dataclass(frozen=True)
class _ImportEdge:
    target: str    # repro-internal package / top-level module name
    line: int
    lazy: bool     # inside a function body (or TYPE_CHECKING block)


def _edges(tree: ast.Module, package: str) -> list[_ImportEdge]:
    """Repro-internal import edges in *tree*, tagged lazy or not."""
    edges: list[_ImportEdge] = []

    def target_of(node: ast.stmt) -> list[tuple[str, int]]:
        found = []
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 2 or (node.level == 1 and not package):
                found.append((module.split(".")[0], node.lineno))
            elif node.level == 0 and module.split(".")[0] == "repro":
                parts = module.split(".")
                if len(parts) > 1:
                    found.append((parts[1], node.lineno))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    found.append((parts[1], node.lineno))
        return found

    def visit(body: list[ast.stmt], lazy: bool) -> None:
        for node in body:
            for target, line in target_of(node):
                if target and target != package:
                    edges.append(_ImportEdge(target, line, lazy))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(node.body, True)
            elif isinstance(node, ast.If):
                guarded = "TYPE_CHECKING" in ast.dump(node.test)
                visit(node.body, lazy or guarded)
                visit(node.orelse, lazy)
            elif isinstance(node, (ast.ClassDef, ast.Try, ast.With,
                                   ast.For, ast.While)):
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.stmt):
                        visit([child], lazy)

    visit(tree.body, False)
    return edges


def _find_cycle(graph: dict) -> list[str] | None:
    """A module-level import cycle in *graph*, or ``None``."""
    state: dict[str, int] = {}     # 1 = on stack, 2 = done
    stack: list[str] = []

    def dfs(node: str) -> list[str] | None:
        state[node] = 1
        stack.append(node)
        for neighbour in sorted(graph.get(node, ())):
            if state.get(neighbour) == 1:
                return stack[stack.index(neighbour):] + [neighbour]
            if state.get(neighbour) is None:
                cycle = dfs(neighbour)
                if cycle:
                    return cycle
        stack.pop()
        state[node] = 2
        return None

    for node in sorted(graph):
        if state.get(node) is None:
            cycle = dfs(node)
            if cycle:
                return cycle
    return None


def check_tree(root: Path, config: dict | None = None) -> list[Violation]:
    """Lint every ``.py`` file under *root* (the ``repro`` package)."""
    config = config or load_config()
    violations: list[Violation] = []
    observed: dict[str, set] = {}
    layers = config["layers"]
    lazy_layers = config["lazy-layers"]
    hook_modules = set(config["hook-modules"])
    hook_importers = set(config["hook-importers"])
    mutators = set(config["mutator-methods"])
    mutator_files = set(config["mutator-files"])

    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative in config["exempt"]:
            continue
        package = relative.split("/")[0]
        if package.endswith(".py"):       # top-level module (rwlock.py)
            package = package[:-3]
        tree = ast.parse(path.read_text(), filename=str(path))

        allowed = set(layers.get(package, ()))
        allowed_lazy = allowed | set(lazy_layers.get(package, ()))
        for edge in _edges(tree, package):
            if not edge.lazy:
                observed.setdefault(package, set()).add(edge.target)
            ok = edge.target in (allowed_lazy if edge.lazy else allowed)
            if not ok:
                how = "lazily import" if edge.lazy else "import"
                violations.append(Violation(
                    relative, edge.line, "layering",
                    f"package '{package}' may not {how} "
                    f"'{edge.target}'"))
            if (edge.target in hook_modules and not edge.lazy
                    and package not in hook_importers):
                violations.append(Violation(
                    relative, edge.line, "hooks",
                    f"'{edge.target}' integrates via hook attributes; "
                    f"import it lazily where the hook is attached"))

        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in mutators
                    and relative not in mutator_files):
                violations.append(Violation(
                    relative, node.lineno, "locks",
                    f".{node.func.attr}() assumes the write lock is "
                    f"held; call it only from "
                    f"{sorted(mutator_files)}"))

    cycle = _find_cycle(observed)
    if cycle:
        violations.append(Violation(
            str(root), 0, "layering-cycle",
            "module-level import cycle: " + " -> ".join(cycle)))
    violations.sort(key=lambda v: (v.file, v.line))
    return violations


def _discover_pyproject(root: Path) -> Path | None:
    for candidate in [root, *root.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.archlint",
        description="Check the repro source tree against its "
                    "architecture contract.")
    parser.add_argument("root", nargs="?", default="src/repro",
                        help="package directory to lint "
                             "(default: src/repro)")
    parser.add_argument("--pyproject", metavar="FILE",
                        help="pyproject.toml with a "
                             "[tool.repro.archlint] override table "
                             "(default: discovered upward from root)")
    args = parser.parse_args(argv)
    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"not a directory: {root}")
    pyproject = (Path(args.pyproject) if args.pyproject
                 else _discover_pyproject(root.resolve()))
    violations = check_tree(root, load_config(pyproject))
    for violation in violations:
        print(violation.format())
    checked = len(list(root.rglob("*.py")))
    print(f"archlint: {checked} file(s), {len(violations)} "
          f"violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
