"""The query analyzer: a semantic pass over parsed statements.

Entry points by statement family:

- :func:`analyze_sql` / :func:`analyze_statement` — plain SQL, any
  statement type the engine accepts;
- :func:`analyze_enriched` — a SESQL :class:`EnrichedQuery` (the
  cleaned SQL plus the enrichment clauses, with ``REPLACECONSTANT``
  targets excused from unknown-column errors, since the WHERE rewriter
  replaces them before the databank ever sees the query);
- :func:`analyze_sparql` — a SPARQL SELECT (projection-binding check);
- :func:`analyze_federated` — a global query against a mediator's
  views, reporting WHERE conjuncts that cannot ship to the sources.

The analyzer's contract: **it never emits an error for a statement the
engine would execute successfully** — every ``E-`` finding mirrors a
check the executor performs while compiling, and anything the analyzer
cannot see (an unknown table makes its scope *open*) suppresses rather
than invents findings.  Warnings carry no such promise; they flag
data-dependent hazards and performance cliffs.
"""

from __future__ import annotations

from ..relational import ast
from ..relational.aggregates import AGGREGATE_NAMES
from ..relational.errors import RelationalError, TypeMismatchError
from ..relational.parser import parse_script, parse_sql
from ..relational.render import render_expr, render_statement
from ..relational.types import parse_type_name
from . import lints
from .diagnostics import (AnalysisOptions, AnalysisReport, DEFAULT_OPTIONS)
from .scopes import FAMILY, Scope, ScopeColumn, is_param_sentinel
from .typecheck import check_expr, check_predicate, infer_family


class _FilteredReport:
    """Report facade that drops codes the options disable."""

    __slots__ = ("_report", "_options")

    def __init__(self, report: AnalysisReport,
                 options: AnalysisOptions) -> None:
        self._report = report
        self._options = options

    def add(self, code: str, message: str, *,
            expression: str | None = None, hint: str | None = None) -> None:
        if self._options.wants(code):
            self._report.add(code, message, expression=expression, hint=hint)


class _Env:
    """Shared analysis state threaded through every check.

    Duck-typed contract used by :mod:`.typecheck` and :mod:`.lints`:
    ``report`` (something with ``add``), ``databank``, ``excused``
    (lower-case unqualified names that must not draw unknown-column
    errors), ``is_parameter`` and ``analyze_subquery``.
    """

    def __init__(self, databank, options: AnalysisOptions,
                 report: AnalysisReport,
                 excused: frozenset[str] = frozenset()) -> None:
        self.databank = databank
        self.options = options
        self.report = _FilteredReport(report, options)
        self.excused = set(excused)

    def is_parameter(self, literal: ast.Literal) -> bool:
        return is_param_sentinel(literal.value)

    def analyze_subquery(self, query: ast.SelectQuery,
                         outer_scopes: list[Scope]) -> Scope:
        return _analyze_query(query, self, outer_scopes, top_level=False)


def _contains_aggregate(expr: ast.Expr | None) -> bool:
    if expr is None:
        return False
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.FunctionCall) \
                and node.name.upper() in AGGREGATE_NAMES:
            return True
    return False


def _is_aggregate_core(core: ast.SelectCore) -> bool:
    return bool(core.group_by) or core.having is not None \
        or any(_contains_aggregate(item.expr) for item in core.items)


# ---------------------------------------------------------------------------
# FROM clause: bindings and visible columns
# ---------------------------------------------------------------------------

def _collect_from(table_expr: ast.TableExpr, env: _Env,
                  outer_scopes: list[Scope], from_scope: Scope,
                  seen: set[str], on_conditions: list[ast.Expr]) -> None:
    if isinstance(table_expr, ast.TableRef):
        binding = table_expr.binding
        if binding.lower() in seen:
            env.report.add("E-DUPLICATE-ALIAS",
                           f"duplicate table alias {binding!r}")
        seen.add(binding.lower())
        catalog = getattr(env.databank, "catalog", None) \
            if env.databank is not None else None
        if catalog is None:
            from_scope.open = True
            return
        if not catalog.has_table(table_expr.name):
            env.report.add("E-UNKNOWN-TABLE",
                           f"no such table: {table_expr.name!r}")
            from_scope.open = True
            return
        table = catalog.table(table_expr.name)
        for column in table.schema.columns:
            from_scope.columns.append(ScopeColumn(
                column.name, binding, FAMILY.get(column.data_type)))
        return
    if isinstance(table_expr, ast.SubqueryRef):
        if table_expr.alias.lower() in seen:
            env.report.add("E-DUPLICATE-ALIAS",
                           f"duplicate table alias {table_expr.alias!r}")
        seen.add(table_expr.alias.lower())
        derived = env.analyze_subquery(table_expr.query, outer_scopes)
        if derived.open:
            from_scope.open = True
        for column in derived.columns:
            # The executor requalifies every derived column to the alias.
            from_scope.columns.append(ScopeColumn(
                column.name, table_expr.alias, column.family))
        return
    if isinstance(table_expr, ast.Join):
        _collect_from(table_expr.left, env, outer_scopes, from_scope,
                      seen, on_conditions)
        _collect_from(table_expr.right, env, outer_scopes, from_scope,
                      seen, on_conditions)
        if table_expr.condition is not None:
            on_conditions.append(table_expr.condition)


# ---------------------------------------------------------------------------
# ORDER BY / GROUP BY target substitution (ordinals, output aliases)
# ---------------------------------------------------------------------------

def _is_ordinal(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.Literal) and isinstance(expr.value, int) \
        and not isinstance(expr.value, bool)


def _substitute_targets(exprs: list[ast.Expr],
                        items: list[ast.SelectItem], env: _Env,
                        clause: str) -> list[ast.Expr]:
    """Mirror ``_substitute_order_targets``, reporting instead of
    raising; unreportable targets are dropped from the result."""
    resolved: list[ast.Expr] = []
    for expr in exprs:
        if _is_ordinal(expr):
            index = expr.value
            if index < 1 or index > len(items):
                env.report.add(
                    "E-ORDINAL-RANGE",
                    f"{clause} position {index} is out of range")
                continue
            item = items[index - 1]
            if item.is_star:
                env.report.add(
                    "E-ORDINAL-RANGE",
                    f"{clause} position cannot reference '*'")
                continue
            resolved.append(item.expr)
            continue
        if isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
            alias_matches = [item for item in items
                            if item.alias
                            and item.alias.lower() == expr.name.lower()]
            if len(alias_matches) == 1:
                resolved.append(alias_matches[0].expr)
                continue
        resolved.append(expr)
    return resolved


# ---------------------------------------------------------------------------
# SELECT analysis
# ---------------------------------------------------------------------------

def _analyze_core(core: ast.SelectCore, env: _Env,
                  outer_scopes: list[Scope],
                  order_by: list[ast.OrderItem],
                  top_level: bool) -> Scope:
    from_scope = Scope()
    on_conditions: list[ast.Expr] = []
    if core.from_clause is not None:
        _collect_from(core.from_clause, env, outer_scopes, from_scope,
                      set(), on_conditions)
    scopes = list(outer_scopes) + [from_scope]

    if core.where is not None:
        check_predicate(core.where, scopes, env, aggregates_ok=False,
                        clause="WHERE")
    for condition in on_conditions:
        check_predicate(condition, scopes, env, aggregates_ok=False,
                        clause="ON")

    has_aggregate = _is_aggregate_core(core) \
        or any(_contains_aggregate(item.expr) for item in order_by)

    for item in core.items:
        if item.is_star:
            if has_aggregate:
                env.report.add(
                    "E-STAR-GROUPED",
                    "'*' cannot be used with GROUP BY or aggregates")
            star: ast.Star = item.expr
            if star.qualifier is not None and not from_scope.open \
                    and not any((column.qualifier or "").lower()
                                == star.qualifier.lower()
                                for column in from_scope.columns):
                env.report.add(
                    "E-UNKNOWN-TABLE",
                    f"no table named {star.qualifier!r} in FROM")
            continue
        check_expr(item.expr, scopes, env, aggregates_ok=True)

    group_exprs = _substitute_targets(core.group_by, core.items, env,
                                      "GROUP BY")
    for expr in group_exprs:
        check_expr(expr, scopes, env, aggregates_ok=False)

    if core.having is not None:
        check_predicate(core.having, scopes, env, aggregates_ok=True,
                        clause="HAVING")
        if not core.group_by and not _contains_aggregate(core.having) \
                and not any(_contains_aggregate(item.expr)
                            for item in core.items):
            env.report.add(
                "W-HAVING-NO-AGG",
                "HAVING without GROUP BY or aggregates filters nothing "
                "a WHERE could not",
                expression=render_expr(core.having))

    order_exprs = _substitute_targets(
        [item.expr for item in order_by], core.items, env, "ORDER BY")
    for expr in order_exprs:
        check_expr(expr, scopes, env, aggregates_ok=True)

    if core.distinct and group_exprs:
        item_keys = {ast.node_key(item.expr) for item in core.items
                     if not item.is_star}
        if all(ast.node_key(expr) in item_keys for expr in group_exprs):
            env.report.add(
                "W-DISTINCT-GROUPED",
                "DISTINCT is redundant: every group key is projected, "
                "so grouped rows are already distinct")

    lints.lint_vectorization(core, env, scopes)
    lints.lint_sargability(core, env, scopes)
    lints.lint_cartesian(core, env, from_scope)
    if top_level and any(item.is_star for item in core.items):
        env.report.add(
            "W-SELECT-STAR",
            "SELECT * couples the consumer to the table's column layout",
            hint="name the columns you need")

    out = Scope()
    if has_aggregate:
        for item in core.items:
            if item.is_star:
                continue
            out.columns.append(ScopeColumn(
                item.output_name(), None, infer_family(item.expr, scopes)))
        return out
    for item in core.items:
        if item.is_star:
            star = item.expr
            if from_scope.open:
                out.open = True
                continue
            for column in from_scope.columns:
                if star.qualifier is None or (column.qualifier or "").lower() \
                        == star.qualifier.lower():
                    out.columns.append(ScopeColumn(
                        column.name, column.qualifier, column.family))
            continue
        qualifier = None
        if isinstance(item.expr, ast.ColumnRef) and not item.alias:
            qualifier = item.expr.qualifier
        out.columns.append(ScopeColumn(
            item.output_name(), qualifier, infer_family(item.expr, scopes)))
    return out


def _analyze_query(query: ast.SelectQuery, env: _Env,
                   outer_scopes: list[Scope], top_level: bool) -> Scope:
    simple = not query.is_compound
    out_scopes = [_analyze_core(
        query.core, env, outer_scopes,
        order_by=query.order_by if simple else [], top_level=top_level)]
    for _op, core in query.compounds:
        out_scopes.append(_analyze_core(core, env, outer_scopes,
                                        order_by=[], top_level=top_level))
    result_scope = out_scopes[0]

    if query.is_compound:
        widths = [None if scope.open else len(scope.columns)
                  for scope in out_scopes]
        if all(width is not None for width in widths) \
                and len(set(widths)) > 1:
            env.report.add(
                "E-SET-OP-ARITY",
                "set operation operands must have the same column "
                f"count (got {', '.join(str(w) for w in widths)})")
        # Compound ORDER BY resolves against the combined result only
        # (no aliases, no outer scopes) — mirror compile_query exactly.
        for item in query.order_by:
            expr = item.expr
            if _is_ordinal(expr):
                if not result_scope.open and not (
                        1 <= expr.value <= len(result_scope.columns)):
                    env.report.add(
                        "E-ORDINAL-RANGE",
                        f"ORDER BY position {expr.value} is out of range")
                continue
            check_expr(expr, [result_scope], env, aggregates_ok=False)

    for clause, expr in (("LIMIT", query.limit), ("OFFSET", query.offset)):
        if expr is None:
            continue
        check_expr(expr, list(outer_scopes), env, aggregates_ok=False)
        if isinstance(expr, ast.Literal) and not env.is_parameter(expr) \
                and expr.value is not None:
            value = expr.value
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 0:
                env.report.add(
                    "W-TYPE-MISMATCH",
                    f"{clause} expects a non-negative integer",
                    expression=render_expr(expr))

    if top_level:
        cores = [query.core] + [core for _op, core in query.compounds]
        if query.limit is None \
                and not all(_is_aggregate_core(core) for core in cores):
            env.report.add(
                "W-NO-LIMIT-STREAM",
                "unbounded SELECT; streaming clients should page with "
                "LIMIT")
        if query.offset is not None and not query.order_by:
            env.report.add(
                "W-OFFSET-NO-ORDER",
                "OFFSET without ORDER BY yields nondeterministic pages")
    return result_scope


# ---------------------------------------------------------------------------
# DML / DDL analysis
# ---------------------------------------------------------------------------

def _catalog_table(name: str, env: _Env):
    """The catalog table, reporting E-UNKNOWN-TABLE; None if unknown
    (or if there is no catalog to ask)."""
    catalog = getattr(env.databank, "catalog", None) \
        if env.databank is not None else None
    if catalog is None:
        return None
    if not catalog.has_table(name):
        env.report.add("E-UNKNOWN-TABLE", f"no such table: {name!r}")
        return None
    return catalog.table(name)


def _table_scope(table, name: str) -> Scope:
    if table is None:
        return Scope(open=True)
    return Scope([ScopeColumn(column.name, name,
                              FAMILY.get(column.data_type))
                  for column in table.schema.columns])


def _analyze_insert(stmt: ast.InsertStmt, env: _Env) -> None:
    table = _catalog_table(stmt.table, env)
    width = None
    if stmt.columns is not None:
        if table is not None:
            for name in stmt.columns:
                if not table.schema.has_column(name):
                    env.report.add(
                        "E-UNKNOWN-COLUMN",
                        f"table {stmt.table!r} has no column {name!r}")
        width = len(stmt.columns)
    elif table is not None:
        width = len(table.schema.columns)
    if stmt.rows is not None:
        for row_exprs in stmt.rows:
            if width is not None and len(row_exprs) != width:
                env.report.add(
                    "E-DML-ARITY",
                    f"INSERT expects {width} values per row, got "
                    f"{len(row_exprs)}")
            for expr in row_exprs:
                # VALUES compile with no scopes: any column ref fails.
                check_expr(expr, [], env, aggregates_ok=False)
    if stmt.query is not None:
        produced = _analyze_query(stmt.query, env, [], top_level=False)
        if width is not None and not produced.open \
                and len(produced.columns) != width:
            env.report.add(
                "E-DML-ARITY",
                f"INSERT ... SELECT expects {width} columns, got "
                f"{len(produced.columns)}")


def _analyze_update(stmt: ast.UpdateStmt, env: _Env) -> None:
    table = _catalog_table(stmt.table, env)
    scope = _table_scope(table, stmt.table)
    for column, expr in stmt.assignments:
        if table is not None and not table.schema.has_column(column):
            env.report.add(
                "E-UNKNOWN-COLUMN",
                f"table {stmt.table!r} has no column {column!r}")
        check_expr(expr, [scope], env, aggregates_ok=False)
    if stmt.where is not None:
        check_predicate(stmt.where, [scope], env, aggregates_ok=False)


def _analyze_delete(stmt: ast.DeleteStmt, env: _Env) -> None:
    table = _catalog_table(stmt.table, env)
    if stmt.where is not None:
        check_predicate(stmt.where, [_table_scope(table, stmt.table)],
                        env, aggregates_ok=False)


def _analyze_create_table(stmt: ast.CreateTableStmt, env: _Env) -> None:
    seen: set[str] = set()
    for definition in stmt.columns:
        if definition.name.lower() in seen:
            env.report.add(
                "E-DUPLICATE-ALIAS",
                f"duplicate column {definition.name!r} in CREATE TABLE")
        seen.add(definition.name.lower())
        try:
            parse_type_name(definition.type_name)
        except TypeMismatchError:
            env.report.add(
                "E-BAD-CAST",
                f"unknown SQL type {definition.type_name!r} for column "
                f"{definition.name!r}")
        if definition.default is not None:
            check_expr(definition.default, [], env, aggregates_ok=False)


def _analyze_create_index(stmt: ast.CreateIndexStmt, env: _Env) -> None:
    table = _catalog_table(stmt.table, env)
    if table is None:
        return
    for name in stmt.columns:
        if not table.schema.has_column(name):
            env.report.add(
                "E-UNKNOWN-COLUMN",
                f"table {stmt.table!r} has no column {name!r}")


def _analyze_statement_node(stmt, env: _Env) -> None:
    if isinstance(stmt, ast.SelectQuery):
        _analyze_query(stmt, env, [], top_level=True)
    elif isinstance(stmt, ast.InsertStmt):
        _analyze_insert(stmt, env)
    elif isinstance(stmt, ast.UpdateStmt):
        _analyze_update(stmt, env)
    elif isinstance(stmt, ast.DeleteStmt):
        _analyze_delete(stmt, env)
    elif isinstance(stmt, ast.CreateTableStmt):
        _analyze_create_table(stmt, env)
    elif isinstance(stmt, ast.CreateIndexStmt):
        _analyze_create_index(stmt, env)
    elif isinstance(stmt, ast.DropTableStmt):
        if not stmt.if_exists:
            _catalog_table(stmt.name, env)
    elif isinstance(stmt, ast.AnalyzeStmt):
        if stmt.table is not None:
            _catalog_table(stmt.table, env)
    # DropIndexStmt: index names live on tables; nothing cheap to check.


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def analyze_statement(stmt, databank=None, *,
                      options: AnalysisOptions | None = None,
                      text: str | None = None) -> AnalysisReport:
    """Analyze one parsed relational statement against *databank*."""
    options = options or DEFAULT_OPTIONS
    report = AnalysisReport(statement=text if text is not None
                            else render_statement(stmt))
    if not options.enabled:
        return report
    env = _Env(databank, options, report)
    _analyze_statement_node(stmt, env)
    return report


def analyze_sql(sql_text: str, databank=None, *,
                options: AnalysisOptions | None = None) -> AnalysisReport:
    """Parse and analyze one SQL statement (E-SYNTAX if unparsable)."""
    options = options or DEFAULT_OPTIONS
    report = AnalysisReport(statement=sql_text.strip())
    if not options.enabled:
        return report
    try:
        stmt = parse_sql(sql_text)
    except RelationalError as exc:
        if options.wants("E-SYNTAX"):
            report.add("E-SYNTAX", str(exc))
        return report
    env = _Env(databank, options, report)
    _analyze_statement_node(stmt, env)
    return report


def analyze_script(sql_text: str, databank=None, *,
                   options: AnalysisOptions | None = None
                   ) -> list[AnalysisReport]:
    """Analyze a ``;``-separated script, one report per statement."""
    options = options or DEFAULT_OPTIONS
    try:
        statements = parse_script(sql_text)
    except RelationalError as exc:
        report = AnalysisReport(statement=sql_text.strip())
        if options.enabled and options.wants("E-SYNTAX"):
            report.add("E-SYNTAX", str(exc))
        return [report]
    return [analyze_statement(stmt, databank, options=options)
            for stmt in statements]


def analyze_enriched(enriched, databank=None, *,
                     options: AnalysisOptions | None = None
                     ) -> AnalysisReport:
    """Analyze a SESQL :class:`repro.core.ast.EnrichedQuery`.

    ``REPLACECONSTANT`` targets parse as bare column references (the
    constant is replaced by the WHERE rewriter before execution), so
    their names are excused from unknown-column errors.  Select
    enrichments are checked against the query's output columns
    (``W-ENRICH-ATTR``).
    """
    options = options or DEFAULT_OPTIONS
    report = AnalysisReport(statement=enriched.sql_text.strip())
    if not options.enabled:
        return report
    excused = frozenset(
        e.constant.lower() for e in enriched.enrichments
        if getattr(e, "kind", None) == "REPLACECONSTANT")
    env = _Env(databank, options, report, excused)
    result = _analyze_query(enriched.query, env, [], top_level=True)
    for enrichment in enriched.select_enrichments():
        attr = getattr(enrichment, "attr", None)
        if attr is None or result.open:
            continue
        if not result.find(attr, None):
            env.report.add(
                "W-ENRICH-ATTR",
                f"{enrichment.kind} references attribute {attr!r}, "
                "which is not a column of the query result",
                expression=attr)
    return report


def analyze_sparql(query, *, options: AnalysisOptions | None = None
                   ) -> AnalysisReport:
    """Analyze a SPARQL SELECT: every projected variable must be bound
    somewhere in the graph pattern (FILTER does not bind)."""
    from ..sparql.ast import SelectQuery as SparqlSelect, group_variables
    from ..sparql.parser import parse_sparql

    options = options or DEFAULT_OPTIONS
    if isinstance(query, str):
        report = AnalysisReport(statement=query.strip())
        if not options.enabled:
            return report
        try:
            query = parse_sparql(query)
        except Exception as exc:
            if options.wants("E-SYNTAX"):
                report.add("E-SYNTAX", str(exc))
            return report
    else:
        report = AnalysisReport(statement=str(query))
    if not options.enabled:
        return report
    if not isinstance(query, SparqlSelect):
        return report
    bound = group_variables(query.where)
    for variable in query.variables:
        if variable not in bound and options.wants("W-SPARQL-UNBOUND"):
            report.add(
                "W-SPARQL-UNBOUND",
                f"projected variable ?{variable} is never bound in the "
                "graph pattern",
                expression=f"?{variable}")
    return report


def analyze_federated(sql_text: str, mediator, *,
                      options: AnalysisOptions | None = None
                      ) -> AnalysisReport:
    """Analyze a global query against a mediator: the usual SQL pass
    over the scratch catalog, plus ``W-FED-UNPUSHABLE`` for WHERE
    conjuncts that must run entirely at the mediator."""
    # Lazy: federation imports api, which imports this package.
    from ..federation.mediator import _pushable_filters

    options = options or DEFAULT_OPTIONS
    report = AnalysisReport(statement=sql_text.strip())
    if not options.enabled:
        return report
    try:
        stmt = parse_sql(sql_text)
    except RelationalError as exc:
        if options.wants("E-SYNTAX"):
            report.add("E-SYNTAX", str(exc))
        return report
    env = _Env(getattr(mediator, "_scratch", None), options, report)
    _analyze_statement_node(stmt, env)
    if not isinstance(stmt, ast.SelectQuery) or stmt.is_compound \
            or stmt.core.where is None:
        return report
    wanted = [name for name in getattr(mediator, "_views", {})]
    referenced = {name.lower() for name in ast.referenced_tables(stmt)}
    wanted = [name for name in wanted if name.lower() in referenced]
    if not wanted:
        return report
    for conjunct in ast.conjuncts(stmt.core.where):
        # A conjunct ships iff the mediator's own pushdown pass selects
        # it — probe with a WHERE of just this conjunct, so the verdict
        # is the planner's, not a reimplementation of its rules.
        probe = ast.SelectQuery(core=ast.SelectCore(
            items=stmt.core.items, distinct=stmt.core.distinct,
            from_clause=stmt.core.from_clause, where=conjunct))
        if not _pushable_filters(probe, wanted, mediator):
            env.report.add(
                "W-FED-UNPUSHABLE",
                "conjunct cannot ship into source fragments; it filters "
                "at the mediator after the views materialize",
                expression=render_expr(conjunct))
    return report
