"""Expression checking: resolution, function arity, 3VL type families.

One recursive pass per expression root does three jobs the executor's
compiler does at its own compile time — resolve every column reference,
validate every function call, reject bad CAST targets — and one job the
executor only does per-row at runtime: family-aware type inference
under the three-valued comparison rules of
:mod:`repro.relational.types` (``compare_values`` raises across type
families, ``values_equal`` is plain ``False``, booleans are their own
family).  Sure compile-time failures surface as ``E-`` codes;
data-dependent hazards (the query still succeeds over all-NULL or empty
data) surface as ``W-`` codes.
"""

from __future__ import annotations

from ..relational import ast
from ..relational.aggregates import AGGREGATE_NAMES
from ..relational.errors import ExecutionError, TypeMismatchError
from ..relational.functions import SCALAR_FUNCTIONS, lookup_function
from ..relational.render import render_expr
from ..relational.types import parse_type_name
from .scopes import FAMILY, Scope, literal_family, resolve

_COMPARISONS = frozenset({"=", "<>", "<", "<=", ">", ">="})
_ORDERED = frozenset({"<", "<=", ">", ">="})
_ARITHMETIC = frozenset({"+", "-", "*", "/", "%"})

#: Scalar functions by result family (everything else infers unknown).
_STR_FUNCTIONS = frozenset({
    "UPPER", "LOWER", "TRIM", "LTRIM", "RTRIM", "REPLACE", "SUBSTR",
    "SUBSTRING", "CONCAT", "TYPEOF", "GROUP_CONCAT"})
_NUM_FUNCTIONS = frozenset({
    "LENGTH", "ABS", "ROUND", "FLOOR", "CEIL", "CEILING", "SQRT",
    "POWER", "SIGN", "MOD", "INSTR", "COUNT", "SUM", "AVG"})
_PASSTHROUGH_FUNCTIONS = frozenset({
    "MIN", "MAX", "COALESCE", "IFNULL", "NULLIF"})


def infer_family(expr: ast.Expr, scopes: list[Scope]) -> str | None:
    """Best-effort family of *expr*: num/str/bool, "null", or None."""
    if isinstance(expr, ast.Literal):
        return literal_family(expr.value)
    if isinstance(expr, ast.ColumnRef):
        resolution = resolve(expr, scopes)
        return resolution.family if resolution.status == "ok" else None
    if isinstance(expr, ast.UnaryOp):
        if expr.op.upper() == "NOT":
            return "bool"
        return "num"
    if isinstance(expr, ast.BinaryOp):
        op = expr.op.upper()
        if op in ("AND", "OR") or expr.op in _COMPARISONS:
            return "bool"
        if expr.op == "||":
            return "str"
        if expr.op in _ARITHMETIC:
            return "num"
        return None
    if isinstance(expr, (ast.IsNull, ast.Like, ast.InList, ast.Between,
                         ast.InSubquery, ast.Exists)):
        return "bool"
    if isinstance(expr, ast.FunctionCall):
        upper = expr.name.upper()
        if upper in _STR_FUNCTIONS:
            return "str"
        if upper in _NUM_FUNCTIONS:
            return "num"
        if upper in _PASSTHROUGH_FUNCTIONS:
            families = {infer_family(arg, scopes) for arg in expr.args}
            families.discard("null")
            families.discard(None)
            if len(families) == 1:
                return families.pop()
        return None
    if isinstance(expr, ast.Cast):
        try:
            return FAMILY[parse_type_name(expr.type_name)]
        except TypeMismatchError:
            return None
    if isinstance(expr, ast.CaseExpr):
        results = [result for _cond, result in expr.whens]
        if expr.else_result is not None:
            results.append(expr.else_result)
        families = {infer_family(result, scopes) for result in results}
        families.discard("null")
        families.discard(None)
        if len(families) == 1:
            return families.pop()
        return None
    return None  # Star, SlotRef, ScalarSubquery


def _known(family: str | None) -> bool:
    return family in ("num", "str", "bool")


def _check_function(node: ast.FunctionCall, report,
                    aggregates_ok: bool) -> None:
    upper = node.name.upper()
    rendered = render_expr(node)
    if node.star:
        if upper != "COUNT":
            code = ("E-FUNCTION-ARITY" if upper in AGGREGATE_NAMES
                    or upper in SCALAR_FUNCTIONS else "E-UNKNOWN-FUNCTION")
            report.add(code, f"{upper}(*) is not a valid call",
                       expression=rendered)
        elif not aggregates_ok:
            report.add("E-AGGREGATE-CONTEXT",
                       "aggregate COUNT(*) is not allowed here",
                       expression=rendered)
        return
    if upper in AGGREGATE_NAMES:
        if not aggregates_ok:
            report.add("E-AGGREGATE-CONTEXT",
                       f"aggregate {upper} is not allowed here",
                       expression=rendered)
        if upper == "GROUP_CONCAT":
            if len(node.args) not in (1, 2):
                report.add("E-FUNCTION-ARITY",
                           "GROUP_CONCAT takes 1 or 2 arguments",
                           expression=rendered)
        elif len(node.args) != 1:
            report.add("E-FUNCTION-ARITY",
                       f"{upper} takes exactly 1 argument",
                       expression=rendered)
        return
    if upper not in SCALAR_FUNCTIONS:
        report.add("E-UNKNOWN-FUNCTION",
                   f"unknown function {node.name!r}", expression=rendered)
        return
    try:
        lookup_function(node.name, len(node.args))
    except ExecutionError as exc:
        report.add("E-FUNCTION-ARITY", str(exc), expression=rendered)


def _check_comparison(node: ast.BinaryOp, scopes: list[Scope],
                      report) -> None:
    rendered = render_expr(node)
    left_family = infer_family(node.left, scopes)
    right_family = infer_family(node.right, scopes)
    for side in (node.left, node.right):
        if isinstance(side, ast.Literal) and side.value is None:
            report.add("W-NULL-COMPARE",
                       "comparison with NULL is never TRUE",
                       expression=rendered,
                       hint="use IS NULL / IS NOT NULL")
            return
    if _known(left_family) and _known(right_family) \
            and left_family != right_family:
        if node.op in _ORDERED:
            report.add(
                "W-TYPE-MISMATCH",
                f"ordered comparison between {left_family} and "
                f"{right_family} raises on non-NULL values",
                expression=rendered)
        else:
            report.add(
                "W-CROSS-EQ-FALSE",
                f"equality between {left_family} and {right_family} "
                "can never be TRUE",
                expression=rendered)


def check_expr(expr: ast.Expr, scopes: list[Scope], env, *,
               aggregates_ok: bool) -> None:
    """Resolve and type-check one expression tree.

    Subqueries hand off to ``env.analyze_subquery`` with the current
    scope chain appended (correlated references resolve outward exactly
    as the executor's ``SubPlan`` sees them).
    """
    report = env.report
    if isinstance(expr, ast.ColumnRef):
        resolution = resolve(expr, scopes)
        if resolution.status == "unknown" \
                and expr.qualifier is None \
                and expr.name.lower() in env.excused:
            return  # a REPLACECONSTANT target: rewritten before execution
        if resolution.status == "unknown":
            report.add("E-UNKNOWN-COLUMN",
                       f"no such column: {expr.display()!r}")
        elif resolution.status == "ambiguous":
            report.add("E-AMBIGUOUS-COLUMN",
                       f"column reference {expr.display()!r} is ambiguous")
        return
    if isinstance(expr, (ast.Literal, ast.Star, ast.SlotRef)):
        return
    if isinstance(expr, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
        if isinstance(expr, ast.InSubquery):
            check_expr(expr.operand, scopes, env,
                       aggregates_ok=aggregates_ok)
        if expr.query is not None:
            env.analyze_subquery(expr.query, scopes)
        return
    if isinstance(expr, ast.FunctionCall):
        _check_function(expr, report, aggregates_ok)
        for arg in expr.args:
            check_expr(arg, scopes, env, aggregates_ok=aggregates_ok)
        return
    if isinstance(expr, ast.Cast):
        try:
            parse_type_name(expr.type_name)
        except TypeMismatchError:
            report.add("E-BAD-CAST",
                       f"unknown SQL type {expr.type_name!r}",
                       expression=render_expr(expr))
        check_expr(expr.operand, scopes, env, aggregates_ok=aggregates_ok)
        return

    # Generic descent first, then node-specific family checks.
    for child in ast.child_exprs(expr):
        check_expr(child, scopes, env, aggregates_ok=aggregates_ok)

    if isinstance(expr, ast.BinaryOp):
        if expr.op in _COMPARISONS:
            _check_comparison(expr, scopes, env.report)
        elif expr.op in _ARITHMETIC:
            for side in (expr.left, expr.right):
                family = infer_family(side, scopes)
                if family in ("str", "bool"):
                    report.add(
                        "W-TYPE-MISMATCH",
                        f"arithmetic on a {family} operand raises on "
                        "non-NULL values",
                        expression=render_expr(expr))
    elif isinstance(expr, ast.UnaryOp):
        op = expr.op.upper()
        operand_family = infer_family(expr.operand, scopes)
        if op == "NOT" and operand_family in ("num", "str"):
            report.add("W-NONBOOL-WHERE",
                       f"NOT over a {operand_family} operand raises on "
                       "non-NULL values",
                       expression=render_expr(expr))
        elif op in ("-", "+") and operand_family in ("str", "bool"):
            report.add("W-TYPE-MISMATCH",
                       f"unary {expr.op} on a {operand_family} operand "
                       "raises on non-NULL values",
                       expression=render_expr(expr))
    elif isinstance(expr, ast.Like):
        operand_family = infer_family(expr.operand, scopes)
        pattern_family = infer_family(expr.pattern, scopes)
        if operand_family in ("num", "bool") \
                or pattern_family in ("num", "bool"):
            report.add("W-LIKE-NONTEXT",
                       "LIKE requires text operands",
                       expression=render_expr(expr))
    elif isinstance(expr, ast.Between):
        operand_family = infer_family(expr.operand, scopes)
        for bound in (expr.low, expr.high):
            bound_family = infer_family(bound, scopes)
            if _known(operand_family) and _known(bound_family) \
                    and operand_family != bound_family:
                report.add(
                    "W-TYPE-MISMATCH",
                    f"BETWEEN bound is {bound_family} but the operand "
                    f"is {operand_family}",
                    expression=render_expr(expr))
    elif isinstance(expr, ast.InList):
        operand_family = infer_family(expr.operand, scopes)
        if _known(operand_family):
            for item in expr.items:
                item_family = infer_family(item, scopes)
                if _known(item_family) and item_family != operand_family:
                    report.add(
                        "W-CROSS-EQ-FALSE",
                        f"IN item is {item_family} but the operand is "
                        f"{operand_family}; it can never match",
                        expression=render_expr(item))


def check_predicate(expr: ast.Expr, scopes: list[Scope], env, *,
                    aggregates_ok: bool = False,
                    clause: str = "WHERE") -> None:
    """Checks for boolean contexts: WHERE, HAVING, JOIN ... ON."""
    report = env.report
    for conjunct in ast.conjuncts(expr):
        if isinstance(conjunct, ast.Literal):
            if not env.is_parameter(conjunct):
                report.add("W-CONST-PREDICATE",
                           f"{clause} conjunct is a constant",
                           expression=render_expr(conjunct))
            continue
        family = infer_family(conjunct, scopes)
        if family in ("num", "str"):
            report.add("W-NONBOOL-WHERE",
                       f"{clause} conjunct is {family}-valued, not "
                       "boolean",
                       expression=render_expr(conjunct))
    check_expr(expr, scopes, env, aggregates_ok=aggregates_ok)
