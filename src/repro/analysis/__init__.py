"""Static analysis: compile-time query diagnostics + architecture lint.

Two heads share this package.  The **query analyzer**
(:mod:`.query`) runs a semantic pass over parsed SQL / SESQL / SPARQL
statements against a catalog — name resolution, 3VL type-family
inference, and a registry of stable-coded performance lints — and is
wired into ``Session.prepare()`` / ``explain()``, the REST API
(``POST /api/v1/analyze``) and a file-linting CLI
(``python -m repro.analysis``).  The **architecture linter**
(:mod:`.archlint`) walks the repository's own Python source enforcing
the layering DAG, hook conventions and lock discipline; it runs as a
CI gate (``python -m repro.analysis.archlint``).
"""

from .diagnostics import (AnalysisError, AnalysisOptions, AnalysisReport,
                          CODES, DEFAULT_OPTIONS, Diagnostic, ERROR,
                          WARNING)
from .query import (analyze_enriched, analyze_federated, analyze_script,
                    analyze_sparql, analyze_sql, analyze_statement)

__all__ = [
    "AnalysisError", "AnalysisOptions", "AnalysisReport", "CODES",
    "DEFAULT_OPTIONS", "Diagnostic", "ERROR", "WARNING",
    "analyze_enriched", "analyze_federated", "analyze_script",
    "analyze_sparql", "analyze_sql", "analyze_statement",
]
