"""Performance lints over one SELECT core.

These mirror the *planner's* decisions rather than re-deriving them:
``W-VEC-FALLBACK`` asks :func:`repro.relational.vectors.fallback_reason`
— which delegates the vectorizable/not verdict to the very kernel
compiler the executor uses — and the single-table / index-probe gating
reproduces ``compile_core``'s conditions step by step.  A lint here is
therefore a statement about what the engine *will* do, not a heuristic
about what engines usually do.
"""

from __future__ import annotations

from ..relational import ast
from ..relational.render import render_expr
from ..relational.table import Table
from ..relational.vectors import fallback_reason
from .scopes import Scope, is_param_sentinel, resolve

_COMPARISONS = frozenset({"=", "<>", "<", "<=", ">", ">="})


def _contains_sentinel(expr: ast.Expr) -> bool:
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.Literal) and is_param_sentinel(node.value):
            return True
    return False


def _contains_unresolved(expr: ast.Expr, scopes: list[Scope]) -> bool:
    """True when a ref in *expr* already drew a resolution error."""
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.ColumnRef) \
                and resolve(node, scopes).status in ("unknown", "ambiguous"):
            return True
    return False


def _innermost(ref: ast.ColumnRef, scopes: list[Scope]) -> bool:
    """Would ``resolve_column`` land *ref* on the scanned table?"""
    inner = scopes[-1]
    return not inner.open and len(inner.find(ref.name, ref.qualifier)) == 1


def scanned_table(core: ast.SelectCore, env) -> Table | None:
    """The columnar table of a single-``TableRef`` FROM, if resolvable."""
    databank = env.databank
    if databank is None or not isinstance(core.from_clause, ast.TableRef):
        return None
    catalog = getattr(databank, "catalog", None)
    if catalog is None or not catalog.has_table(core.from_clause.name):
        return None
    table = catalog.table(core.from_clause.name)
    return table if isinstance(table, Table) else None


def _index_probe_applies(conjunct_list: list[ast.Expr], table: Table,
                         scopes: list[Scope]) -> bool:
    """Mirror compile_core's fast path: the first ``col = literal``
    equality over an indexed column of the scanned table becomes a
    point probe and disables the vectorized scan entirely."""
    for conjunct in conjunct_list:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            continue
        for column_side, value_side in ((conjunct.left, conjunct.right),
                                        (conjunct.right, conjunct.left)):
            if isinstance(column_side, ast.ColumnRef) \
                    and isinstance(value_side, ast.Literal) \
                    and _innermost(column_side, scopes) \
                    and table.find_index_on([column_side.name]) is not None:
                return True
    return False


def lint_vectorization(core: ast.SelectCore, env,
                       scopes: list[Scope]) -> None:
    """``W-VEC-FALLBACK``: WHERE conjuncts the kernel compiler rejects.

    Fires only when the engine would actually attempt a vectorized
    scan (columnar storage on, single-table FROM, no index probe), and
    names both the exact conjunct and the reason the kernel compiler
    gives up on it.  Conjuncts containing ``?`` parameters are skipped:
    the bound value decides vectorizability at execute time.
    """
    databank = env.databank
    if databank is None or not getattr(databank, "vectorized", True):
        return
    table = scanned_table(core, env)
    if table is None or core.where is None:
        return
    conjunct_list = list(ast.conjuncts(core.where))
    if _index_probe_applies(conjunct_list, table, scopes):
        return  # point probe beats the batch path; nothing "fell back"
    schema = table.schema

    def resolve_ref(ref: ast.ColumnRef):
        if not _innermost(ref, scopes):
            return None
        position = schema.position_of(ref.name)
        return position, schema.columns[position].data_type

    for conjunct in conjunct_list:
        if _contains_sentinel(conjunct) \
                or _contains_unresolved(conjunct, scopes):
            continue
        reason = fallback_reason(conjunct, resolve_ref)
        if reason is not None:
            env.report.add(
                "W-VEC-FALLBACK",
                f"conjunct runs on the row path: {reason}",
                expression=render_expr(conjunct))


def lint_sargability(core: ast.SelectCore, env,
                     scopes: list[Scope]) -> None:
    """``W-NONSARGABLE``: predicates that waste an existing index.

    Gated on the index actually existing — a wrapped column without an
    index loses nothing, so warning there would be noise.
    """
    table = scanned_table(core, env)
    if table is None or core.where is None:
        return

    def indexed_column(ref: ast.Expr) -> str | None:
        if isinstance(ref, ast.ColumnRef) and _innermost(ref, scopes) \
                and table.find_index_on([ref.name]) is not None:
            return ref.display()
        return None

    for conjunct in ast.conjuncts(core.where):
        if isinstance(conjunct, ast.Like):
            column = indexed_column(conjunct.operand)
            if column is not None \
                    and isinstance(conjunct.pattern, ast.Literal) \
                    and isinstance(conjunct.pattern.value, str) \
                    and conjunct.pattern.value.startswith("%"):
                env.report.add(
                    "W-NONSARGABLE",
                    f"leading-% LIKE on indexed column {column} cannot "
                    "be narrowed by the index",
                    expression=render_expr(conjunct))
            continue
        if not (isinstance(conjunct, ast.BinaryOp)
                and conjunct.op in _COMPARISONS):
            continue
        for wrapped_side, other_side in ((conjunct.left, conjunct.right),
                                         (conjunct.right, conjunct.left)):
            if not isinstance(other_side, ast.Literal):
                continue
            if not isinstance(wrapped_side, (ast.FunctionCall, ast.Cast,
                                             ast.BinaryOp)):
                continue
            wrapped = [node for node in ast.walk_expr(wrapped_side)
                       if isinstance(node, ast.ColumnRef)]
            if len(wrapped) != 1:
                continue
            column = indexed_column(wrapped[0])
            if column is not None:
                env.report.add(
                    "W-NONSARGABLE",
                    f"indexed column {column} is wrapped in an "
                    "expression, so the index probe cannot apply",
                    expression=render_expr(conjunct),
                    hint="compare the bare column to a precomputed "
                         "constant instead")
                break


def _leaves(table_expr: ast.TableExpr) -> list[ast.TableExpr]:
    if isinstance(table_expr, ast.Join):
        return _leaves(table_expr.left) + _leaves(table_expr.right)
    return [table_expr]


def _side_bindings(table_expr: ast.TableExpr) -> set[str]:
    out: set[str] = set()
    for leaf in _leaves(table_expr):
        if isinstance(leaf, ast.TableRef):
            out.add(leaf.binding.lower())
        elif isinstance(leaf, ast.SubqueryRef):
            out.add(leaf.alias.lower())
    return out


def _touched_bindings(expr: ast.Expr, from_scope: Scope) -> set[str]:
    """FROM bindings an expression references, resolving unqualified
    names through the (single) FROM scope when unambiguous."""
    touched: set[str] = set()
    for node in ast.walk_expr(expr):
        if not isinstance(node, ast.ColumnRef):
            continue
        if node.qualifier is not None:
            touched.add(node.qualifier.lower())
            continue
        matches = from_scope.find(node.name, None)
        qualifiers = {(from_scope.columns[i].qualifier or "").lower()
                      for i in matches}
        if len(qualifiers) == 1:
            touched.add(qualifiers.pop())
    return touched


def lint_cartesian(core: ast.SelectCore, env, from_scope: Scope) -> None:
    """``W-CARTESIAN``: a join whose sides nothing connects.

    A comma/CROSS join is excused when some WHERE conjunct touches
    both sides (the classic implicit-join style); an explicit ON is
    suspect when it fails to reference both sides.
    """
    if core.from_clause is None:
        return
    where_conjuncts = (list(ast.conjuncts(core.where))
                       if core.where is not None else [])

    def visit(node: ast.TableExpr) -> None:
        if not isinstance(node, ast.Join):
            return
        visit(node.left)
        visit(node.right)
        left = _side_bindings(node.left)
        right = _side_bindings(node.right)
        if not left or not right:
            return
        if node.condition is not None:
            touched = _touched_bindings(node.condition, from_scope)
            if not (touched & left and touched & right):
                env.report.add(
                    "W-CARTESIAN",
                    "join condition does not reference both sides",
                    expression=render_expr(node.condition))
            return
        for conjunct in where_conjuncts:
            touched = _touched_bindings(conjunct, from_scope)
            if touched & left and touched & right:
                return
        env.report.add(
            "W-CARTESIAN",
            f"no predicate connects {{{', '.join(sorted(left))}}} with "
            f"{{{', '.join(sorted(right))}}}; the join is a cartesian "
            "product")

    visit(core.from_clause)
