"""``python -m repro.analysis`` — lint SQL / SESQL query files.

Each input file is split into ``;``-separated statements (quotes and
``--`` comments respected); statements containing an ``ENRICH`` clause
go through the Semantic Query Parser and the SESQL analyzer, everything
else through the plain SQL analyzer.  With no schema the analyzer runs
catalog-less (name resolution is suppressed, everything else applies);
``--smartground`` lints against the SmartGround schema and also runs
the built-in paper workload, and ``--schema FILE`` executes a DDL
script into a scratch database first.

Diagnostic-code **baselines** make the CLI usable as a CI ratchet:
``--write-baseline FILE`` records the current per-code counts, and
``--baseline FILE`` fails the run when any code's count *increases*
(new codes count as regressions; improvements are fine and can be
re-recorded).

Exit status: 1 when any error-severity diagnostic or baseline
regression was found, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .diagnostics import AnalysisReport, CODES
from .query import analyze_enriched, analyze_sql


def split_statements(text: str) -> list[str]:
    """Split a script on ``;`` outside quotes and ``--`` comments."""
    statements: list[str] = []
    current: list[str] = []
    quote: str | None = None
    comment = False
    for ch in text:
        if comment:
            current.append(ch)
            if ch == "\n":
                comment = False
            continue
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            current.append(ch)
            continue
        if ch == "-" and current and current[-1] == "-":
            comment = True
            current.append(ch)
            continue
        if ch == ";":
            statements.append("".join(current))
            current = []
            continue
        current.append(ch)
    statements.append("".join(current))
    return [s.strip() for s in statements if s.strip()
            and not _comment_only(s)]


def _comment_only(statement: str) -> bool:
    return all(line.strip().startswith("--") or not line.strip()
               for line in statement.splitlines())


def _is_sesql(statement: str) -> bool:
    upper = statement.upper()
    return " ENRICH " in upper.replace("\n", " ") \
        or upper.rstrip().endswith("ENRICH")


def analyze_text(statement: str, databank, options=None) -> AnalysisReport:
    """One statement through the right analyzer (SESQL vs plain SQL)."""
    if _is_sesql(statement):
        from ..core.errors import SesqlError
        from ..core.sqp import SemanticQueryParser
        try:
            enriched = SemanticQueryParser().parse(statement)
        except SesqlError as exc:
            report = AnalysisReport(statement=statement.strip())
            report.add("E-SYNTAX", str(exc))
            return report
        return analyze_enriched(enriched, databank, options=options)
    return analyze_sql(statement, databank, options=options)


def _build_databank(args):
    if args.smartground:
        from ..smartground.schema import create_schema
        return create_schema()
    if args.schema is not None:
        from ..relational.engine import Database
        databank = Database("lint")
        databank.execute_script(Path(args.schema).read_text())
        return databank
    return None


def _workload_sources(args) -> list[tuple[str, str]]:
    """(label, statement) pairs from files and the built-in workload."""
    sources: list[tuple[str, str]] = []
    for path_text in args.paths:
        path = Path(path_text)
        text = path.read_text()
        for index, statement in enumerate(split_statements(text), 1):
            sources.append((f"{path}:{index}", statement))
    if args.smartground:
        from ..smartground.queries import WORKLOAD
        sources.extend((f"workload:{query.name}", query.sesql)
                       for query in WORKLOAD)
    return sources


def _snippet(statement: str) -> str:
    lines = [line for line in statement.splitlines()
             if not line.strip().startswith("--")]
    return " ".join("\n".join(lines).split())[:72]


def _code_counts(results: list[tuple[str, AnalysisReport]]) -> dict:
    counts: dict[str, int] = {}
    for _label, report in results:
        for diagnostic in report:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
    return dict(sorted(counts.items()))


def _regressions(counts: dict, baseline: dict) -> list[str]:
    lines = []
    for code, count in counts.items():
        allowed = baseline.get(code, 0)
        if count > allowed:
            lines.append(f"{code}: {count} finding(s), baseline allows "
                         f"{allowed}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis over SQL / SESQL query files.")
    parser.add_argument("paths", nargs="*",
                        help="query files (.sql / .sesql scripts)")
    parser.add_argument("--smartground", action="store_true",
                        help="lint against the SmartGround schema and "
                             "include the built-in paper workload")
    parser.add_argument("--schema", metavar="FILE",
                        help="DDL script building the catalog to "
                             "resolve names against")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one JSON document instead of text")
    parser.add_argument("--baseline", metavar="FILE",
                        help="fail when any diagnostic code exceeds "
                             "its recorded count")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current per-code counts and exit")
    args = parser.parse_args(argv)
    if not args.paths and not args.smartground:
        parser.error("nothing to lint: pass files and/or --smartground")

    databank = _build_databank(args)
    results = [(label, analyze_text(statement, databank))
               for label, statement in _workload_sources(args)]
    counts = _code_counts(results)
    error_count = sum(count for code, count in counts.items()
                      if CODES[code].severity == "error")

    if args.write_baseline:
        Path(args.write_baseline).write_text(
            json.dumps(counts, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {args.write_baseline}: "
              f"{sum(counts.values())} finding(s) across "
              f"{len(counts)} code(s)")
        return 0

    regressions: list[str] = []
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        regressions = _regressions(counts, baseline)

    if args.as_json:
        print(json.dumps({
            "statements": [{"source": label, **report.to_dict()}
                           for label, report in results],
            "codes": counts,
            "errors": error_count,
            "regressions": regressions,
        }, indent=2))
    else:
        for label, report in results:
            if not report:
                continue
            print(f"{label}: {_snippet(report.statement)}")
            for diagnostic in report:
                print(f"  {diagnostic.format()}")
        total = sum(counts.values())
        print(f"{len(results)} statement(s), {total} finding(s), "
              f"{error_count} error(s)")
        for line in regressions:
            print(f"baseline regression — {line}")

    return 1 if error_count or regressions else 0


if __name__ == "__main__":
    sys.exit(main())
