"""Diagnostic codes, reports and options for the static-analysis pass.

Every finding the analyzer can produce has a **stable code** registered
in :data:`CODES`.  ``E-`` codes are *errors*: the statement is certain
to fail at execution time no matter what data the tables hold (unknown
table, unresolvable column, bad arity, ...) — exactly the failures the
executor raises while *compiling* a statement.  ``W-`` codes are
*warnings*: data-dependent hazards (a cross-family ``<`` raises only
when a non-NULL pair is actually compared) and performance lints (a
predicate shape that forces the row path, a cartesian product, an
unpushable federation conjunct).  The split matters because the session
layer may be asked to reject statements with errors at ``prepare()``
time (:class:`AnalysisOptions` ``strict``) — and the analyzer promises
never to *error* on a statement that would have executed successfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field


ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry: a stable code with its severity and summary."""

    code: str
    severity: str
    summary: str


def _registry(*entries: tuple[str, str, str]) -> dict[str, CodeInfo]:
    return {code: CodeInfo(code, severity, summary)
            for code, severity, summary in entries}


#: Every diagnostic the analyzer can emit.  Codes are part of the API:
#: tests, the CLI baseline file and the REST payload all key on them.
CODES: dict[str, CodeInfo] = _registry(
    # -- errors: certain to fail at execution compile time ------------------
    ("E-SYNTAX", ERROR,
     "the statement does not parse"),
    ("E-UNKNOWN-TABLE", ERROR,
     "table is not in the catalog"),
    ("E-UNKNOWN-COLUMN", ERROR,
     "column reference resolves to nothing in any scope"),
    ("E-AMBIGUOUS-COLUMN", ERROR,
     "column reference matches more than one column in a scope"),
    ("E-UNKNOWN-FUNCTION", ERROR,
     "no scalar or aggregate function with this name"),
    ("E-FUNCTION-ARITY", ERROR,
     "function called with the wrong number of arguments"),
    ("E-AGGREGATE-CONTEXT", ERROR,
     "aggregate used where aggregates are not allowed (WHERE / ON)"),
    ("E-BAD-CAST", ERROR,
     "CAST target is not a known SQL type"),
    ("E-DUPLICATE-ALIAS", ERROR,
     "two FROM items bind the same name"),
    ("E-SET-OP-ARITY", ERROR,
     "set-operation operands have different column counts"),
    ("E-ORDINAL-RANGE", ERROR,
     "ORDER/GROUP BY ordinal is out of range or names a '*' item"),
    ("E-DML-ARITY", ERROR,
     "INSERT row width does not match the target column list"),
    ("E-STAR-GROUPED", ERROR,
     "SELECT * cannot be used in a grouped/aggregate query"),
    # -- warnings: data-dependent correctness hazards -----------------------
    ("W-TYPE-MISMATCH", WARNING,
     "ordered comparison across type families raises on non-NULL data"),
    ("W-CROSS-EQ-FALSE", WARNING,
     "equality across type families can never be TRUE"),
    ("W-NONBOOL-WHERE", WARNING,
     "predicate cannot evaluate to a boolean"),
    ("W-LIKE-NONTEXT", WARNING,
     "LIKE on a non-text operand raises on non-NULL data"),
    ("W-NULL-COMPARE", WARNING,
     "comparison with NULL is never TRUE; use IS [NOT] NULL"),
    ("W-CONST-PREDICATE", WARNING,
     "predicate conjunct is constant (dead or tautological filter)"),
    # -- warnings: performance lints ----------------------------------------
    ("W-VEC-FALLBACK", WARNING,
     "predicate shape forces the row path instead of a vector kernel"),
    ("W-NONSARGABLE", WARNING,
     "predicate defeats index probing (leading-% LIKE / wrapped column)"),
    ("W-NO-LIMIT-STREAM", WARNING,
     "unbounded SELECT; streaming clients should page with LIMIT"),
    ("W-OFFSET-NO-ORDER", WARNING,
     "LIMIT/OFFSET without ORDER BY yields nondeterministic pages"),
    ("W-CARTESIAN", WARNING,
     "join has no connecting condition (cartesian product)"),
    ("W-DISTINCT-GROUPED", WARNING,
     "DISTINCT is redundant when grouping by the whole select list"),
    ("W-HAVING-NO-AGG", WARNING,
     "HAVING without GROUP BY or aggregates is just a WHERE"),
    ("W-SELECT-STAR", WARNING,
     "SELECT * couples the consumer to the table's column layout"),
    # -- warnings: SESQL / federation / SPARQL ------------------------------
    ("W-ENRICH-ATTR", WARNING,
     "enrichment references an attribute the query does not produce"),
    ("W-FED-UNPUSHABLE", WARNING,
     "WHERE conjunct cannot ship into source fragments"),
    ("W-SPARQL-UNBOUND", WARNING,
     "projected SPARQL variable is never bound in the pattern"),
)


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code plus the human-readable specifics.

    ``expression`` carries the exact sub-expression the finding is
    about (rendered back to SQL), so a ``W-VEC-FALLBACK`` names the
    conjunct that fell off the vector path, not just the fact.
    """

    code: str
    message: str
    expression: str | None = None
    hint: str | None = None

    @property
    def severity(self) -> str:
        return CODES[self.code].severity

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def format(self) -> str:
        text = f"{self.code}: {self.message}"
        if self.expression:
            text += f" [{self.expression}]"
        if self.hint:
            text += f" ({self.hint})"
        return text

    def to_dict(self) -> dict:
        return {"code": self.code, "severity": self.severity,
                "message": self.message, "expression": self.expression,
                "hint": self.hint}


@dataclass
class AnalysisReport:
    """The analyzer's output: an ordered list of diagnostics."""

    statement: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, code: str, message: str, *, expression: str | None = None,
            hint: str | None = None) -> None:
        if code not in CODES:  # pragma: no cover - registry discipline
            raise KeyError(f"unregistered diagnostic code {code!r}")
        diagnostic = Diagnostic(code, message, expression, hint)
        if diagnostic not in self.diagnostics:  # dedupe repeat findings
            self.diagnostics.append(diagnostic)

    def extend(self, other: "AnalysisReport") -> None:
        for diagnostic in other.diagnostics:
            if diagnostic not in self.diagnostics:
                self.diagnostics.append(diagnostic)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self.diagnostics)

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def format(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.format() for d in self.diagnostics)

    def to_dict(self) -> dict:
        return {"statement": self.statement,
                "error_count": len(self.errors),
                "warning_count": len(self.warnings),
                "diagnostics": [d.to_dict() for d in self.diagnostics]}


class AnalysisError(Exception):
    """Raised at ``prepare()`` time (strict mode) for E-level findings."""

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        errors = report.errors
        summary = "; ".join(d.format() for d in errors[:3])
        if len(errors) > 3:
            summary += f"; ... {len(errors) - 3} more"
        super().__init__(
            f"statement rejected by static analysis: {summary}")


@dataclass(frozen=True)
class AnalysisOptions:
    """How the session layer runs the analyzer.

    ``enabled=False`` skips analysis entirely (prepared queries carry no
    diagnostics).  ``strict=True`` makes ``prepare()`` raise
    :class:`AnalysisError` when the report contains errors — warnings
    never raise.  ``disabled_codes`` suppresses individual codes.
    """

    enabled: bool = True
    strict: bool = False
    disabled_codes: frozenset[str] = frozenset()

    def wants(self, code: str) -> bool:
        return code not in self.disabled_codes


#: The defaults: analyze, attach diagnostics, never raise.
DEFAULT_OPTIONS = AnalysisOptions()
