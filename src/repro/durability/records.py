"""The JSON codec shared by WAL frames and snapshot bodies.

Payloads are plain JSON values, except RDF terms, which are encoded as
single-key marker objects (``{"@iri": ...}``, ``{"@lit": [value, lang,
datatype]}``, ``{"@bnode": ...}``) so a replayed triple is
*term-exact*: a ``Literal("1")`` never comes back as an ``IRI`` or an
``int``, and a ``BNode`` keeps its identity across the crash.
"""

from __future__ import annotations

import json
from typing import Any

from ..rdf.terms import BNode, IRI, Literal

_IRI_KEY = "@iri"
_LIT_KEY = "@lit"
_BNODE_KEY = "@bnode"


def json_default(value: Any) -> Any:
    if isinstance(value, IRI):
        return {_IRI_KEY: value.value}
    if isinstance(value, Literal):
        return {_LIT_KEY: [value.value, value.lang, value.datatype]}
    if isinstance(value, BNode):
        return {_BNODE_KEY: value.id}
    raise TypeError(f"cannot serialize {value!r} to a durable record")


def json_object_hook(obj: dict) -> Any:
    if len(obj) == 1:
        if _IRI_KEY in obj:
            return IRI(obj[_IRI_KEY])
        if _LIT_KEY in obj:
            value, lang, datatype = obj[_LIT_KEY]
            return Literal(value, lang, datatype)
        if _BNODE_KEY in obj:
            return BNode(obj[_BNODE_KEY])
    return obj


def encode_json(payload: Any) -> bytes:
    return json.dumps(payload, separators=(",", ":"),
                      default=json_default).encode("utf-8")


def decode_json(data: bytes) -> Any:
    return json.loads(data.decode("utf-8"), object_hook=json_object_hook)
