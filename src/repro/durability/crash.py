"""The crash-point test harness: fault injection at every write boundary.

A :class:`FaultyOpener` is plugged into ``DurabilityOptions.file_opener``
so every durable file the manager opens is wrapped.  Run once with no
budget to *record* the byte offset of every OS write boundary; then for
each boundary re-run the same workload with ``crash_after_bytes`` set —
the opener writes exactly that many bytes (possibly tearing a frame
mid-write), raises :class:`CrashPoint`, and refuses all further I/O,
exactly like a process that lost power.  Recovery of the surviving
files must then match a never-crashed reference that applied the same
durable prefix.
"""

from __future__ import annotations

from typing import Any, Callable

from .errors import DurabilityError


class CrashPoint(Exception):
    """The simulated power failure."""


class FaultyOpener:
    """An ``open()`` replacement with a cumulative byte budget.

    ``crash_after_bytes=None`` records write boundaries without ever
    failing; otherwise the first write that would exceed the budget
    writes only its in-budget prefix, flushes it, and raises
    :class:`CrashPoint`.  Once crashed, every write/flush/fsync on any
    file from this opener raises — nothing "after the power cut" can
    reach the disk.
    """

    def __init__(self, crash_after_bytes: int | None = None) -> None:
        self.crash_after_bytes = crash_after_bytes
        self.bytes_written = 0
        self.crashed = False
        #: Cumulative offsets at the end of every completed write call,
        #: recorded across *all* files this opener produced — the crash
        #: matrix is built from these.
        self.write_boundaries: list[int] = []

    def __call__(self, path: str, mode: str = "rb",
                 **kwargs: Any) -> "FaultyFile":
        if self.crashed:
            raise CrashPoint(f"open({path!r}) after simulated crash")
        return FaultyFile(open(path, mode, **kwargs), self)


class FaultyFile:
    """File wrapper enforcing the opener's shared byte budget."""

    def __init__(self, handle: Any, opener: FaultyOpener) -> None:
        self._handle = handle
        self._opener = opener

    def write(self, data: bytes) -> int:
        opener = self._opener
        if opener.crashed:
            raise CrashPoint("write after simulated crash")
        budget = opener.crash_after_bytes
        if budget is not None:
            remaining = budget - opener.bytes_written
            if len(data) > remaining:
                if remaining > 0:
                    self._handle.write(data[:remaining])
                    self._handle.flush()
                opener.bytes_written = budget
                opener.crashed = True
                raise CrashPoint(
                    f"simulated crash at byte {budget} "
                    f"(mid-write of {len(data)} bytes)")
        written = self._handle.write(data)
        opener.bytes_written += len(data)
        opener.write_boundaries.append(opener.bytes_written)
        return written

    def flush(self) -> None:
        if self._opener.crashed:
            raise CrashPoint("flush after simulated crash")
        self._handle.flush()

    def fileno(self) -> int:
        # os.fsync() goes through here: a crashed opener must not let
        # the manager "sync" bytes that never made it out.
        if self._opener.crashed:
            raise CrashPoint("fsync after simulated crash")
        return self._handle.fileno()

    def close(self) -> None:
        self._handle.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._handle, name)


def crash_budgets(boundaries: list[int]) -> list[int]:
    """The fault matrix for a recorded clean run.

    For every write boundary: crash exactly *at* it (the next write
    vanishes entirely) and one byte *before* it (the write is torn
    mid-frame).  Deduplicated and ordered.
    """
    if not boundaries:
        raise DurabilityError("clean run recorded no write boundaries")
    budgets: set[int] = {0}
    for boundary in boundaries:
        budgets.add(boundary)
        if boundary > 0:
            budgets.add(boundary - 1)
    return sorted(budgets)
