"""Compacted snapshots: point-in-time component state, written atomically.

A snapshot file is a one-line header (magic, CRC32, body length)
followed by one JSON body holding every attached component's state plus
its WAL cut — the per-component sequence number the snapshot covers.
Recovery loads the newest *valid* snapshot and replays only WAL frames
past each component's cut; a corrupt or torn snapshot simply falls back
to the previous epoch with a longer replay.

Writes are crash-safe by construction: the body goes to a temp file,
is fsynced, and only then renamed over the final name (``os.replace``
is atomic on POSIX), followed by a directory fsync — a crash at any
byte leaves either the old snapshot set or the new one, never a
half-written file under a valid name.

Component payloads reuse the stack's own typed machinery rather than
pickling: tables round-trip through ``Column.to_spec()`` + the CSV
codec with an explicit NULL marker, triple stores ship their
dictionary-encoded id-tuples plus the (remapped, dense) term table,
and foreign tables are recorded as *descriptors* so recovery re-attaches
them instead of replaying remote fetches.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Callable

from ..core.stored_queries import StoredQueryRegistry
from ..crosse.kb import Reference
from ..federation.foreign import (CsvSource, ForeignTable,
                                  attach_foreign_table, describe_source)
from ..rdf.store import Triple, TripleStore
from ..relational.csv_io import load_csv, rows_to_csv
from ..relational.engine import Database
from ..relational.schema import Column
from .errors import DurabilityError, SnapshotError
from .records import decode_json, encode_json

SNAPSHOT_MAGIC = b"REPROSNAP1"

#: The CSV NULL marker snapshots always use, so a NULL column value and
#: an empty string survive the round-trip distinctly.
NULL_MARKER = "\\N"

#: SESQL WHERE-rewrite temp tables are session-private scratch space;
#: they are never journaled and never snapshotted.
TEMP_TABLE_PREFIX = "__sesql_"


# -- file format -------------------------------------------------------------

def write_snapshot_file(directory: str, final_name: str, payload: Any,
                        opener: Callable[..., Any]) -> str:
    body = encode_json(payload)
    header = SNAPSHOT_MAGIC + b" %08x %d\n" % (zlib.crc32(body), len(body))
    tmp_path = os.path.join(directory, final_name + ".tmp")
    final_path = os.path.join(directory, final_name)
    handle = opener(tmp_path, "wb")
    try:
        handle.write(header + body)
        handle.flush()
        os.fsync(handle.fileno())
    finally:
        handle.close()
    os.replace(tmp_path, final_path)
    fsync_directory(directory)
    return final_path


def fsync_directory(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def load_snapshot_file(path: str) -> Any:
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}")
    newline = raw.find(b"\n")
    if newline < 0 or not raw.startswith(SNAPSHOT_MAGIC + b" "):
        raise SnapshotError(f"snapshot {path!r} has no valid header")
    try:
        checksum_hex, length_text = raw[len(SNAPSHOT_MAGIC) + 1:newline] \
            .split(b" ")
        checksum = int(checksum_hex, 16)
        length = int(length_text)
    except ValueError:
        raise SnapshotError(f"snapshot {path!r} has a malformed header")
    body = raw[newline + 1:]
    if len(body) != length:
        raise SnapshotError(
            f"snapshot {path!r} is truncated "
            f"({len(body)} of {length} body bytes)")
    if zlib.crc32(body) != checksum:
        raise SnapshotError(f"snapshot {path!r} fails its checksum")
    try:
        return decode_json(body)
    except Exception as exc:
        raise SnapshotError(f"snapshot {path!r} body is unreadable: {exc}")


# -- relational databank -----------------------------------------------------

def serialize_database(db: Database, journal) -> dict:
    """State of every durable table, under the databank's read lock.

    ``journal.seq`` is read inside the same lock: journal appends
    happen under the write side, so the cut is exact.
    """
    with db.rwlock.read_locked():
        tables: list[dict] = []
        for name in db.table_names():
            if name.startswith(TEMP_TABLE_PREFIX):
                continue
            table = db.table(name)
            if isinstance(table, ForeignTable):
                tables.append({
                    "name": table.name,
                    "foreign": describe_source(table.source),
                    "mode": table.mode,
                    "latency_s": table.latency_s})
                continue
            tables.append({
                "name": table.name,
                "columns": [col.to_spec() for col in table.schema.columns],
                "indexes": [{"name": index.name,
                             "columns": list(index.column_names),
                             "unique": index.unique,
                             "kind": index.kind}
                            for index in table.indexes.values()],
                "csv": rows_to_csv(table.schema.column_names(),
                                   table.rows(),
                                   null_marker=NULL_MARKER)})
        return {"kind": "database", "seq": journal.seq,
                "generation": db.generation, "tables": tables}


def restore_database(db: Database, payload: dict,
                     foreign_sources) -> None:
    for entry in payload["tables"]:
        if "foreign" in entry:
            source = resolve_foreign_source(
                entry["name"], entry["foreign"], foreign_sources)
            attach_foreign_table(db, entry["name"], source,
                                 entry["mode"], entry["latency_s"])
            continue
        columns = [Column.from_spec(spec) for spec in entry["columns"]]
        db.create_table(entry["name"], columns)
        for index in entry["indexes"]:
            db.table(entry["name"]).create_index(
                index["name"], list(index["columns"]),
                index["unique"], index["kind"])
        load_csv(db, entry["name"], entry["csv"], create=False,
                 null_marker=NULL_MARKER)
    db.restore_generation(payload.get("generation", 0))


def database_empty(db: Database) -> bool:
    return not any(not name.startswith(TEMP_TABLE_PREFIX)
                   for name in db.table_names())


def resolve_foreign_source(table_name: str, descriptor: dict,
                           foreign_sources):
    """Rebuild a foreign source from its WAL/snapshot descriptor.

    CSV sources are self-contained (the text is in the descriptor).
    Everything else — remote databases, remote views, callables — is
    identity-only by design: recovery must never replay a remote fetch,
    so the caller supplies ``foreign_sources`` (a mapping of table name
    to source, or a callable taking the descriptor) to re-establish
    live handles.
    """
    if foreign_sources is not None:
        if callable(foreign_sources):
            source = foreign_sources(descriptor)
        else:
            source = foreign_sources.get(table_name)
        if source is not None:
            return source
    if descriptor.get("kind") == "csv":
        return CsvSource(descriptor["text"], descriptor["name"])
    raise DurabilityError(
        f"cannot re-attach foreign table {table_name!r} from descriptor "
        f"{descriptor!r}: pass foreign_sources= to recover()")


# -- triple store ------------------------------------------------------------

def serialize_store(store: TripleStore, journal) -> dict:
    """Dictionary-encoded store state: dense term table + id triples.

    Term ids are remapped to a dense 0..n-1 range covering only the
    terms this store actually uses — the dictionary may be shared
    platform-wide and hold terms of other stores.
    """
    with store.rwlock.read_locked():
        id_triples = sorted(store._match_ids(None, None, None))
        used_ids = sorted({term_id for triple in id_triples
                           for term_id in triple})
        remap = {old: new for new, old in enumerate(used_ids)}
        term_of = store.dictionary.term
        return {"kind": "store", "seq": journal.seq,
                "generation": store.generation,
                "indexing": store.indexing,
                "terms": [term_of(term_id) for term_id in used_ids],
                "triples": [[remap[s], remap[p], remap[o]]
                            for s, p, o in id_triples]}


def restore_store(store: TripleStore, payload: dict) -> None:
    terms = payload["terms"]
    store.add_all((terms[s], terms[p], terms[o])
                  for s, p, o in payload["triples"])
    store.restore_generation(payload.get("generation", 0))


def store_empty(store: TripleStore) -> bool:
    return len(store) == 0


# -- CroSSE platform ---------------------------------------------------------

def serialize_platform(platform, seq: int) -> dict:
    """Users, statements, context, stored queries and documents."""
    statements = platform.statements
    context = platform.context
    return {
        "kind": "platform", "seq": seq,
        "users": [{"username": user.username,
                   "display_name": user.display_name,
                   "affiliation": user.affiliation,
                   "interests": list(user.declared_interests)}
                  for user in platform.users.users()],
        "statements": [
            {"id": record.statement_id,
             "triple": list(record.triple),
             "author": record.author,
             "public": record.public,
             "accepted_by": sorted(record.accepted_by),
             "reference": ([record.reference.title,
                            record.reference.author,
                            record.reference.link]
                           if record.reference is not None else None)}
            for record in statements._statements.values()],
        "next_statement_id": statements._next_statement_id,
        "stored_queries": _registry_spec(platform.stored_queries),
        "user_queries": {username: _registry_spec(registry)
                         for username, registry
                         in platform._user_queries.items()},
        "profiles": [{"username": profile.username,
                      "weights": dict(profile.weights),
                      "history": [list(entry)
                                  for entry in profile.history]}
                     for profile in context.profiles()],
        "resources": {resource: dict(accesses)
                      for resource, accesses
                      in context._resource_access.items()},
        "documents": [[doc.doc_id, doc.title, doc.text, list(doc.tags)]
                      for doc in platform.documents.values()],
    }


def _registry_spec(registry: StoredQueryRegistry) -> list[list[str]]:
    return [[stored.name, stored.text, stored.description]
            for stored in (registry.get(name)
                           for name in registry.names())]


def restore_platform(platform, payload: dict) -> None:
    for user in payload.get("users", ()):
        platform.users.register(user["username"], user["display_name"],
                                user["affiliation"],
                                list(user["interests"]))
    statements = platform.statements
    for entry in payload.get("statements", ()):
        reference = (Reference(*entry["reference"])
                     if entry["reference"] else None)
        statements.restore_statement(
            entry["id"], Triple(*entry["triple"]), entry["author"],
            entry["public"], entry["accepted_by"], reference)
    statements._next_statement_id = max(
        statements._next_statement_id,
        payload.get("next_statement_id", 0))
    for name, text, description in payload.get("stored_queries", ()):
        platform.stored_queries.register(name, text, description)
    for username, specs in payload.get("user_queries", {}).items():
        registry = platform._user_queries.setdefault(
            username, StoredQueryRegistry())
        for name, text, description in specs:
            registry.register(name, text, description)
    context = platform.context
    for spec in payload.get("profiles", ()):
        profile = context.profile(spec["username"])
        profile.weights.update(spec["weights"])
        profile.history.extend(tuple(entry) for entry in spec["history"])
    for resource, accesses in payload.get("resources", {}).items():
        context._resource_access[resource].update(accesses)
    for doc_id, title, text, tags in payload.get("documents", ()):
        platform.add_document(doc_id, title, text, tags)


def platform_empty(platform) -> bool:
    return (len(platform.users) == 0
            and len(platform.statements) == 0
            and not platform.stored_queries.names()
            and not platform._user_queries
            and not platform.context.profiles()
            and not platform.context.all_resources()
            and not platform.documents)
