"""The append-only write-ahead log.

Every record is one *frame*: an 8-byte header (big-endian payload
length + CRC32 of the payload) followed by the JSON payload.  The frame
shape is ``{"c": component, "q": per-component sequence, "g":
post-mutation generation, "t": record type, "d": data}``; segment
header frames use the reserved component name ``"__wal__"``.

The reader is torn-tail tolerant by design: a crash mid-write leaves a
frame whose length header overruns the file or whose checksum fails,
and :func:`iter_frames` simply stops there, reporting the last valid
byte offset so recovery can truncate the tail.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Any, Callable, Iterator

from .errors import WalCorruptionError
from .records import decode_json, encode_json

FRAME_HEADER = struct.Struct(">II")

#: Sanity cap on a single frame: a corrupted length header must not
#: make the reader attempt a multi-gigabyte allocation.
MAX_FRAME_BYTES = 1 << 28

#: Reserved component name for segment header frames.
WAL_HEADER_COMPONENT = "__wal__"


def encode_frame(payload: Any) -> bytes:
    body = encode_json(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise WalCorruptionError(
            f"record of {len(body)} bytes exceeds the frame cap")
    return FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


def iter_frames(data: bytes) -> Iterator[tuple[Any, int]]:
    """Yield ``(payload, end_offset)`` for every valid frame prefix.

    Stops (without raising) at the first torn or corrupt frame; the
    last yielded ``end_offset`` is the valid length of the log.
    """
    offset = 0
    total = len(data)
    while offset + FRAME_HEADER.size <= total:
        length, checksum = FRAME_HEADER.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            return
        end = offset + FRAME_HEADER.size + length
        if end > total:
            return
        body = data[offset + FRAME_HEADER.size:end]
        if zlib.crc32(body) != checksum:
            return
        yield decode_json(body), end
        offset = end


def read_frames(path: str) -> tuple[list[Any], int, int]:
    """All valid frames of a segment plus (valid_end, file_size)."""
    with open(path, "rb") as handle:
        data = handle.read()
    frames: list[Any] = []
    end = 0
    for payload, end in iter_frames(data):
        frames.append(payload)
    return frames, end, len(data)


class WalWriter:
    """Group-committing appender for one WAL segment.

    ``fsync="always"`` writes and fsyncs every frame before the append
    returns; ``"batch"`` buffers frames until a group-commit threshold,
    then writes the whole group as **one** OS write followed by one
    fsync; ``"never"`` writes at the same thresholds but leaves
    syncing to the OS.  The caller serializes appends (the manager's
    append lock).
    """

    def __init__(self, path: str, *, fsync: str = "batch",
                 group_commit_records: int = 64,
                 group_commit_bytes: int = 256 * 1024,
                 opener: Callable[..., Any] | None = None) -> None:
        self.path = path
        self._fsync = fsync
        self._group_records = max(1, group_commit_records)
        self._group_bytes = max(1, group_commit_bytes)
        self._fh = (opener or open)(path, "ab")
        self._buffer: list[bytes] = []
        self._buffered_bytes = 0
        self._closed = False
        #: Telemetry hook (duck-typed): fsync latency, bytes written
        #: and group-commit batch sizes.
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        if telemetry is None:
            return
        metrics = telemetry.metrics
        self._tm_fsync = metrics.histogram(
            "repro_wal_fsync_seconds", "WAL fsync latency")
        self._tm_bytes = metrics.counter(
            "repro_wal_bytes_total", "Bytes written to the WAL")
        self._tm_batch = metrics.histogram(
            "repro_wal_batch_records",
            "Frames per group-commit write",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                     256.0, 512.0))

    def append(self, payload: Any) -> None:
        frame = encode_frame(payload)
        self._buffer.append(frame)
        self._buffered_bytes += len(frame)
        if self._fsync == "always":
            self.flush(sync=True)
        elif (len(self._buffer) >= self._group_records
                or self._buffered_bytes >= self._group_bytes):
            self.flush(sync=self._fsync == "batch")

    def flush(self, sync: bool = False) -> None:
        """Write out buffered frames; *sync* forces an fsync too."""
        tel = self.telemetry
        if self._buffer:
            blob = b"".join(self._buffer)
            if tel is not None:
                self._tm_bytes.inc(len(blob))
                self._tm_batch.observe(len(self._buffer))
            self._fh.write(blob)
            self._buffer = []
            self._buffered_bytes = 0
            self._fh.flush()
        if sync:
            if tel is not None:
                started = time.perf_counter()
                os.fsync(self._fh.fileno())
                self._tm_fsync.observe(time.perf_counter() - started)
            else:
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.flush(sync=self._fsync == "always")
        finally:
            self._closed = True
            self._fh.close()
