"""Configuration for the durability subsystem.

Durability is **off by default** everywhere — a
:class:`DurabilityOptions` handed to ``repro.connect(...)`` or the
:class:`~repro.crosse.platform.CrossePlatform` constructor switches it
on for that stack.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable

from .errors import DurabilityError

_FSYNC_POLICIES = ("always", "batch", "never")


@dataclass(frozen=True)
class DurabilityOptions:
    """Knobs for the WAL + snapshot manager.

    ``fsync`` picks the durability/latency trade-off:

    - ``"always"`` — every record is written *and* fsynced before the
      mutating call returns (no data loss on power failure, slowest).
    - ``"batch"`` (default) — records buffer until
      ``group_commit_records`` / ``group_commit_bytes`` is reached,
      then one write + fsync covers the whole group.
    - ``"never"`` — the OS decides when bytes hit the platter (crash of
      the *process* loses nothing once buffers flush; power loss may).

    ``snapshot_every`` (records) enables the background compaction
    thread: after that many WAL records a compacted snapshot is taken
    and the WAL rotates.  ``keep_epochs`` bounds retention: the N most
    recent snapshots stay on disk (plus every WAL segment any of them
    could need for its tail), so a corrupt latest snapshot falls back
    to the previous one with a longer replay.

    ``file_opener`` replaces :func:`open` for every durable file the
    manager writes — the crash-point test harness injects fault-raising
    files through it.
    """

    directory: str
    fsync: str = "batch"
    group_commit_records: int = 64
    group_commit_bytes: int = 256 * 1024
    snapshot_every: int = 0
    keep_epochs: int = 2
    file_opener: Callable[..., Any] | None = None

    def __post_init__(self) -> None:
        if not self.directory:
            raise DurabilityError("durability directory must be non-empty")
        if self.fsync not in _FSYNC_POLICIES:
            raise DurabilityError(
                f"fsync must be one of {_FSYNC_POLICIES}, "
                f"got {self.fsync!r}")
        if self.group_commit_records < 1:
            raise DurabilityError("group_commit_records must be >= 1")
        if self.group_commit_bytes < 1:
            raise DurabilityError("group_commit_bytes must be >= 1")
        if self.snapshot_every < 0:
            raise DurabilityError("snapshot_every must be >= 0")
        if self.keep_epochs < 1:
            raise DurabilityError("keep_epochs must be >= 1")

    def replace(self, **changes: Any) -> "DurabilityOptions":
        return dataclasses.replace(self, **changes)
