"""Durability subsystem: write-ahead log, compacted snapshots, recovery.

Off by default.  Hand a :class:`DurabilityOptions` to
``repro.connect(..., durability=...)`` or
``CrossePlatform(databank, durability=...)`` and every committed
mutation — relational DML/DDL, triple-store changes, KB statement
provenance, context/user/stored-query/document state, foreign-table
attachments — is journaled to an append-only, checksummed WAL and
periodically compacted into atomic snapshots.  After a crash, recovery
replays the newest valid snapshot plus the WAL tail and restores every
generation counter, so caches keyed on (id, generation) never serve
stale entries across the restart.
"""

from .crash import CrashPoint, FaultyFile, FaultyOpener, crash_budgets
from .errors import DurabilityError, SnapshotError, WalCorruptionError
from .manager import (ComponentJournal, DurabilityManager, RecoveryReport,
                      apply_database_record, apply_store_record)
from .options import DurabilityOptions
from .state import (database_state, platform_state, state_digest,
                    store_state)
from .wal import WalWriter, encode_frame, iter_frames, read_frames

__all__ = [
    "ComponentJournal",
    "CrashPoint",
    "DurabilityError",
    "DurabilityManager",
    "DurabilityOptions",
    "FaultyFile",
    "FaultyOpener",
    "RecoveryReport",
    "SnapshotError",
    "WalCorruptionError",
    "WalWriter",
    "crash_budgets",
    "database_state",
    "encode_frame",
    "iter_frames",
    "apply_database_record",
    "apply_store_record",
    "platform_state",
    "read_frames",
    "state_digest",
    "store_state",
]
