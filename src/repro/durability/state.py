"""Canonical state capture + digests for the crash-point harness.

``*_state`` functions flatten a component into a deterministic,
JSON-able structure (sorted keys, sorted collections, generation
counters included); :func:`state_digest` hashes it.  The harness proves
recovery exact by comparing digests of a recovered stack against a
never-crashed reference that applied the same operation prefix —
including the generation counters, so caches can never serve stale
entries after restart.

``store_id`` and planner statistics are deliberately excluded: the
former is process-local identity, the latter is derived state an
ANALYZE rebuilds (and ANALYZE is excluded from the WAL by
construction).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..federation.foreign import ForeignTable, describe_source
from ..rdf.ntriples import serialize_ntriples
from ..rdf.store import TripleStore
from ..relational.engine import Database
from .records import json_default
from .snapshot import TEMP_TABLE_PREFIX


def database_state(db: Database) -> dict:
    with db.rwlock.read_locked():
        tables: dict[str, Any] = {}
        for name in db.table_names():
            if name.startswith(TEMP_TABLE_PREFIX):
                continue
            table = db.table(name)
            if isinstance(table, ForeignTable):
                tables[name] = {"foreign": describe_source(table.source),
                                "mode": table.mode,
                                "latency_s": table.latency_s}
                continue
            tables[name] = {
                "columns": [col.to_spec() for col in table.schema.columns],
                "rows": [list(row) for row in table.rows()],
                "indexes": sorted(
                    [index.name, list(index.column_names),
                     index.unique, index.kind]
                    for index in table.indexes.values())}
        return {"generation": db.generation, "tables": tables}


def store_state(store: TripleStore) -> dict:
    return {"generation": store.generation,
            "ntriples": serialize_ntriples(store)}


def platform_state(platform) -> dict:
    statements = platform.statements
    context = platform.context
    return {
        "users": [[user.username, user.display_name, user.affiliation,
                   list(user.declared_interests)]
                  for user in platform.users.users()],
        "statements": sorted(
            [record.statement_id, record.triple.n3(), record.author,
             record.public, sorted(record.accepted_by),
             ([record.reference.title, record.reference.author,
               record.reference.link]
              if record.reference is not None else None)]
            for record in statements._statements.values()),
        "next_statement_id": statements._next_statement_id,
        "stored_queries": sorted(
            [name, platform.stored_queries.get(name).text,
             platform.stored_queries.get(name).description]
            for name in platform.stored_queries.names()),
        "user_queries": {
            username: sorted([name, registry.get(name).text,
                              registry.get(name).description]
                             for name in registry.names())
            for username, registry in sorted(
                platform._user_queries.items())},
        "profiles": sorted(
            [profile.username,
             sorted(profile.weights.items()),
             [list(entry) for entry in profile.history]]
            for profile in context.profiles()),
        "resources": {resource: sorted(accesses.items())
                      for resource, accesses
                      in sorted(context._resource_access.items())
                      if accesses},
        "documents": sorted(
            [doc.doc_id, doc.title, doc.text, list(doc.tags)]
            for doc in platform.documents.values()),
    }


def state_digest(state: Any) -> str:
    canonical = json.dumps(state, sort_keys=True, default=json_default)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
