"""The durability manager: WAL append, snapshot epochs, crash recovery.

One :class:`DurabilityManager` owns one directory holding numbered
snapshot/WAL pairs::

    snap-000001.snap   compacted state as of epoch 1
    wal-000001.log     records logged while epoch 1 was current

WAL segment *K* contains exactly the records logged after snapshot *K*
was taken (``wal-000000.log`` predates any snapshot), so recovery is:
load the newest **valid** snapshot, then replay every retained segment
in order, applying only frames past each component's recorded cut.  A
corrupt latest snapshot falls back to the previous epoch — same replay
logic, longer tail.  Retention keeps ``keep_epochs`` snapshots plus
every segment the oldest of them could need.

Components attach *before* ``recover()`` and are identified by stable
names (``db:<name>``, ``store:<name>``, ``"platform"``) so a restarted
process re-binds its journals to the recovered history.  Mutation
hooks in the relational/rdf/crosse layers are duck-typed — they call
``journal.log(...)`` on an attached ``durability_journal`` attribute
and never import this package, keeping the core layers cycle-free.

Locking protocol (deadlock-free by ordering): mutators take their
component lock first, then the manager's append lock inside
``journal.log``.  Snapshots serialize each component under its *own*
read lock without the append lock, then swap the WAL under the append
lock without any component lock — the two lock classes are always
acquired in the same order.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..crosse.kb import Reference
from ..federation.foreign import attach_foreign_table
from ..rdf.store import Triple
from ..relational.engine import Database
from ..relational.errors import RelationalError
from ..relational.schema import Column
from . import snapshot as snapshot_io
from .errors import DurabilityError, SnapshotError
from .options import DurabilityOptions
from .wal import WAL_HEADER_COMPONENT, WalWriter, iter_frames


class ComponentJournal:
    """The logging facade a component's mutation hooks talk to.

    ``log`` is a no-op while the manager is replaying (or closed), so
    recovery can drive mutations through the exact same code paths
    without re-journaling them.
    """

    __slots__ = ("manager", "name", "seq")

    def __init__(self, manager: "DurabilityManager", name: str) -> None:
        self.manager = manager
        self.name = name
        #: Per-component record sequence; snapshot cuts and replay
        #: filtering are expressed in it.
        self.seq = 0

    def log(self, record_type: str, data: Any, generation: int = 0) -> None:
        manager = self.manager
        if not manager._logging:
            return
        with manager._lock:
            if manager._writer is None:
                return
            self.seq += 1
            manager._append_locked({"c": self.name, "q": self.seq,
                                    "g": generation, "t": record_type,
                                    "d": data})


class _Component:
    __slots__ = ("name", "kind", "obj", "journal")

    def __init__(self, name: str, kind: str, obj: Any,
                 journal: ComponentJournal) -> None:
        self.name = name
        self.kind = kind
        self.obj = obj
        self.journal = journal


@dataclass
class RecoveryReport:
    """What ``recover()`` found and did."""

    snapshot_epoch: int | None = None
    frames_applied: int = 0
    frames_skipped: int = 0
    replay_errors: int = 0
    truncated_bytes: int = 0
    initial_snapshot: bool = False
    components: dict[str, dict] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)


def apply_database_record(db: Database, record_type: str, data: dict,
                          foreign_sources: Any = None) -> None:
    """Replay one WAL ``db:*`` record against *db*.

    Shared by crash recovery and the cluster layer's WAL-tailing read
    replicas, so both consumers apply primary history through the exact
    same mutation paths.
    """
    if record_type == "sql":
        try:
            db.execute(data["sql"])
        except RelationalError:
            # The original statement failed identically after its
            # partial mutation; the log recorded it because the
            # generation moved.  Same failure, same state.
            pass
    elif record_type == "rows":
        columns = data["columns"]
        db.insert_rows(data["table"],
                       (dict(zip(columns, row))
                        for row in data["rows"]))
    elif record_type == "create_table":
        db.create_table(
            data["name"],
            [Column.from_spec(spec) for spec in data["columns"]],
            data["if_not_exists"])
    elif record_type == "drop_table":
        db.drop_table(data["name"], data["if_exists"])
    elif record_type == "bump":
        db.bump_generation()
    elif record_type == "attach_foreign":
        source = snapshot_io.resolve_foreign_source(
            data["name"], data["source"], foreign_sources)
        attach_foreign_table(db, data["name"], source,
                             data["mode"], data["latency_s"])
    else:
        raise DurabilityError(
            f"unknown database record type {record_type!r}")


def apply_store_record(store: Any, record_type: str, data: dict) -> None:
    """Replay one WAL ``store:*`` record against *store* (see
    :func:`apply_database_record`)."""
    if record_type == "add":
        store.add(Triple(*data["triple"]))
    elif record_type == "add_all":
        store.add_all(tuple(triple) for triple in data["triples"])
    elif record_type == "remove":
        store.remove(Triple(*data["triple"]))
    elif record_type == "remove_all":
        store.remove_all(Triple(*triple)
                         for triple in data["triples"])
    elif record_type == "clear":
        store.clear()
    else:
        raise DurabilityError(
            f"unknown store record type {record_type!r}")


class DurabilityManager:
    """WAL + snapshots + recovery for an attached component set."""

    def __init__(self, options: DurabilityOptions | str) -> None:
        if isinstance(options, str):
            options = DurabilityOptions(directory=options)
        self.options = options
        self.directory = options.directory
        os.makedirs(self.directory, exist_ok=True)
        self._opener = options.file_opener or open
        #: Append lock: journal sequencing + writer access.  Reentrant
        #: because replay/apply paths may nest logging call sites.
        self._lock = threading.RLock()
        self._snapshot_mutex = threading.Lock()
        self._logging = False
        self._recovered = False
        self._closed = False
        self._components: dict[str, _Component] = {}
        self._writer: WalWriter | None = None
        self._epoch = 0          # epoch of the effective snapshot
        self._wal_seq = 0        # numeric suffix of the active segment
        self._max_epoch_seen = 0
        self._records_since_snapshot = 0
        self._snap_thread: threading.Thread | None = None
        self._snap_event = threading.Event()
        self.snapshot_errors: list[Exception] = []
        self.last_recovery: RecoveryReport | None = None
        #: Telemetry hook (duck-typed): WAL fsync/bytes/batch metrics,
        #: snapshot durations, and snapshot spans parented under the
        #: query whose append crossed the snapshot threshold.
        self.telemetry = None
        self._snap_parent = None

    def attach_telemetry(self, telemetry) -> None:
        """Meter the WAL and snapshots through *telemetry* (None = off)."""
        self.telemetry = telemetry
        if telemetry is not None:
            self._tm_snapshot = telemetry.metrics.histogram(
                "repro_snapshot_seconds",
                "Wall time of compacted snapshot writes")
        with self._lock:
            if self._writer is not None:
                self._writer.attach_telemetry(telemetry)

    # -- attachment ----------------------------------------------------------

    def attach_database(self, db: Database,
                        name: str | None = None) -> ComponentJournal:
        journal = self._attach(f"db:{name or db.name}", "database", db)
        db.durability_journal = journal
        return journal

    def attach_store(self, store: Any,
                     name: str = "kb") -> ComponentJournal:
        journal = self._attach(f"store:{name}", "store", store)
        store.durability_journal = journal
        return journal

    def attach_platform(self, platform: Any) -> ComponentJournal:
        journal = self._attach("platform", "platform", platform)
        platform.durability_journal = journal
        platform.users.durability_journal = journal
        platform.context.durability_journal = journal
        platform.statements.durability_journal = journal
        return journal

    def _attach(self, name: str, kind: str, obj: Any) -> ComponentJournal:
        with self._lock:
            if self._recovered:
                raise DurabilityError(
                    "components must attach before recover()")
            if name in self._components:
                raise DurabilityError(
                    f"component {name!r} is already attached")
            journal = ComponentJournal(self, name)
            self._components[name] = _Component(name, kind, obj, journal)
            return journal

    # -- paths ---------------------------------------------------------------

    def _snap_name(self, epoch: int) -> str:
        return f"snap-{epoch:06d}.snap"

    def _wal_path(self, seq: int) -> str:
        return os.path.join(self.directory, f"wal-{seq:06d}.log")

    def _list_numbered(self, prefix: str,
                       suffix: str) -> list[tuple[int, str]]:
        entries: list[tuple[int, str]] = []
        for name in os.listdir(self.directory):
            if not (name.startswith(prefix) and name.endswith(suffix)):
                continue
            middle = name[len(prefix):len(name) - len(suffix)]
            if middle.isdigit():
                entries.append((int(middle),
                                os.path.join(self.directory, name)))
        entries.sort()
        return entries

    def has_prior_state(self) -> bool:
        """True when the directory holds any snapshot or WAL segment."""
        return bool(self._list_numbered("snap-", ".snap")
                    or self._list_numbered("wal-", ".log"))

    # -- recovery ------------------------------------------------------------

    def recover(self, foreign_sources: Any = None) -> RecoveryReport:
        """Restore prior state and arm logging.

        All components must already be attached (empty, when prior
        state exists).  *foreign_sources* re-resolves non-CSV foreign
        tables: a mapping of table name to source, or a callable taking
        the recorded descriptor — remote fetches are never replayed.
        """
        with self._snapshot_mutex:
            report = self._recover_locked(foreign_sources)
        self.last_recovery = report
        if report.initial_snapshot:
            # Durability switched on over an already-populated stack in
            # a fresh directory: capture the baseline immediately so a
            # crash before the first explicit snapshot still recovers.
            self.snapshot()
        if self.options.snapshot_every > 0 and self._snap_thread is None:
            self._snap_thread = threading.Thread(
                target=self._snapshot_loop,
                name="durability-snapshot", daemon=True)
            self._snap_thread.start()
        return report

    def _recover_locked(self, foreign_sources: Any) -> RecoveryReport:
        if self._recovered:
            raise DurabilityError("recover() already ran")
        report = RecoveryReport()
        for name in os.listdir(self.directory):
            if name.endswith(".tmp"):  # torn snapshot write, never renamed
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover
                    pass
        snaps = self._list_numbered("snap-", ".snap")
        wals = self._list_numbered("wal-", ".log")
        self._max_epoch_seen = max(
            [num for num, _ in snaps] + [num for num, _ in wals],
            default=0)
        has_prior = bool(snaps or wals)
        if has_prior:
            for comp in self._components.values():
                if not self._component_empty(comp):
                    raise DurabilityError(
                        f"component {comp.name!r} must be empty to "
                        f"recover prior state from {self.directory!r}")
        chosen_payload = None
        if snaps:
            for num, path in reversed(snaps):
                try:
                    chosen_payload = snapshot_io.load_snapshot_file(path)
                except SnapshotError as exc:
                    # Fall back to the previous epoch: its WAL tail is
                    # retained exactly for this case.
                    report.warnings.append(str(exc))
                    continue
                self._epoch = num
                report.snapshot_epoch = num
                break
        progress = {name: {"next": 1, "gen": 0, "broken": False}
                    for name in self._components}
        if chosen_payload is not None:
            for name, payload in chosen_payload.get("components",
                                                    {}).items():
                comp = self._components.get(name)
                if comp is None:
                    report.warnings.append(
                        f"snapshot holds unattached component {name!r}")
                    continue
                self._restore_component(comp, payload, foreign_sources)
                progress[name]["next"] = payload.get("seq", 0) + 1
                progress[name]["gen"] = payload.get("generation", 0)
        self._replay_segments(wals, progress, foreign_sources, report)
        if has_prior:
            for name, comp in self._components.items():
                state = progress[name]
                comp.journal.seq = state["next"] - 1
                self._force_generation(comp, state["gen"])
                report.components[name] = {
                    "seq": comp.journal.seq,
                    "generation": state["gen"]}
        if wals:
            self._wal_seq = wals[-1][0]
            self._writer = self._open_writer(wals[-1][1])
        else:
            self._wal_seq = self._epoch
            with self._lock:
                self._writer = self._open_writer(
                    self._wal_path(self._wal_seq))
                self._append_header_locked()
        self._recovered = True
        self._logging = True
        if not has_prior and any(
                not self._component_empty(comp)
                for comp in self._components.values()):
            report.initial_snapshot = True
        return report

    def _replay_segments(self, wals: list[tuple[int, str]],
                         progress: dict, foreign_sources: Any,
                         report: RecoveryReport) -> None:
        unattached: set[str] = set()
        for position, (num, path) in enumerate(wals):
            with open(path, "rb") as handle:
                data = handle.read()
            end = 0
            for payload, end in iter_frames(data):
                name = payload.get("c")
                if name == WAL_HEADER_COMPONENT:
                    header = payload.get("d", {}).get("components", {})
                    for comp_name, info in header.items():
                        state = progress.get(comp_name)
                        if state is not None:
                            state["gen"] = max(
                                state["gen"],
                                info.get("generation", 0))
                    continue
                state = progress.get(name)
                if state is None:
                    if name not in unattached:
                        unattached.add(name)
                        report.warnings.append(
                            f"WAL holds records for unattached "
                            f"component {name!r}")
                    report.frames_skipped += 1
                    continue
                seq = payload.get("q", 0)
                if state["broken"] or seq < state["next"]:
                    report.frames_skipped += 1
                    continue
                if seq > state["next"]:
                    # A hole (lost segment or mid-file corruption):
                    # applying later records would fabricate history.
                    state["broken"] = True
                    report.warnings.append(
                        f"WAL gap for {name!r}: expected record "
                        f"{state['next']}, found {seq}")
                    report.frames_skipped += 1
                    continue
                try:
                    self._apply_frame(self._components[name],
                                      payload.get("t"),
                                      payload.get("d"),
                                      foreign_sources)
                except Exception as exc:
                    report.replay_errors += 1
                    report.warnings.append(
                        f"replay of {name}#{seq} "
                        f"({payload.get('t')}) failed: {exc}")
                state["next"] = seq + 1
                state["gen"] = max(state["gen"], payload.get("g", 0))
                report.frames_applied += 1
            if end < len(data):
                if position == len(wals) - 1:
                    # Torn tail of the active segment: the standard
                    # crash shape.  Truncate so appends resume cleanly.
                    os.truncate(path, end)
                    report.truncated_bytes += len(data) - end
                else:
                    report.warnings.append(
                        f"corrupt frame inside retained segment "
                        f"{os.path.basename(path)}")
        return

    def _force_generation(self, comp: _Component, generation: int) -> None:
        # Exact, not max: snapshot restore drives the normal mutation
        # paths, whose incidental bumps may overshoot the recorded
        # counter.  At recovery time the process is fresh (no cache has
        # observed any (id, generation) pair yet), so pinning to the
        # pre-crash value both restores monotonicity with the crashed
        # process and keeps recovered state byte-identical to a
        # never-crashed reference.
        if comp.kind in ("database", "store"):
            comp.obj.pin_generation(generation)

    # -- replay dispatch ------------------------------------------------------

    def _component_empty(self, comp: _Component) -> bool:
        if comp.kind == "database":
            return snapshot_io.database_empty(comp.obj)
        if comp.kind == "store":
            return snapshot_io.store_empty(comp.obj)
        return snapshot_io.platform_empty(comp.obj)

    def _serialize_component(self, comp: _Component) -> dict:
        if comp.kind == "database":
            return snapshot_io.serialize_database(comp.obj, comp.journal)
        if comp.kind == "store":
            return snapshot_io.serialize_store(comp.obj, comp.journal)
        with self._lock:
            seq = comp.journal.seq
        return snapshot_io.serialize_platform(comp.obj, seq)

    def _restore_component(self, comp: _Component, payload: dict,
                           foreign_sources: Any) -> None:
        if comp.kind == "database":
            snapshot_io.restore_database(comp.obj, payload,
                                         foreign_sources)
        elif comp.kind == "store":
            snapshot_io.restore_store(comp.obj, payload)
        else:
            snapshot_io.restore_platform(comp.obj, payload)

    def _apply_frame(self, comp: _Component, record_type: str,
                     data: dict, foreign_sources: Any) -> None:
        if comp.kind == "database":
            self._apply_database(comp.obj, record_type, data,
                                 foreign_sources)
        elif comp.kind == "store":
            self._apply_store(comp.obj, record_type, data)
        else:
            self._apply_platform(comp.obj, record_type, data)

    def _apply_database(self, db: Database, record_type: str,
                        data: dict, foreign_sources: Any) -> None:
        apply_database_record(db, record_type, data, foreign_sources)

    def _apply_store(self, store: Any, record_type: str,
                     data: dict) -> None:
        apply_store_record(store, record_type, data)

    def _apply_platform(self, platform: Any, record_type: str,
                        data: dict) -> None:
        if record_type == "user":
            platform.users.register(data["username"],
                                    data["display_name"],
                                    data["affiliation"],
                                    list(data["interests"]))
        elif record_type == "stored_query":
            platform.register_stored_query(data["name"], data["sparql"],
                                           data["username"],
                                           data["description"])
        elif record_type == "stmt_insert":
            reference = (Reference(*data["reference"])
                         if data["reference"] else None)
            platform.statements.restore_statement(
                data["id"], Triple(*data["triple"]), data["author"],
                data["public"], (), reference)
        elif record_type == "stmt_accept":
            platform.statements.accept(data["username"], data["id"])
        elif record_type == "stmt_reject":
            platform.statements.reject(data["username"], data["id"])
        elif record_type == "stmt_retract":
            platform.statements.retract(data["author"], data["id"])
        elif record_type == "context":
            platform.context.record_concepts(data["username"],
                                             list(data["concepts"]),
                                             data["event"])
        elif record_type == "resource":
            platform.context.record_resource(data["username"],
                                             data["resource"])
        elif record_type == "document":
            platform.add_document(data["doc_id"], data["title"],
                                  data["text"], list(data["tags"]))
        else:
            raise DurabilityError(
                f"unknown platform record type {record_type!r}")

    # -- appending -----------------------------------------------------------

    def _append_locked(self, payload: dict) -> None:
        self._writer.append(payload)
        self._records_since_snapshot += 1
        if (self.options.snapshot_every
                and self._snap_thread is not None
                and self._records_since_snapshot
                >= self.options.snapshot_every):
            if self.telemetry is not None:
                # Remember which query tripped the threshold so the
                # background snapshot's span parents under its trace.
                current = self.telemetry.tracer.current()
                if current is not None:
                    self._snap_parent = current
            self._snap_event.set()

    def _open_writer(self, path: str) -> WalWriter:
        options = self.options
        writer = WalWriter(path, fsync=options.fsync,
                           group_commit_records=options.group_commit_records,
                           group_commit_bytes=options.group_commit_bytes,
                           opener=self._opener)
        if self.telemetry is not None:
            writer.attach_telemetry(self.telemetry)
        return writer

    def _append_header_locked(self) -> None:
        components = {
            name: {"seq": comp.journal.seq,
                   "generation": self._generation_of(comp)}
            for name, comp in self._components.items()}
        self._writer.append({"c": WAL_HEADER_COMPONENT, "q": 0, "g": 0,
                             "t": "header",
                             "d": {"epoch": self._wal_seq,
                                   "components": components}})
        self._writer.flush(sync=self.options.fsync != "never")

    def _generation_of(self, comp: _Component) -> int:
        if comp.kind in ("database", "store"):
            return comp.obj.generation
        return 0

    def sync(self) -> None:
        """Force buffered records to disk (regardless of fsync policy)."""
        with self._lock:
            if self._writer is not None:
                self._writer.flush(sync=True)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> str:
        """Write a compacted snapshot and rotate to a fresh WAL segment.

        Three phases, never holding both lock classes at once:
        serialize every component under its own read lock (recording
        per-component cuts), write + rename the snapshot file, then
        swap the WAL under the append lock.  Records logged between a
        component's cut and the swap land in the *previous* segment
        with sequence numbers past the cut — replay picks them up,
        which is why retention always keeps one segment more than the
        snapshots it keeps.
        """
        tel = self.telemetry
        started = time.perf_counter() if tel is not None else 0.0
        with self._snapshot_mutex:
            if not self._recovered:
                raise DurabilityError(
                    "recover() must run before snapshot()")
            if self._closed:
                raise DurabilityError("manager is closed")
            epoch = self._max_epoch_seen + 1
            payload = {"format": 1, "epoch": epoch,
                       "components": {
                           name: self._serialize_component(comp)
                           for name, comp in self._components.items()}}
            path = snapshot_io.write_snapshot_file(
                self.directory, self._snap_name(epoch), payload,
                self._opener)
            with self._lock:
                old = self._writer
                if old is not None:
                    old.flush(sync=self.options.fsync != "never")
                    old.close()
                self._epoch = epoch
                self._max_epoch_seen = epoch
                self._wal_seq = epoch
                self._writer = self._open_writer(self._wal_path(epoch))
                self._records_since_snapshot = 0
                self._append_header_locked()
            self._prune(epoch)
            if tel is not None:
                self._tm_snapshot.observe(time.perf_counter() - started)
            return path

    def _prune(self, epoch: int) -> None:
        keep_snapshots = epoch - (self.options.keep_epochs - 1)
        keep_wals = epoch - self.options.keep_epochs
        for num, path in self._list_numbered("snap-", ".snap"):
            if num < keep_snapshots:
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover
                    pass
        for num, path in self._list_numbered("wal-", ".log"):
            if num < keep_wals:
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover
                    pass

    def _snapshot_loop(self) -> None:
        while True:
            self._snap_event.wait()
            if self._closed:
                break
            self._snap_event.clear()
            if (self._records_since_snapshot
                    < self.options.snapshot_every):
                continue
            tel = self.telemetry
            parent, self._snap_parent = self._snap_parent, None
            try:
                if tel is not None:
                    # Explicit parenting: this thread never inherits the
                    # query's contextvars, so the span is attached to
                    # the root captured at trigger time (no-op when the
                    # trigger was an untraced mutation).
                    with tel.tracer.attach(parent, "durability.snapshot"):
                        self.snapshot()
                else:
                    self.snapshot()
            except Exception as exc:  # pragma: no cover - crash paths
                self.snapshot_errors.append(exc)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush and stop; further mutations are no longer journaled."""
        if self._closed:
            return
        self._logging = False
        self._closed = True
        self._snap_event.set()
        if self._snap_thread is not None:
            self._snap_thread.join(timeout=5)
            self._snap_thread = None
        with self._lock:
            writer = self._writer
            self._writer = None
        if writer is not None:
            try:
                writer.flush(sync=self.options.fsync != "never")
            finally:
                writer.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
