"""Errors raised by the durability subsystem."""

from __future__ import annotations


class DurabilityError(Exception):
    """Base class for WAL / snapshot / recovery failures."""


class WalCorruptionError(DurabilityError):
    """A WAL frame failed its length or checksum validation."""


class SnapshotError(DurabilityError):
    """A snapshot file is unreadable, truncated or checksum-invalid."""
