"""repro — reproduction of "Contextually-Enriched Querying of Integrated
Data Sources" (Cavallo et al., ICDE 2018).

The canonical way to query anything in this package is the **unified
session API**::

    import repro

    session = repro.connect(databank, knowledge_base=kb)
    prepared = session.prepare(
        "SELECT elem_name FROM elem_contained WHERE amount > ? "
        "ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)")
    print(prepared.explain([10.0]).format())   # plan, SPARQL, rewritten SQL
    outcome = prepared.execute([10.0])         # parse cached, SPARQL memoized

``connect`` accepts a plain :class:`~repro.relational.Database`, a
:class:`~repro.crosse.CrossePlatform` (``.as_user(name)`` gives each
user her contextualised session over one cached engine), or a
:class:`~repro.federation.Mediator` (global-schema session with view
materialization reuse).  The historical entry points —
``SESQLEngine.execute``, ``CrossePlatform.run_sesql`` and
``Mediator.query`` — remain supported and now delegate to (or share
machinery with) sessions.

Layers:

* :mod:`repro.api` — sessions, prepared queries, plan/extraction
  caches, ``explain()``
* :mod:`repro.relational` — in-memory SQL engine (the databank substrate)
* :mod:`repro.rdf` / :mod:`repro.sparql` — RDF triple store + SPARQL subset
  (the personal knowledge-base substrate)
* :mod:`repro.core` — the SESQL language and its processing pipeline
  (the paper's primary contribution)
* :mod:`repro.crosse` — users, semantic tagging, knowledge sharing,
  context tracking, recommendations and previews
* :mod:`repro.federation` — foreign data wrappers and the GAV mediator
* :mod:`repro.smartground` — the SmartGround use case: schema, synthetic
  data and contextual ontologies
"""

from .api import (PlanCache, PlatformSession, PreparedQuery, QueryOptions,
                  QueryPlan, Session, SessionError, connect)
from .durability import (DurabilityError, DurabilityManager,
                         DurabilityOptions, RecoveryReport)
from .planner import (OperatorNode, PlannedStatement, PlannerOptions,
                      StatisticsCatalog)
from .telemetry import (MetricsRegistry, Span, Telemetry, TelemetryOptions,
                        Tracer)

__all__ = [
    "connect", "Session", "PlatformSession", "PreparedQuery",
    "QueryOptions", "QueryPlan", "PlanCache", "SessionError",
    "PlannerOptions", "PlannedStatement", "OperatorNode",
    "StatisticsCatalog", "DurabilityOptions", "DurabilityManager",
    "DurabilityError", "RecoveryReport",
    "Telemetry", "TelemetryOptions", "MetricsRegistry", "Tracer", "Span",
]

__version__ = "0.5.0"
