"""repro — reproduction of "Contextually-Enriched Querying of Integrated
Data Sources" (Cavallo et al., ICDE 2018).

The package implements the CroSSE platform end to end:

* :mod:`repro.relational` — in-memory SQL engine (the databank substrate)
* :mod:`repro.rdf` / :mod:`repro.sparql` — RDF triple store + SPARQL subset
  (the personal knowledge-base substrate)
* :mod:`repro.core` — the SESQL language and its processing pipeline
  (the paper's primary contribution)
* :mod:`repro.crosse` — users, semantic tagging, knowledge sharing,
  context tracking, recommendations and previews
* :mod:`repro.federation` — foreign data wrappers and the GAV mediator
* :mod:`repro.smartground` — the SmartGround use case: schema, synthetic
  data and contextual ontologies
"""

__version__ = "0.1.0"
