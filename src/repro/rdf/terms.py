"""RDF term model: IRIs, literals and blank nodes.

Terms are immutable and hashable so they can live in the triple store's
set-based indexes.  Literal values are stored as native Python values
(str/int/float/bool) with an optional language tag; the XSD datatype is
derived from the value type unless given explicitly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Union

from .errors import RdfTermError

_XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DOUBLE = _XSD + "double"
XSD_BOOLEAN = _XSD + "boolean"


@dataclass(frozen=True, slots=True, eq=False)
class IRI:
    """An absolute or prefixed-expanded IRI.

    Equality/hash delegate to the value string: CPython caches a str's
    hash on the object, so the term-keyed hot paths (dictionary
    interning, index probes) skip the generated dataclass hash — a
    Python-level call that re-hashes a fresh field tuple every time.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise RdfTermError("IRI must be non-empty")
        if any(char in self.value for char in " <>\"{}|\\^`\n"):
            raise RdfTermError(f"invalid character in IRI {self.value!r}")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def n3(self) -> str:
        return f"<{self.value}>"

    def local_name(self) -> str:
        """The fragment/last path segment (used to map IRIs to SQL values)."""
        for separator in ("#", "/", ":"):
            index = self.value.rfind(separator)
            if index >= 0 and index < len(self.value) - 1:
                return self.value[index + 1:]
        return self.value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True, eq=False)
class Literal:
    """A literal value with optional language tag and datatype.

    Hashing delegates to the (usually str/int) value — colliding
    same-value literals with different datatypes is fine, equal ones
    agree by construction — so set-based indexes hash at C speed.
    """

    value: Any
    lang: str | None = None
    datatype: str | None = field(default=None)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Literal)
                and self.value == other.value
                and self.lang == other.lang
                and self.datatype == other.datatype)

    def __hash__(self) -> int:
        return hash(self.value)

    def __post_init__(self) -> None:
        if isinstance(self.value, bool):
            inferred = XSD_BOOLEAN
        elif isinstance(self.value, int):
            inferred = XSD_INTEGER
        elif isinstance(self.value, float):
            inferred = XSD_DOUBLE
        elif isinstance(self.value, str):
            inferred = XSD_STRING
        else:
            raise RdfTermError(
                f"unsupported literal value {self.value!r}")
        if self.lang is not None and not isinstance(self.value, str):
            raise RdfTermError("language tags require string literals")
        if self.datatype is None:
            object.__setattr__(self, "datatype", inferred)

    @property
    def lexical(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)

    def n3(self) -> str:
        if isinstance(self.value, bool):
            return self.lexical
        if isinstance(self.value, (int, float)) \
                and self.datatype in (XSD_INTEGER, XSD_DOUBLE):
            return repr(self.value)
        escaped = (self.lexical.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\r", "\\r")
                   .replace("\t", "\\t"))
        text = f'"{escaped}"'
        if self.lang:
            return f"{text}@{self.lang}"
        if self.datatype and self.datatype != XSD_STRING:
            return f"{text}^^<{self.datatype}>"
        return text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.lexical


_bnode_counter = itertools.count()


@dataclass(frozen=True, slots=True, eq=False)
class BNode:
    """A blank node with a stable local identifier."""

    id: str = field(default_factory=lambda: f"b{next(_bnode_counter)}")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BNode) and self.id == other.id

    def __hash__(self) -> int:
        return hash(self.id)

    def n3(self) -> str:
        return f"_:{self.id}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.n3()


Term = Union[IRI, Literal, BNode]


def is_term(value: Any) -> bool:
    return isinstance(value, (IRI, Literal, BNode))


def term_from_python(value: Any) -> Term:
    """Coerce a Python value to an RDF term (strings become literals)."""
    if is_term(value):
        return value
    if isinstance(value, (str, int, float, bool)):
        return Literal(value)
    raise RdfTermError(f"cannot convert {value!r} to an RDF term")


def term_sort_key(term: Term | None) -> tuple:
    """SPARQL-ish ordering: unbound < blank < IRI < literal."""
    if term is None:
        return (0, "")
    if isinstance(term, BNode):
        return (1, term.id)
    if isinstance(term, IRI):
        return (2, term.value)
    if isinstance(term, Literal):
        if isinstance(term.value, bool):
            return (3, 0, int(term.value))
        if isinstance(term.value, (int, float)):
            return (3, 1, float(term.value))
        return (3, 2, term.lexical)
    raise RdfTermError(f"not a term: {term!r}")
