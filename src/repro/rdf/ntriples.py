"""N-Triples parser and serializer (line-oriented exchange format)."""

from __future__ import annotations

import re
from typing import Iterator

from .errors import RdfParseError
from .store import Triple, TripleStore
from .terms import BNode, IRI, Literal
from .turtle import _typed_literal

_IRI_RE = r"<([^<>\"\s]*)>"
_BNODE_RE = r"_:([A-Za-z0-9]+)"
_LITERAL_RE = (r'"((?:[^"\\]|\\.)*)"'
               r"(?:@([A-Za-z][A-Za-z0-9-]*)|\^\^<([^<>\s]*)>)?")

_LINE_RE = re.compile(
    rf"^\s*(?:{_IRI_RE}|{_BNODE_RE})"
    rf"\s+{_IRI_RE}"
    rf"\s+(?:{_IRI_RE}|{_BNODE_RE}|{_LITERAL_RE})"
    rf"\s*\.\s*$")

_UNESCAPE = {
    "n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\",
}

_ESCAPE_RE = re.compile(r"\\(.)")


def _unescape(text: str) -> str:
    # Single-pass: sequential str.replace would corrupt inputs like
    # '\\\\r' (an escaped backslash followed by a literal 'r').
    return _ESCAPE_RE.sub(
        lambda match: _UNESCAPE.get(match.group(1), match.group(0)), text)


def parse_ntriples_lines(text: str) -> Iterator[Triple]:
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _LINE_RE.match(stripped)
        if match is None:
            raise RdfParseError(f"malformed N-Triples line: {stripped!r}",
                                number)
        (s_iri, s_bnode, predicate, o_iri, o_bnode,
         o_literal, o_lang, o_dtype) = match.groups()
        subject = IRI(s_iri) if s_iri is not None else BNode(s_bnode)
        if o_iri is not None:
            obj = IRI(o_iri)
        elif o_bnode is not None:
            obj = BNode(o_bnode)
        else:
            lexical = _unescape(o_literal)
            if o_lang:
                obj = Literal(lexical, lang=o_lang)
            elif o_dtype:
                obj = _typed_literal(lexical, o_dtype)
            else:
                obj = Literal(lexical)
        yield Triple(subject, IRI(predicate), obj)


def parse_ntriples(text: str) -> TripleStore:
    store = TripleStore()
    store.add_all(parse_ntriples_lines(text))
    return store


def _canonical(term) -> str:
    """Full N-Triples rendering (no Turtle numeric/boolean shorthand)."""
    if isinstance(term, Literal):
        escaped = (term.lexical.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\r", "\\r")
                   .replace("\t", "\\t"))
        text = f'"{escaped}"'
        if term.lang:
            return f"{text}@{term.lang}"
        from .terms import XSD_STRING
        if term.datatype and term.datatype != XSD_STRING:
            return f"{text}^^<{term.datatype}>"
        return text
    return term.n3()


def serialize_ntriples(store: TripleStore) -> str:
    lines = sorted(
        f"{_canonical(t.subject)} {_canonical(t.predicate)} "
        f"{_canonical(t.object)} ."
        for t in store.triples())
    return "\n".join(lines) + ("\n" if lines else "")
