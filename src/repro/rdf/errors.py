"""Exception hierarchy for the RDF substrate."""

from __future__ import annotations


class RdfError(Exception):
    """Base class for all RDF-layer errors."""


class RdfTermError(RdfError):
    """Malformed IRIs, literals or blank nodes."""


class RdfParseError(RdfError):
    """Raised by the Turtle / N-Triples parsers."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        location = f" at line {line}" if line is not None else ""
        super().__init__(f"{message}{location}")


class NamespaceError(RdfError):
    """Unknown prefix or invalid namespace binding."""
