"""The triple store: SPO/POS/OSP-indexed in-memory RDF graph.

This is the Jena stand-in of the reproduction.  Pattern matching picks
the most selective index for the bound positions; the POS and OSP
indexes can be disabled (``TripleStore(indexing="spo")``) which the E4
benchmark uses as an ablation.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, NamedTuple

from ..rwlock import RWLock
from .errors import RdfError
from .terms import IRI, Term, is_term, term_from_python

#: Global mutation clock shared by every store: each store state gets a
#: stamp no other (store, state) pair can ever carry, so ``generation``
#: alone is a safe cache key for KB-derived artefacts (SQM extractions).
_GENERATIONS = itertools.count(1)


class Triple(NamedTuple):
    """An RDF statement."""

    subject: Term
    predicate: IRI
    object: Term

    def n3(self) -> str:
        return (f"{self.subject.n3()} {self.predicate.n3()} "
                f"{self.object.n3()} .")


TriplePatternArg = Term | None

_INDEXING_MODES = ("full", "spo")


def _as_triple(subject: Any, predicate: Any, obj: Any) -> Triple:
    subject_term = term_from_python(subject)
    predicate_term = predicate if isinstance(predicate, IRI) else None
    if predicate_term is None:
        raise RdfError(
            f"triple predicate must be an IRI, got {predicate!r}")
    object_term = term_from_python(obj)
    return Triple(subject_term, predicate_term, object_term)


class TripleStore:
    """A set of triples with hash indexes on each access pattern.

    Thread safety: a reader-writer lock lets any number of threads
    match patterns concurrently while mutators (``add`` / ``remove`` /
    ``clear`` — the annotation-accept path of the platform) get
    exclusive access and bump the generation stamp.  A ``triples()``
    generator holds the read side until exhausted or dropped.
    """

    def __init__(self, indexing: str = "full") -> None:
        if indexing not in _INDEXING_MODES:
            raise RdfError(f"unknown indexing mode {indexing!r}")
        self.indexing = indexing
        self.generation = next(_GENERATIONS)
        self.rwlock = RWLock()
        self._spo: dict[Term, dict[IRI, set[Term]]] = {}
        self._pos: dict[IRI, dict[Term, set[Term]]] = {}
        self._osp: dict[Term, dict[Term, set[IRI]]] = {}
        self._size = 0

    # -- mutation -----------------------------------------------------------

    def add(self, subject: Any, predicate: Any = None,
            obj: Any = None) -> bool:
        """Add a triple; returns False when it was already present.

        Accepts either ``add(Triple(...))`` or ``add(s, p, o)``.
        """
        if isinstance(subject, Triple) and predicate is None:
            triple = subject
        else:
            triple = _as_triple(subject, predicate, obj)
        s, p, o = triple
        with self.rwlock.write_locked():
            objects = self._spo.setdefault(s, {}).setdefault(p, set())
            if o in objects:
                return False
            objects.add(o)
            if self.indexing == "full":
                self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
                self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
            self._size += 1
            self.generation = next(_GENERATIONS)
            return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        with self.rwlock.write_locked():
            count = 0
            for triple in triples:
                if self.add(triple):
                    count += 1
            return count

    def remove(self, subject: Any, predicate: Any = None,
               obj: Any = None) -> bool:
        """Remove a triple; returns False when it was absent."""
        if isinstance(subject, Triple) and predicate is None:
            triple = subject
        else:
            triple = _as_triple(subject, predicate, obj)
        s, p, o = triple
        with self.rwlock.write_locked():
            return self._remove_locked(s, p, o)

    def _remove_locked(self, s: Term, p: IRI, o: Term) -> bool:
        try:
            objects = self._spo[s][p]
            objects.remove(o)
        except KeyError:
            return False
        if not objects:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        if self.indexing == "full":
            subjects = self._pos[p][o]
            subjects.discard(s)
            if not subjects:
                del self._pos[p][o]
                if not self._pos[p]:
                    del self._pos[p]
            predicates = self._osp[o][s]
            predicates.discard(p)
            if not predicates:
                del self._osp[o][s]
                if not self._osp[o]:
                    del self._osp[o]
        self._size -= 1
        self.generation = next(_GENERATIONS)
        return True

    def remove_pattern(self, subject: TriplePatternArg = None,
                       predicate: TriplePatternArg = None,
                       obj: TriplePatternArg = None) -> int:
        """Remove every triple matching a pattern; returns the count."""
        with self.rwlock.write_locked():
            doomed = list(self.triples(subject, predicate, obj))
            for triple in doomed:
                self.remove(triple)
            return len(doomed)

    def clear(self) -> None:
        with self.rwlock.write_locked():
            self._spo.clear()
            self._pos.clear()
            self._osp.clear()
            self._size = 0
            self.generation = next(_GENERATIONS)

    # -- lookup ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples(self, subject: TriplePatternArg = None,
                predicate: TriplePatternArg = None,
                obj: TriplePatternArg = None) -> Iterator[Triple]:
        """All triples matching the pattern (None = wildcard).

        The returned generator holds the store's read lock while
        active, so writers wait until it is exhausted or dropped.
        """
        with self.rwlock.read_locked():
            yield from self._match(subject, predicate, obj)

    def _match(self, subject: TriplePatternArg,
               predicate: TriplePatternArg,
               obj: TriplePatternArg) -> Iterator[Triple]:
        s_bound = subject is not None
        p_bound = predicate is not None
        o_bound = obj is not None
        if s_bound and not is_term(subject):
            subject = term_from_python(subject)
        if o_bound and not is_term(obj):
            obj = term_from_python(obj)

        if s_bound:
            by_predicate = self._spo.get(subject)
            if by_predicate is None:
                return
            if p_bound:
                objects = by_predicate.get(predicate)
                if objects is None:
                    return
                if o_bound:
                    if obj in objects:
                        yield Triple(subject, predicate, obj)
                    return
                for o in objects:
                    yield Triple(subject, predicate, o)
                return
            for p, objects in by_predicate.items():
                if o_bound:
                    if obj in objects:
                        yield Triple(subject, p, obj)
                else:
                    for o in objects:
                        yield Triple(subject, p, o)
            return

        if self.indexing == "full" and o_bound:
            by_subject = self._osp.get(obj)
            if by_subject is None:
                return
            for s, predicates in by_subject.items():
                if p_bound:
                    if predicate in predicates:
                        yield Triple(s, predicate, obj)
                else:
                    for p in predicates:
                        yield Triple(s, p, obj)
            return

        if self.indexing == "full" and p_bound:
            by_object = self._pos.get(predicate)
            if by_object is None:
                return
            for o, subjects in by_object.items():
                if o_bound and o != obj:
                    continue
                for s in subjects:
                    yield Triple(s, predicate, o)
            return

        # Fallback: full scan (also the "spo"-only ablation path).
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                if p_bound and p != predicate:
                    continue
                for o in objects:
                    if o_bound and o != obj:
                        continue
                    yield Triple(s, p, o)

    # -- convenience views --------------------------------------------------------

    def subjects(self, predicate: TriplePatternArg = None,
                 obj: TriplePatternArg = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for triple in self.triples(None, predicate, obj):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def objects(self, subject: TriplePatternArg = None,
                predicate: TriplePatternArg = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def predicates(self, subject: TriplePatternArg = None,
                   obj: TriplePatternArg = None) -> Iterator[IRI]:
        seen: set[IRI] = set()
        for triple in self.triples(subject, None, obj):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def value(self, subject: TriplePatternArg = None,
              predicate: TriplePatternArg = None) -> Term | None:
        """The single object of (subject, predicate), or None."""
        for triple in self.triples(subject, predicate, None):
            return triple.object
        return None

    def count(self, subject: TriplePatternArg = None,
              predicate: TriplePatternArg = None,
              obj: TriplePatternArg = None) -> int:
        return sum(1 for _ in self.triples(subject, predicate, obj))

    # -- set-style composition -------------------------------------------------------

    def copy(self) -> "TripleStore":
        clone = TripleStore(self.indexing)
        clone.add_all(self.triples())
        return clone

    def union(self, other: "TripleStore") -> "TripleStore":
        """A new store holding both graphs (used for effective user KBs)."""
        merged = self.copy()
        merged.add_all(other.triples())
        return merged

    def update(self, other: "TripleStore") -> int:
        return self.add_all(other.triples())
