"""The triple store: dictionary-encoded, SPO/POS/OSP-indexed RDF graph.

This is the Jena stand-in of the reproduction, organised the way
production RDF engines are: every term is *interned* once through a
:class:`TermDictionary` (term ↔ small integer id) and the three access
indexes hold nested dicts of **ids**, so pattern matching, join keys and
set membership all run on integer hashing instead of re-hashing full
``Term`` dataclasses.  The paper's personal-KB evaluation model runs
every SE-SQL enrichment against one of these stores, so this layer
bounds end-to-end enrichment latency.

Pattern matching picks the most selective index for the bound
positions; the POS and OSP indexes can be disabled
(``TripleStore(indexing="spo")``) which the E4 benchmark uses as an
ablation.  :class:`StoreStatistics` exposes O(1) per-pattern
cardinalities (maintained alongside the indexes) that the SPARQL BGP
planner (:mod:`repro.sparql.planner`) uses for join ordering.

Several stores may share one dictionary (``TripleStore(dictionary=d)``)
— the CroSSE platform builds every per-user *effective* KB through the
platform-wide dictionary so accepted statements are never re-interned.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Iterable, Iterator, NamedTuple

from ..rwlock import RWLock
from .errors import RdfError
from .terms import IRI, Term, is_term, term_from_python

#: Process-local store identities.  Generations are **per store** (a
#: plain counter bumped under the write lock), so a recovered store can
#: restore its counter monotonically from a WAL header without racing
#: every other store in the process — the durability layer's
#: requirement.  Cache keys that used to rely on globally-unique
#: generations (SQM extractions) now pair the generation with this
#: ``store_id``, which no two live stores ever share.
_STORE_IDS = itertools.count(1)


class Triple(NamedTuple):
    """An RDF statement."""

    subject: Term
    predicate: IRI
    object: Term

    def n3(self) -> str:
        return (f"{self.subject.n3()} {self.predicate.n3()} "
                f"{self.object.n3()} .")


TriplePatternArg = Term | None

_INDEXING_MODES = ("full", "spo")


def _as_triple(subject: Any, predicate: Any, obj: Any) -> Triple:
    subject_term = term_from_python(subject)
    predicate_term = predicate if isinstance(predicate, IRI) else None
    if predicate_term is None:
        raise RdfError(
            f"triple predicate must be an IRI, got {predicate!r}")
    object_term = term_from_python(obj)
    return Triple(subject_term, predicate_term, object_term)


class TermDictionary:
    """A bidirectional term ↔ int-id intern table.

    Ids are dense (0..n-1) and never recycled; ``term(id)`` is a list
    index.  Lookups are lock-free (CPython dict reads are atomic);
    inserts take a short mutex.  One dictionary may back any number of
    stores — ids are comparable *across* stores sharing it, which is
    what lets the SPARQL evaluator hash-join id-encoded solutions.
    """

    __slots__ = ("_lock", "_ids", "_terms")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids: dict[Term, int] = {}
        self._terms: list[Term] = []

    def __len__(self) -> int:
        return len(self._terms)

    def intern(self, term: Term) -> int:
        """The id of *term*, inserting it if unseen."""
        found = self._ids.get(term)
        if found is not None:
            return found
        with self._lock:
            found = self._ids.get(term)
            if found is None:
                found = len(self._terms)
                self._terms.append(term)
                self._ids[term] = found
            return found

    def lookup(self, term: Term) -> int | None:
        """The id of *term*, or None when it was never interned."""
        return self._ids.get(term)

    def term(self, term_id: int) -> Term:
        """The term behind an id (O(1) list index)."""
        return self._terms[term_id]

    @property
    def terms(self) -> list[Term]:
        """The id → term table itself (read-only by convention); the
        evaluator grabs it once per query for bulk late materialization."""
        return self._terms


class StoreStatistics:
    """O(1) per-pattern cardinalities read off a store's index sizes.

    The SPARQL BGP planner orders joins by these counts the same way
    :mod:`repro.planner` orders relational joins by table statistics —
    except triple-store "statistics" need no ANALYZE: the exact count of
    every single-constant pattern is the size of an index level, and
    per-position counters (``triples per subject/predicate/object id``)
    are maintained on every add/remove.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "TripleStore") -> None:
        self._store = store

    # -- id-level (the planner's working currency) ---------------------------

    def triple_count(self) -> int:
        return self._store._size

    def distinct_subjects(self) -> int:
        return len(self._store._s_counts)

    def distinct_predicates(self) -> int:
        return len(self._store._p_counts)

    def distinct_objects(self) -> int:
        return len(self._store._o_counts)

    def subject_count(self, s_id: int) -> int:
        """Triples with this subject id."""
        return self._store._s_counts.get(s_id, 0)

    def predicate_count(self, p_id: int) -> int:
        """Triples with this predicate id."""
        return self._store._p_counts.get(p_id, 0)

    def object_count(self, o_id: int) -> int:
        """Triples with this object id."""
        return self._store._o_counts.get(o_id, 0)

    def count_ids(self, s: int | None = None, p: int | None = None,
                  o: int | None = None) -> int:
        """Exact matches of an id pattern, from index sizes alone.

        O(1) for every pattern shape on a fully indexed store; the
        "spo" ablation falls back to scanning for the shapes its
        missing indexes would have answered.
        """
        store = self._store
        if s is not None:
            by_predicate = store._spo.get(s)
            if by_predicate is None:
                return 0
            if p is not None:
                objects = by_predicate.get(p)
                if objects is None:
                    return 0
                if o is not None:
                    return 1 if o in objects else 0
                return len(objects)
            if o is None:
                return store._s_counts.get(s, 0)
            # (s, -, o): one OSP level when available, else scan s's slice.
            if store.indexing == "full":
                return len(store._osp.get(o, {}).get(s, ()))
            return sum(1 for objects in by_predicate.values()
                       if o in objects)
        if p is not None:
            if o is None:
                return store._p_counts.get(p, 0)
            if store.indexing == "full":
                return len(store._pos.get(p, {}).get(o, ()))
            return sum(1 for _ in store._match_ids(None, p, o))
        if o is not None:
            return store._o_counts.get(o, 0)
        return store._size

    # -- term-level convenience ----------------------------------------------

    def count(self, subject: TriplePatternArg = None,
              predicate: TriplePatternArg = None,
              obj: TriplePatternArg = None) -> int:
        """Exact matches of a term pattern (None = wildcard)."""
        ids = self._store._encode_pattern(subject, predicate, obj)
        if ids is None:
            return 0
        return self.count_ids(*ids)


class TripleStore:
    """A set of triples with id-keyed hash indexes on each access pattern.

    Thread safety: a reader-writer lock lets any number of threads
    match patterns concurrently while mutators (``add`` / ``remove`` /
    ``clear`` — the annotation-accept path of the platform) get
    exclusive access and bump the generation stamp.  Batch mutators
    (``add_all`` / ``update`` / ``remove_pattern``) take the write lock
    **once** and bump the generation **once** per logical batch, so
    generation-keyed caches stay stable across a bulk load.  A
    ``triples()`` generator holds the read side until exhausted or
    dropped.
    """

    def __init__(self, indexing: str = "full",
                 dictionary: TermDictionary | None = None) -> None:
        if indexing not in _INDEXING_MODES:
            raise RdfError(f"unknown indexing mode {indexing!r}")
        self.indexing = indexing
        self.dictionary = dictionary if dictionary is not None \
            else TermDictionary()
        #: Process-unique identity; pairs with :attr:`generation` in
        #: generation-keyed caches (two stores may both be at, say,
        #: generation 3).
        self.store_id = next(_STORE_IDS)
        #: Per-store mutation stamp: starts at 0, bumped once per
        #: logical mutation batch under the write lock.
        self.generation = 0
        #: Durability hook (duck-typed): when a
        #: :class:`repro.durability.DurabilityManager` attaches this
        #: store, every committed mutation is logged here.
        self.durability_journal = None
        self.rwlock = RWLock()
        self._spo: dict[int, dict[int, set[int]]] = {}
        self._pos: dict[int, dict[int, set[int]]] = {}
        self._osp: dict[int, dict[int, set[int]]] = {}
        #: Per-position triple counters backing the O(1) statistics.
        self._s_counts: dict[int, int] = {}
        self._p_counts: dict[int, int] = {}
        self._o_counts: dict[int, int] = {}
        self._size = 0
        self.stats = StoreStatistics(self)

    # -- encoding helpers ----------------------------------------------------

    def _encode_pattern(self, subject: TriplePatternArg,
                        predicate: TriplePatternArg,
                        obj: TriplePatternArg
                        ) -> tuple[int | None, int | None, int | None] | None:
        """Encode a term pattern to ids; None when a bound term is
        absent from the dictionary (no triple can match)."""
        lookup = self.dictionary.lookup
        s = p = o = None
        if subject is not None:
            if not is_term(subject):
                subject = term_from_python(subject)
            s = lookup(subject)
            if s is None:
                return None
        if predicate is not None:
            p = lookup(predicate)
            if p is None:
                return None
        if obj is not None:
            if not is_term(obj):
                obj = term_from_python(obj)
            o = lookup(obj)
            if o is None:
                return None
        return (s, p, o)

    # -- mutation -----------------------------------------------------------

    def _add_ids_locked(self, s: int, p: int, o: int) -> bool:
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        if self.indexing == "full":
            self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
            self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        counts = self._s_counts
        counts[s] = counts.get(s, 0) + 1
        counts = self._p_counts
        counts[p] = counts.get(p, 0) + 1
        counts = self._o_counts
        counts[o] = counts.get(o, 0) + 1
        self._size += 1
        return True

    def add(self, subject: Any, predicate: Any = None,
            obj: Any = None) -> bool:
        """Add a triple; returns False when it was already present.

        Accepts either ``add(Triple(...))`` or ``add(s, p, o)``.
        """
        if isinstance(subject, Triple) and predicate is None:
            triple = subject
        else:
            triple = _as_triple(subject, predicate, obj)
        intern = self.dictionary.intern
        s, p, o = (intern(triple.subject), intern(triple.predicate),
                   intern(triple.object))
        with self.rwlock.write_locked():
            if not self._add_ids_locked(s, p, o):
                return False
            self.generation += 1
            if self.durability_journal is not None:
                self.durability_journal.log(
                    "add", {"triple": list(triple)},
                    generation=self.generation)
            return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Bulk insert: one write-lock acquisition, one generation bump.

        The loop is deliberately inlined — interning and the three
        index inserts run on local aliases with the dictionary's intern
        mutex held once for the whole batch, so a bulk load costs a
        fraction of N ``add()`` calls (the E12 benchmark gates this).
        Returns the number of triples actually added (duplicates both
        within the batch and against the store are skipped).
        """
        dictionary = self.dictionary
        ids = dictionary._ids
        terms = dictionary._terms
        ids_get = ids.get
        terms_append = terms.append
        spo, pos, osp = self._spo, self._pos, self._osp
        spo_get, pos_get, osp_get = spo.get, pos.get, osp.get
        s_counts, p_counts, o_counts = (self._s_counts, self._p_counts,
                                        self._o_counts)
        s_get, p_get, o_get = s_counts.get, p_counts.get, o_counts.get
        full = self.indexing == "full"
        # On a load into an empty store the per-position counters are
        # rebuilt from the finished indexes in one C-level post-pass
        # instead of three dict updates per triple.
        defer_counts = self._size == 0
        count = 0
        journal = self.durability_journal
        #: Journaled batches record exactly the triples that made it
        #: into the indexes (not the raw input): an iterable that raises
        #: mid-batch must replay only its applied prefix.
        added: list | None = [] if journal is not None else None

        def commit() -> None:
            # Runs in the finally below so size, the counters and the
            # generation always cover exactly the triples that made it
            # into the indexes — even when the iterable raises
            # mid-batch (e.g. an invalid predicate).  Per-triple
            # mutation itself is atomic: every raising operation in
            # the loop precedes that triple's first index insert.
            if not count:
                return
            if defer_counts:
                for s, by_predicate in spo.items():
                    s_counts[s] = sum(map(len, by_predicate.values()))
                if full:
                    for p, by_object in pos.items():
                        p_counts[p] = sum(map(len, by_object.values()))
                    for o, by_subject in osp.items():
                        o_counts[o] = sum(map(len, by_subject.values()))
                else:
                    for by_predicate in spo.values():
                        for p, objects in by_predicate.items():
                            p_counts[p] = p_get(p, 0) + len(objects)
                            for o in objects:
                                o_counts[o] = o_get(o, 0) + 1
            self._size += count
            self.generation += 1
            if added:
                journal.log("add_all", {"triples": added},
                            generation=self.generation)

        with self.rwlock.write_locked(), dictionary._lock:
            try:
                # Terms are validated/coerced only on their *first*
                # intern (an already-interned term was checked then),
                # so the loop carries no per-triple isinstance dispatch.
                for s_term, p_term, o_term in triples:
                    s = ids_get(s_term)
                    if s is None:
                        if not is_term(s_term):
                            s_term = term_from_python(s_term)
                            s = ids_get(s_term)
                        if s is None:
                            # Publish order matters for lock-free
                            # readers: the term goes in the table
                            # before its id does.
                            s = len(terms)
                            terms_append(s_term)
                            ids[s_term] = s
                    p = ids_get(p_term)
                    if p is None:
                        if not isinstance(p_term, IRI):
                            raise RdfError(
                                "triple predicate must be an IRI, "
                                f"got {p_term!r}")
                        p = len(terms)
                        terms_append(p_term)
                        ids[p_term] = p
                    o = ids_get(o_term)
                    if o is None:
                        if not is_term(o_term):
                            o_term = term_from_python(o_term)
                            o = ids_get(o_term)
                        if o is None:
                            o = len(terms)
                            terms_append(o_term)
                            ids[o_term] = o
                    by_predicate = spo_get(s)
                    if by_predicate is None:
                        by_predicate = spo[s] = {}
                    objects = by_predicate.get(p)
                    if objects is None:
                        by_predicate[p] = {o}
                    elif o in objects:
                        continue
                    else:
                        objects.add(o)
                    if full:
                        by_object = pos_get(p)
                        if by_object is None:
                            by_object = pos[p] = {}
                        subjects = by_object.get(o)
                        if subjects is None:
                            by_object[o] = {s}
                        else:
                            subjects.add(s)
                        by_subject = osp_get(o)
                        if by_subject is None:
                            by_subject = osp[o] = {}
                        predicates = by_subject.get(s)
                        if predicates is None:
                            by_subject[s] = {p}
                        else:
                            predicates.add(p)
                    if not defer_counts:
                        s_counts[s] = s_get(s, 0) + 1
                        p_counts[p] = p_get(p, 0) + 1
                        o_counts[o] = o_get(o, 0) + 1
                    count += 1
                    if added is not None:
                        added.append((s_term, p_term, o_term))
            finally:
                commit()
        return count

    def remove(self, subject: Any, predicate: Any = None,
               obj: Any = None) -> bool:
        """Remove a triple; returns False when it was absent."""
        if isinstance(subject, Triple) and predicate is None:
            triple = subject
        else:
            triple = _as_triple(subject, predicate, obj)
        ids = self._encode_pattern(*triple)
        if ids is None:
            return False
        s, p, o = ids
        with self.rwlock.write_locked():
            if not self._remove_ids_locked(s, p, o):
                return False
            self.generation += 1
            if self.durability_journal is not None:
                self.durability_journal.log(
                    "remove", {"triple": list(triple)},
                    generation=self.generation)
            return True

    def _remove_ids_locked(self, s: int, p: int, o: int) -> bool:
        try:
            objects = self._spo[s][p]
            objects.remove(o)
        except KeyError:
            return False
        if not objects:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        if self.indexing == "full":
            subjects = self._pos[p][o]
            subjects.discard(s)
            if not subjects:
                del self._pos[p][o]
                if not self._pos[p]:
                    del self._pos[p]
            predicates = self._osp[o][s]
            predicates.discard(p)
            if not predicates:
                del self._osp[o][s]
                if not self._osp[o]:
                    del self._osp[o]
        for counts, key in ((self._s_counts, s), (self._p_counts, p),
                            (self._o_counts, o)):
            remaining = counts[key] - 1
            if remaining:
                counts[key] = remaining
            else:
                del counts[key]
        self._size -= 1
        return True

    def remove_pattern(self, subject: TriplePatternArg = None,
                       predicate: TriplePatternArg = None,
                       obj: TriplePatternArg = None) -> int:
        """Remove every triple matching a pattern; returns the count.

        One write-lock acquisition and one generation bump for the
        whole batch.
        """
        ids = self._encode_pattern(subject, predicate, obj)
        if ids is None:
            return 0
        with self.rwlock.write_locked():
            doomed = list(self._match_ids(*ids))
            for s, p, o in doomed:
                self._remove_ids_locked(s, p, o)
            if doomed:
                self.generation += 1
                if self.durability_journal is not None:
                    # Record the concrete triples, not the pattern: an
                    # exact replay must not depend on re-evaluating the
                    # match against a possibly different dictionary.
                    terms = self.dictionary.terms
                    self.durability_journal.log(
                        "remove_all",
                        {"triples": [(terms[s], terms[p], terms[o])
                                     for s, p, o in doomed]},
                        generation=self.generation)
            return len(doomed)

    def remove_all(self, triples: Iterable[Triple]) -> int:
        """Remove a batch of concrete triples; returns the count removed.

        One write-lock acquisition and one generation bump — the batch
        analogue of :meth:`remove`, and the replay target for the
        durability layer's ``remove_all`` records (which hold the
        concrete triples a :meth:`remove_pattern` actually deleted).
        """
        encoded = []
        for triple in triples:
            if not isinstance(triple, Triple):
                triple = _as_triple(*triple)
            ids = self._encode_pattern(*triple)
            if ids is not None:
                encoded.append(ids)
        if not encoded:
            return 0
        removed = 0
        with self.rwlock.write_locked():
            journal = self.durability_journal
            logged: list | None = [] if journal is not None else None
            for s, p, o in encoded:
                if self._remove_ids_locked(s, p, o):
                    removed += 1
                    if logged is not None:
                        logged.append((s, p, o))
            if removed:
                self.generation += 1
                if logged:
                    terms = self.dictionary.terms
                    journal.log(
                        "remove_all",
                        {"triples": [(terms[s], terms[p], terms[o])
                                     for s, p, o in logged]},
                        generation=self.generation)
        return removed

    def clear(self) -> None:
        with self.rwlock.write_locked():
            self._spo.clear()
            self._pos.clear()
            self._osp.clear()
            self._s_counts.clear()
            self._p_counts.clear()
            self._o_counts.clear()
            self._size = 0
            self.generation += 1
            if self.durability_journal is not None:
                self.durability_journal.log(
                    "clear", {}, generation=self.generation)

    def restore_generation(self, generation: int) -> None:
        """Advance the mutation stamp to at least *generation*.

        Recovery calls this after replaying the WAL so the restored
        store's counter is monotonic with the pre-crash process —
        generation-keyed caches can never observe a (store, generation)
        pair that describes older data than a pair they already served.
        """
        with self.rwlock.write_locked():
            self.generation = max(self.generation, generation)

    def pin_generation(self, generation: int) -> None:
        """Set the mutation stamp to exactly *generation*.

        Counterpart of :meth:`restore_generation` for replay paths that
        must end byte-identical to the primary (recovery's exact
        restore, read replicas tailing the WAL): replayed batches bump
        the counter through the normal mutation paths, and the pin
        collapses any overshoot back to the recorded value.
        """
        with self.rwlock.write_locked():
            self.generation = generation

    # -- lookup ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        ids = self._encode_pattern(*triple)
        if ids is None:
            return False
        s, p, o = ids
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def triples(self, subject: TriplePatternArg = None,
                predicate: TriplePatternArg = None,
                obj: TriplePatternArg = None) -> Iterator[Triple]:
        """All triples matching the pattern (None = wildcard).

        The returned generator holds the store's read lock while
        active, so writers wait until it is exhausted or dropped.
        Terms are materialized from the dictionary on the way out.
        """
        ids = self._encode_pattern(subject, predicate, obj)
        if ids is None:
            return
        terms = self.dictionary.terms
        with self.rwlock.read_locked():
            for s, p, o in self._match_ids(*ids):
                yield Triple(terms[s], terms[p], terms[o])

    def id_triples(self, s: int | None = None, p: int | None = None,
                   o: int | None = None) -> Iterator[tuple[int, int, int]]:
        """Id-level pattern matching (the SPARQL evaluator's hot path).

        Yields ``(s, p, o)`` id tuples; the caller decodes through
        :attr:`dictionary` only at result-materialization time.  Holds
        the read lock while active, like :meth:`triples`.
        """
        with self.rwlock.read_locked():
            yield from self._match_ids(s, p, o)

    def _match_ids(self, s: int | None, p: int | None,
                   o: int | None) -> Iterator[tuple[int, int, int]]:
        if s is not None:
            by_predicate = self._spo.get(s)
            if by_predicate is None:
                return
            if p is not None:
                objects = by_predicate.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj_id in objects:
                    yield (s, p, obj_id)
                return
            for p_id, objects in by_predicate.items():
                if o is not None:
                    if o in objects:
                        yield (s, p_id, o)
                else:
                    for obj_id in objects:
                        yield (s, p_id, obj_id)
            return

        if self.indexing == "full" and o is not None:
            by_subject = self._osp.get(o)
            if by_subject is None:
                return
            for s_id, predicates in by_subject.items():
                if p is not None:
                    if p in predicates:
                        yield (s_id, p, o)
                else:
                    for p_id in predicates:
                        yield (s_id, p_id, o)
            return

        if self.indexing == "full" and p is not None:
            by_object = self._pos.get(p)
            if by_object is None:
                return
            for o_id, subjects in by_object.items():
                if o is not None and o_id != o:
                    continue
                for s_id in subjects:
                    yield (s_id, p, o_id)
            return

        # Fallback: full scan (also the "spo"-only ablation path).
        for s_id, by_predicate in self._spo.items():
            for p_id, objects in by_predicate.items():
                if p is not None and p_id != p:
                    continue
                for o_id in objects:
                    if o is not None and o_id != o:
                        continue
                    yield (s_id, p_id, o_id)

    # -- convenience views --------------------------------------------------------

    def subjects(self, predicate: TriplePatternArg = None,
                 obj: TriplePatternArg = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for triple in self.triples(None, predicate, obj):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def objects(self, subject: TriplePatternArg = None,
                predicate: TriplePatternArg = None) -> Iterator[Term]:
        seen: set[Term] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def predicates(self, subject: TriplePatternArg = None,
                   obj: TriplePatternArg = None) -> Iterator[IRI]:
        seen: set[IRI] = set()
        for triple in self.triples(subject, None, obj):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def value(self, subject: TriplePatternArg = None,
              predicate: TriplePatternArg = None) -> Term | None:
        """The single object of (subject, predicate), or None."""
        for triple in self.triples(subject, predicate, None):
            return triple.object
        return None

    def count(self, subject: TriplePatternArg = None,
              predicate: TriplePatternArg = None,
              obj: TriplePatternArg = None) -> int:
        """Exact pattern cardinality — O(1) via :attr:`stats` wherever
        the indexes cover the pattern shape."""
        with self.rwlock.read_locked():
            return self.stats.count(subject, predicate, obj)

    # -- set-style composition -------------------------------------------------------

    def _adopt_locked(self, other: "TripleStore") -> None:
        """Deep-copy *other*'s id-keyed structures into this (empty)
        store; the caller holds other's read side.  Nested dict/set
        copies run at C speed — no triple is re-interned or re-hashed."""
        self._spo = {s: {p: set(objects)
                         for p, objects in by_predicate.items()}
                     for s, by_predicate in other._spo.items()}
        if self.indexing == "full":
            self._pos = {p: {o: set(subjects)
                             for o, subjects in by_object.items()}
                         for p, by_object in other._pos.items()}
            self._osp = {o: {s: set(predicates)
                             for s, predicates in by_subject.items()}
                         for o, by_subject in other._osp.items()}
        self._s_counts = dict(other._s_counts)
        self._p_counts = dict(other._p_counts)
        self._o_counts = dict(other._o_counts)
        self._size = other._size

    def copy(self) -> "TripleStore":
        """A new independent store sharing this store's dictionary."""
        clone = TripleStore(self.indexing, dictionary=self.dictionary)
        with self.rwlock.read_locked():
            clone._adopt_locked(self)
        return clone

    def union(self, other: "TripleStore") -> "TripleStore":
        """A new store holding both graphs (used for effective user KBs)."""
        merged = self.copy()
        merged.update(other)
        return merged

    def update(self, other: "TripleStore") -> int:
        """Bulk-merge *other* into this store (one lock, one generation).

        When both stores share one dictionary the merge copies raw id
        tuples without re-interning a single term.
        """
        if other.dictionary is self.dictionary:
            count = 0
            journal = self.durability_journal
            added: list | None = [] if journal is not None else None
            # Write side first: ``store.update(store)`` then piggybacks
            # the read acquisition instead of attempting an upgrade.
            with self.rwlock.write_locked():
                with other.rwlock.read_locked():
                    if self._size == 0 and other._size \
                            and self.indexing == other.indexing:
                        # Loading a graph into an empty store adopts
                        # the source's index structures wholesale.
                        self._adopt_locked(other)
                        count = self._size
                        if added is not None:
                            added.extend(
                                self._match_ids(None, None, None))
                    else:
                        add_locked = self._add_ids_locked
                        for s, p, o in list(
                                other._match_ids(None, None, None)):
                            if add_locked(s, p, o):
                                count += 1
                                if added is not None:
                                    added.append((s, p, o))
                    if count:
                        self.generation += 1
                        if added:
                            terms = self.dictionary.terms
                            journal.log(
                                "add_all",
                                {"triples": [(terms[s], terms[p], terms[o])
                                             for s, p, o in added]},
                                generation=self.generation)
            return count
        return self.add_all(other.triples())
