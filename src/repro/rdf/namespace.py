"""Namespace handling: prefix binding, QName expansion and compaction."""

from __future__ import annotations

from .errors import NamespaceError
from .terms import IRI


class Namespace:
    """A namespace IRI that mints member IRIs via attribute/index access.

    >>> SMG = Namespace("http://smartground.eu/ns#")
    >>> SMG.dangerLevel
    IRI(value='http://smartground.eu/ns#dangerLevel')
    """

    def __init__(self, base: str) -> None:
        self.base = base

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self.base + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self.base + name)

    def term(self, name: str) -> IRI:
        return IRI(self.base + name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self.base)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.base


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")

#: The SmartGround vocabulary of Fig. 4.
SMG = Namespace("http://smartground.eu/ns#")

RDF_TYPE = RDF.type


class NamespaceManager:
    """Bidirectional prefix <-> namespace registry."""

    DEFAULTS = {
        "rdf": RDF.base,
        "rdfs": RDFS.base,
        "xsd": XSD.base,
        "owl": OWL.base,
        "smg": SMG.base,
    }

    def __init__(self, include_defaults: bool = True) -> None:
        self._by_prefix: dict[str, str] = {}
        if include_defaults:
            self._by_prefix.update(self.DEFAULTS)

    def bind(self, prefix: str, base: str | Namespace) -> None:
        self._by_prefix[prefix] = str(base)

    def prefixes(self) -> dict[str, str]:
        return dict(self._by_prefix)

    def expand(self, qname: str) -> IRI:
        """Expand ``prefix:local`` to a full IRI."""
        if ":" not in qname:
            raise NamespaceError(f"not a QName: {qname!r}")
        prefix, local = qname.split(":", 1)
        if prefix not in self._by_prefix:
            raise NamespaceError(f"unknown prefix {prefix!r}")
        return IRI(self._by_prefix[prefix] + local)

    def compact(self, iri: IRI) -> str:
        """Compact an IRI to ``prefix:local`` when a binding matches."""
        best_prefix = None
        best_base = ""
        for prefix, base in self._by_prefix.items():
            if iri.value.startswith(base) and len(base) > len(best_base):
                local = iri.value[len(base):]
                if local and all(c.isalnum() or c in "_-." for c in local):
                    best_prefix, best_base = prefix, base
        if best_prefix is None:
            return iri.n3()
        return f"{best_prefix}:{iri.value[len(best_base):]}"
