"""RDF substrate: terms, indexed triple store, Turtle/N-Triples I/O.

This package replaces Apache Jena in the CroSSE architecture: per-user
knowledge bases are :class:`TripleStore` instances queried through
:mod:`repro.sparql`.
"""

from .errors import NamespaceError, RdfError, RdfParseError, RdfTermError
from .namespace import (OWL, RDF, RDF_TYPE, RDFS, SMG, XSD, Namespace,
                        NamespaceManager)
from .ntriples import parse_ntriples, serialize_ntriples
from .store import StoreStatistics, TermDictionary, Triple, TripleStore
from .terms import (BNode, IRI, Literal, Term, is_term, term_from_python,
                    term_sort_key)
from .turtle import parse_turtle, serialize_turtle

__all__ = [
    "IRI", "Literal", "BNode", "Term", "Triple", "TripleStore",
    "TermDictionary", "StoreStatistics",
    "Namespace", "NamespaceManager", "RDF", "RDFS", "XSD", "OWL", "SMG",
    "RDF_TYPE", "is_term", "term_from_python", "term_sort_key",
    "parse_turtle", "serialize_turtle", "parse_ntriples",
    "serialize_ntriples",
    "RdfError", "RdfTermError", "RdfParseError", "NamespaceError",
]
