"""Turtle (subset) parser and serializer.

Supports: ``@prefix``/``@base`` directives, IRIs, prefixed names, the
``a`` keyword, string literals (with language tags and ``^^`` datatypes),
numeric and boolean literals, blank node labels (``_:b0``), predicate
lists (``;``), object lists (``,``) and ``#`` comments.  This covers the
knowledge bases the paper's enrichment scenarios exchange.
"""

from __future__ import annotations

from typing import Iterator

from .errors import RdfParseError
from .namespace import RDF_TYPE, NamespaceManager
from .store import Triple, TripleStore
from .terms import (XSD_BOOLEAN, XSD_DOUBLE, XSD_INTEGER, XSD_STRING, BNode,
                    IRI, Literal, Term)


class _TurtleLexer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0
        self.line = 1

    def error(self, message: str) -> RdfParseError:
        return RdfParseError(message, self.line)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.position < len(self.text):
                if self.text[self.position] == "\n":
                    self.line += 1
                self.position += 1

    def skip_ws(self) -> None:
        while self.position < len(self.text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "#":
                while self.position < len(self.text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def at_end(self) -> bool:
        self.skip_ws()
        return self.position >= len(self.text)

    def next_token(self) -> tuple[str, str]:
        """Returns (kind, text); kinds: iri, pname, var?, literal parts..."""
        self.skip_ws()
        if self.position >= len(self.text):
            return ("eof", "")
        char = self._peek()
        if char == "<":
            return ("iri", self._read_iri())
        if char in "\"'":
            return ("string", self._read_string())
        if char in ".;,[]()":
            self._advance()
            return ("punct", char)
        if char == "@":
            self._advance()
            word = self._read_word()
            return ("at", word)
        if char == "^" and self._peek(1) == "^":
            self._advance(2)
            return ("dtype", "^^")
        if char.isdigit() or (char in "+-" and (self._peek(1).isdigit()
                                                or self._peek(1) == ".")):
            return ("number", self._read_number())
        if char == "_" and self._peek(1) == ":":
            self._advance(2)
            return ("bnode", self._read_word())
        word_or_pname = self._read_pname_or_word()
        if word_or_pname is None:
            raise self.error(f"unexpected character {char!r}")
        return word_or_pname

    def _read_iri(self) -> str:
        self._advance()
        start = self.position
        while self.position < len(self.text) and self._peek() != ">":
            if self._peek() == "\n":
                raise self.error("newline inside IRI")
            self._advance()
        if self.position >= len(self.text):
            raise self.error("unterminated IRI")
        value = self.text[start:self.position]
        self._advance()
        return value

    def _read_string(self) -> str:
        quote = self._peek()
        long_quote = (self._peek(1) == quote and self._peek(2) == quote)
        self._advance(3 if long_quote else 1)
        pieces: list[str] = []
        while True:
            if self.position >= len(self.text):
                raise self.error("unterminated string literal")
            char = self._peek()
            if char == "\\":
                escape = self._peek(1)
                mapping = {"n": "\n", "t": "\t", "r": "\r", '"': '"',
                           "'": "'", "\\": "\\"}
                if escape in mapping:
                    pieces.append(mapping[escape])
                    self._advance(2)
                    continue
                raise self.error(f"unknown escape \\{escape}")
            if long_quote:
                if (char == quote and self._peek(1) == quote
                        and self._peek(2) == quote):
                    self._advance(3)
                    return "".join(pieces)
            elif char == quote:
                self._advance()
                return "".join(pieces)
            elif char == "\n":
                raise self.error("newline in short string literal")
            pieces.append(char)
            self._advance()

    def _read_number(self) -> str:
        start = self.position
        if self._peek() in "+-":
            self._advance()
        saw_dot = saw_exp = False
        while self.position < len(self.text):
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not saw_dot and not saw_exp \
                    and self._peek(1).isdigit():
                saw_dot = True
                self._advance()
            elif char in "eE" and not saw_exp:
                saw_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        return self.text[start:self.position]

    def _read_word(self) -> str:
        start = self.position
        while self.position < len(self.text):
            char = self._peek()
            if char.isalnum() or char in "_-":
                self._advance()
            else:
                break
        return self.text[start:self.position]

    def _read_pname_or_word(self) -> tuple[str, str] | None:
        start = self.position
        while self.position < len(self.text):
            char = self._peek()
            if char.isalnum() or char in "_-.":
                self._advance()
            elif char == ":":
                self._advance()
            else:
                break
        text = self.text[start:self.position]
        if not text:
            return None
        # Trailing '.' is the statement terminator, not part of the name.
        while text.endswith("."):
            text = text[:-1]
            self.position -= 1
        if ":" in text:
            return ("pname", text)
        return ("word", text)


class TurtleParser:
    """Parses Turtle text into triples."""

    def __init__(self, text: str,
                 namespaces: NamespaceManager | None = None) -> None:
        self.lexer = _TurtleLexer(text)
        self.namespaces = namespaces or NamespaceManager()
        self._pushed: tuple[str, str] | None = None
        self._bnodes: dict[str, BNode] = {}

    def _next(self) -> tuple[str, str]:
        if self._pushed is not None:
            token, self._pushed = self._pushed, None
            return token
        return self.lexer.next_token()

    def _push(self, token: tuple[str, str]) -> None:
        self._pushed = token

    def parse(self) -> Iterator[Triple]:
        while True:
            kind, text = self._next()
            if kind == "eof":
                return
            if kind == "at":
                self._directive(text)
                continue
            if kind == "word" and text.upper() in ("PREFIX", "BASE"):
                self._directive(text.lower(), sparql_style=True)
                continue
            subject = self._term_from(kind, text, role="subject")
            yield from self._predicate_object_list(subject)
            kind, text = self._next()
            if kind != "punct" or text != ".":
                raise self.lexer.error(
                    f"expected '.' after statement, found {text!r}")

    def _directive(self, name: str, sparql_style: bool = False) -> None:
        if name == "prefix":
            kind, text = self._next()
            if kind != "pname" or not text.endswith(":"):
                raise self.lexer.error("expected prefix declaration")
            prefix = text[:-1]
            kind, iri = self._next()
            if kind != "iri":
                raise self.lexer.error("expected IRI in @prefix")
            self.namespaces.bind(prefix, iri)
            if not sparql_style:
                kind, text = self._next()
                if kind != "punct" or text != ".":
                    raise self.lexer.error("expected '.' after @prefix")
            return
        if name == "base":
            kind, _iri = self._next()
            if kind != "iri":
                raise self.lexer.error("expected IRI in @base")
            if not sparql_style:
                kind, text = self._next()
                if kind != "punct" or text != ".":
                    raise self.lexer.error("expected '.' after @base")
            return
        raise self.lexer.error(f"unknown directive @{name}")

    def _predicate_object_list(self, subject: Term) -> Iterator[Triple]:
        while True:
            kind, text = self._next()
            predicate = self._predicate_from(kind, text)
            while True:
                kind, text = self._next()
                obj = self._term_from(kind, text, role="object")
                yield Triple(subject, predicate, obj)
                kind, text = self._next()
                if kind == "punct" and text == ",":
                    continue
                break
            if kind == "punct" and text == ";":
                # Allow trailing ';' before '.'
                peeked = self._next()
                if peeked[0] == "punct" and peeked[1] == ".":
                    self._push(peeked)
                    return
                self._push(peeked)
                continue
            self._push((kind, text))
            return

    def _predicate_from(self, kind: str, text: str) -> IRI:
        if kind == "word" and text == "a":
            return RDF_TYPE
        if kind == "iri":
            return IRI(text)
        if kind == "pname":
            return self.namespaces.expand(text)
        raise self.lexer.error(f"expected predicate, found {text!r}")

    def _term_from(self, kind: str, text: str, role: str) -> Term:
        if kind == "iri":
            return IRI(text)
        if kind == "pname":
            return self.namespaces.expand(text)
        if kind == "bnode":
            if text not in self._bnodes:
                self._bnodes[text] = BNode(text)
            return self._bnodes[text]
        if kind == "number":
            if any(c in text for c in ".eE"):
                return Literal(float(text))
            return Literal(int(text))
        if kind == "word" and text in ("true", "false"):
            return Literal(text == "true")
        if kind == "string":
            return self._string_literal(text)
        raise self.lexer.error(f"expected {role}, found {text!r}")

    def _string_literal(self, text: str) -> Literal:
        kind, next_text = self._next()
        if kind == "at":
            return Literal(text, lang=next_text)
        if kind == "dtype":
            kind, dtype_text = self._next()
            if kind == "iri":
                datatype = dtype_text
            elif kind == "pname":
                datatype = self.namespaces.expand(dtype_text).value
            else:
                raise self.lexer.error("expected datatype IRI after ^^")
            return _typed_literal(text, datatype)
        self._push((kind, next_text))
        return Literal(text)


def _typed_literal(lexical: str, datatype: str) -> Literal:
    if datatype == XSD_INTEGER:
        return Literal(int(lexical), datatype=datatype)
    if datatype in (XSD_DOUBLE,):
        return Literal(float(lexical), datatype=datatype)
    if datatype == XSD_BOOLEAN:
        return Literal(lexical == "true", datatype=datatype)
    if datatype == XSD_STRING:
        return Literal(lexical)
    return Literal(lexical, datatype=datatype)


def parse_turtle(text: str,
                 namespaces: NamespaceManager | None = None) -> TripleStore:
    """Parse Turtle text into a fresh TripleStore."""
    store = TripleStore()
    parser = TurtleParser(text, namespaces)
    store.add_all(parser.parse())
    return store


def serialize_turtle(store: TripleStore,
                     namespaces: NamespaceManager | None = None) -> str:
    """Serialize a store to Turtle, grouping by subject."""
    manager = namespaces or NamespaceManager()
    lines = [f"@prefix {prefix}: <{base}> ."
             for prefix, base in sorted(manager.prefixes().items())]
    if lines:
        lines.append("")

    def render(term: Term) -> str:
        if isinstance(term, IRI):
            return manager.compact(term)
        return term.n3()

    by_subject: dict[Term, list[Triple]] = {}
    for triple in store.triples():
        by_subject.setdefault(triple.subject, []).append(triple)
    for subject in sorted(by_subject, key=lambda term: term.n3()):
        triples = sorted(by_subject[subject],
                         key=lambda t: (t.predicate.value, t.object.n3()))
        subject_text = render(subject)
        parts = []
        for triple in triples:
            predicate_text = ("a" if triple.predicate == RDF_TYPE
                              else render(triple.predicate))
            parts.append(f"{predicate_text} {render(triple.object)}")
        joined = " ;\n    ".join(parts)
        lines.append(f"{subject_text} {joined} .")
    return "\n".join(lines) + "\n"
