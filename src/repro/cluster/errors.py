"""Cluster-layer exceptions."""

from __future__ import annotations


class ClusterError(Exception):
    """Base class for cluster failures."""


class ProtocolError(ClusterError):
    """A malformed or oversized RPC frame."""


class ShardUnavailableError(ClusterError):
    """A shard could not be reached or died mid-conversation."""


class ReplicaStaleError(ClusterError):
    """A replica was asked to serve a read it cannot prove fresh.

    Raised only when no forward target is configured: a replica
    **never** silently serves data older than the generation the caller
    expects.
    """

    def __init__(self, message: str, *, have: int, want: int) -> None:
        super().__init__(message)
        self.have = have
        self.want = want


class ReplicaGapError(ClusterError):
    """The WAL tailer found a sequence hole (e.g. a pruned segment).

    Applying later records would fabricate history, so the replica
    stops applying and must be rebuilt from a snapshot.
    """
