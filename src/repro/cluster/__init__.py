"""``repro.cluster`` — sharded multi-process deployment of the platform.

The single-process platform scales users until one Python process runs
out of lock bandwidth.  This package shards it:

* a :class:`HashRing` consistently hashes usernames onto N shards;
* each shard is a worker process (:class:`ShardServer` /
  :func:`run_worker`) hosting a full platform slice — contexts, KBs,
  a per-shard session pool — behind a length-prefixed JSON RPC
  protocol;
* a :class:`ClusterCoordinator` terminates the ``/api/v1`` surface,
  routing user-scoped calls to the owning shard and scatter-gathering
  cross-user calls under the federation layer's fail/skip/retry
  policies;
* each worker can host a :class:`ReadReplica` of the shared relational
  databank / triple stores, kept fresh by tailing the primary's WAL
  (:class:`WalTailer`) and serving a read **iff** its generation stamp
  has caught up — stale reads forward to the primary, never lie.

:func:`start_cluster` wires all of it up on one machine.
"""

from .coordinator import (ClusterCoordinator, ClusterOptions,
                          ClusterSession, ShardClient)
from .errors import (ClusterError, ProtocolError, ReplicaGapError,
                     ReplicaStaleError, ShardUnavailableError)
from .hashring import DEFAULT_VNODES, HashRing
from .launch import Cluster, make_worker_spec, start_cluster
from .protocol import (connect_socket, format_address, listen_socket,
                       recv_message, send_message, tcp_address,
                       unix_address)
from .replica import ReadReplica, WalTailer
from .worker import ShardRuntime, ShardServer, resolve_builder, run_worker

__all__ = [
    "Cluster",
    "ClusterCoordinator",
    "ClusterError",
    "ClusterOptions",
    "ClusterSession",
    "DEFAULT_VNODES",
    "HashRing",
    "ProtocolError",
    "ReadReplica",
    "ReplicaGapError",
    "ReplicaStaleError",
    "ShardClient",
    "ShardRuntime",
    "ShardServer",
    "ShardUnavailableError",
    "WalTailer",
    "connect_socket",
    "format_address",
    "listen_socket",
    "make_worker_spec",
    "recv_message",
    "resolve_builder",
    "run_worker",
    "send_message",
    "start_cluster",
    "tcp_address",
    "unix_address",
]
