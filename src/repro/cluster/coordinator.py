"""The coordinator: one ``/api/v1`` front door over N shards.

The coordinator owns three responsibilities and nothing else:

* **routing** — user-scoped requests (queries, annotations, statement
  acceptance, registration) go to the shard the hash ring assigns that
  user; the response passes through unchanged, so a client cannot tell
  one shard from a single-process deployment.  Knowledge communities
  are **per-shard**: statements live on their author's shard, so
  acceptance routes by the accepting user and reaches the statement
  iff author and acceptor co-locate — cross-shard knowledge exchange
  is future work (it needs globally unique statement ids);
* **scatter-gather** — cross-user requests (user listings, fleet-wide
  queries, stats/metrics) fan out to every shard concurrently under the
  federation layer's fail/skip/retry policies and merge
  deterministically (sorted by username / shard id), so a scattered
  result is byte-identical to the serial single-process answer;
* **primary state** — the shared relational databank (and optional
  triple stores) live in the coordinator's process behind the
  durability manager; writes commit here, ``sync()`` flushes the WAL so
  worker replicas can tail them, and reads either go to a replica
  (generation-checked, forwarded back here when stale) or run locally.

Telemetry crosses the RPC boundary: every routed call opens a
``cluster.rpc`` span, the worker returns its slice of the trace in the
RPC response, and :meth:`~repro.telemetry.Tracer.graft` rebuilds it
under the coordinator's span — one query, one span tree, even across
processes.
"""

from __future__ import annotations

import re
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from ..api.cursor import paginate_sequence, request_signature
from ..federation.executor import (FAIL, FAILURE_POLICIES, SKIP,
                                   run_with_policy)
from ..federation.rest import (MAX_PAGE_LIMIT, Response, _page_args,
                               error_payload)
from ..relational.engine import Database
from ..telemetry import create_telemetry
from .errors import ClusterError, ShardUnavailableError
from .hashring import HashRing
from .protocol import connect_socket, format_address, recv_message, \
    send_message


@dataclass(frozen=True)
class ClusterOptions:
    """Knobs for coordinator ↔ shard conversations."""

    #: Per-RPC socket timeout (covers the worker's freshness wait).
    rpc_timeout_s: float = 30.0
    connect_timeout_s: float = 10.0
    #: Default per-shard failure policy (``fail``/``skip``/``retry``)
    #: and per-shard overrides keyed ``"shard-<id>"`` — the same
    #: machinery federation applies per source.
    failure_policy: str = FAIL
    shard_policies: dict[str, str] = field(default_factory=dict)
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_cap_s: float = 1.0
    #: How long a worker may wait for its replica to catch up before
    #: reporting the request stale.
    freshness_timeout_s: float = 5.0
    #: Concurrently in-flight shards during a scatter.
    scatter_workers: int = 8
    #: Idle sockets kept per shard.
    max_idle_sockets: int = 8

    def __post_init__(self) -> None:
        for policy in (self.failure_policy,
                       *self.shard_policies.values()):
            if policy not in FAILURE_POLICIES:
                raise ClusterError(
                    f"unknown failure policy {policy!r} (expected one "
                    f"of {', '.join(FAILURE_POLICIES)})")

    def policy_for(self, shard_id: int) -> str:
        return self.shard_policies.get(f"shard-{shard_id}",
                                       self.failure_policy)


class ShardClient:
    """A pooled RPC client for one shard endpoint."""

    def __init__(self, shard_id: int, address: dict,
                 options: ClusterOptions) -> None:
        self.shard_id = shard_id
        self.address = address
        self.options = options
        self._idle: list[Any] = []
        self._lock = threading.Lock()

    def call(self, payload: dict,
             timeout_s: float | None = None) -> dict:
        """One request/response round trip (reusing an idle socket)."""
        timeout = timeout_s or self.options.rpc_timeout_s
        with self._lock:
            sock = self._idle.pop() if self._idle else None
        if sock is None:
            sock = connect_socket(self.address,
                                  self.options.connect_timeout_s)
        try:
            sock.settimeout(timeout)
            send_message(sock, payload)
            response = recv_message(sock)
        except Exception:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            raise
        with self._lock:
            if len(self._idle) < self.options.max_idle_sockets:
                self._idle.append(sock)
            else:
                sock.close()
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ClusterError(
                f"shard {self.shard_id} ({format_address(self.address)}) "
                f"rejected {payload.get('op')!r}: "
                f"{error.get('code')}: {error.get('message')}")
        return response

    def wait_ready(self, timeout_s: float = 30.0) -> None:
        """Block until the shard answers a ping (spawn warm-up)."""
        import time
        deadline = time.monotonic() + timeout_s
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                self.call({"op": "ping"}, timeout_s=2.0)
                return
            except (ShardUnavailableError, OSError) as exc:
                last = exc
                time.sleep(0.05)
        raise ShardUnavailableError(
            f"shard {self.shard_id} at "
            f"{format_address(self.address)} did not become ready "
            f"within {timeout_s}s: {last}")

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for sock in idle:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass


#: User-scoped routes: (method, path regex, where the username lives).
_ROUTED = [
    ("POST", re.compile(r"^/api(?:/v1)?/users$"), "body"),
    ("POST", re.compile(r"^/api(?:/v1)?/annotations$"), "body"),
    ("GET", re.compile(r"^/api(?:/v1)?/annotations/(?P<username>[^/]+)$"),
     "path"),
    ("POST", re.compile(r"^/api(?:/v1)?/statements/[^/]+/accept$"),
     "body"),
    ("POST", re.compile(r"^/api/v1/query$"), "body"),
    ("POST", re.compile(r"^/api/sesql$"), "body"),
    ("GET", re.compile(
        r"^/api(?:/v1)?/recommendations/(?:peers|resources)/"
        r"(?P<username>[^/]+)$"), "path"),
]

#: Routed reads that must observe replica freshness and want traces.
_READ_PATHS = re.compile(r"^(/api/v1/query|/api/sesql)$")


class ClusterCoordinator:
    """Routes, scatters and merges ``/api/v1`` calls across shards."""

    def __init__(self, addresses: list[dict], *,
                 primary: Database | None = None,
                 primary_stores: dict[str, Any] | None = None,
                 durability=None, ring: HashRing | None = None,
                 options: ClusterOptions | None = None,
                 telemetry=None) -> None:
        self.options = options or ClusterOptions()
        self.clients = [ShardClient(index, address, self.options)
                        for index, address in enumerate(addresses)]
        self.ring = ring or HashRing(len(self.clients))
        if len(self.ring) != len(self.clients):
            raise ClusterError(
                f"ring has {len(self.ring)} shards but "
                f"{len(self.clients)} addresses were given")
        self.primary = primary
        self.primary_stores = dict(primary_stores or {})
        self.durability = durability
        self.forwarded_reads = 0
        self._replica_rr = 0           # round-robin replica cursor
        self._rr_lock = threading.Lock()
        self.telemetry = create_telemetry(telemetry)
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            self._tm_rpcs = metrics.counter(
                "repro_cluster_rpcs_total",
                "RPCs issued to shard workers", labels=("shard", "op"))
            self._tm_rpc_seconds = metrics.histogram(
                "repro_cluster_rpc_seconds",
                "Round-trip time of shard RPCs", labels=("shard",))
            self._tm_retries = metrics.counter(
                "repro_cluster_rpc_retries_total",
                "Shard RPC retry attempts beyond the first",
                labels=("shard",))
            self._tm_skips = metrics.counter(
                "repro_cluster_shard_skips_total",
                "Shards skipped during a scatter under the skip policy",
                labels=("shard",))
            self._tm_forwards = metrics.counter(
                "repro_cluster_forwards_total",
                "Replica reads forwarded to the primary (stale stamp)")

    # -- placement -------------------------------------------------------------

    def shard_for(self, username: str) -> int:
        return self.ring.shard_for(username)

    def expected_generations(self) -> dict | None:
        """The primary stamps a fresh replica read must have reached."""
        if self.primary is None:
            return None
        return {"db": self.primary.generation,
                "stores": {name: store.generation
                           for name, store in self.primary_stores.items()}}

    # -- RPC plumbing ----------------------------------------------------------

    def _rpc(self, client: ShardClient, payload: dict) -> dict:
        """One policy-guarded RPC, with span + trace grafting."""
        import time
        policy = self.options.policy_for(client.shard_id)
        tel = self.telemetry
        started = time.perf_counter() if tel is not None else 0.0
        span_cm = (tel.span("cluster.rpc", shard=client.shard_id,
                            op=payload.get("op"))
                   if tel is not None else None)
        if span_cm is None:
            outcome = self._call_with_policy(client, payload, policy)
        else:
            with span_cm as span:
                outcome = self._call_with_policy(client, payload, policy)
                if span is not None:
                    span.attrs["attempts"] = outcome.attempts
                    if not outcome.failed:
                        trace = outcome.result.get("trace")
                        if trace:
                            tel.tracer.graft(span, trace)
        if tel is not None:
            self._tm_rpcs.labels(str(client.shard_id),
                                 str(payload.get("op"))).inc()
            self._tm_rpc_seconds.labels(str(client.shard_id)).observe(
                time.perf_counter() - started)
            if outcome.attempts > 1:
                self._tm_retries.labels(str(client.shard_id)).inc(
                    outcome.attempts - 1)
        if outcome.failed:
            raise ShardUnavailableError(
                f"shard {client.shard_id} failed after "
                f"{outcome.attempts} attempt(s): {outcome.error}"
            ) from outcome.exception
        return outcome.result

    def _call_with_policy(self, client: ShardClient, payload: dict,
                          policy: str):
        # SKIP is resolved by the *caller* (scatter omits the shard,
        # routed requests surface a 503) — here it just means "don't
        # retry".
        return run_with_policy(
            lambda: client.call(payload), policy=policy,
            max_retries=self.options.max_retries,
            backoff_s=self.options.backoff_s,
            backoff_cap_s=self.options.backoff_cap_s)

    def _scatter(self, payload_for: Callable[[ShardClient], dict | None]
                 ) -> tuple[dict[int, dict], list[str]]:
        """Fan one request out to every shard; returns per-shard
        responses plus warnings for shards the skip policy absorbed."""
        targets = [(client, payload_for(client))
                   for client in self.clients]
        targets = [(client, payload) for client, payload in targets
                   if payload is not None]
        if not targets:
            return {}, []
        responses: dict[int, dict] = {}
        warnings: list[str] = []
        lock = threading.Lock()

        def fan(client: ShardClient, payload: dict) -> None:
            try:
                response = self._rpc(client, payload)
            except ClusterError as exc:
                if self.options.policy_for(client.shard_id) == SKIP:
                    with lock:
                        warnings.append(
                            f"shard {client.shard_id} skipped: {exc}")
                    if self.telemetry is not None:
                        self._tm_skips.labels(str(client.shard_id)).inc()
                    return
                raise
            with lock:
                responses[client.shard_id] = response

        if len(targets) == 1:
            fan(*targets[0])
        else:
            workers = min(len(targets), self.options.scatter_workers)
            with ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="cluster-scatter") as pool:
                futures = [pool.submit(fan, client, payload)
                           for client, payload in targets]
                for future in futures:
                    future.result()
        return responses, warnings

    # -- the /api/v1 front door ------------------------------------------------

    def request(self, method: str, path: str,
                body: dict | None = None) -> Response:
        """Terminate one REST call — same signature as
        :meth:`~repro.federation.CrosseRestService.request`."""
        tel = self.telemetry
        if tel is None:
            return self._dispatch(method, path, body)
        with tel.tracer.query_span("cluster.request", method=method,
                                   path=path.partition("?")[0]) as root:
            response = self._dispatch(method, path, body)
            root.attrs["status"] = response.status
        tel.record_query(root, backend="cluster",
                         statement=f"{method} {path}",
                         user=(body or {}).get("username"))
        return response

    def _dispatch(self, method: str, path: str,
                  body: dict | None) -> Response:
        method = method.upper()
        bare = path.partition("?")[0]
        try:
            if bare.startswith("/api/v1/cluster/"):
                return self._cluster_endpoint(method, bare, path,
                                              body or {})
            if bare in ("/api/users", "/api/v1/users") \
                    and method == "GET":
                return self._list_users(bare, path, body or {})
            if bare == "/api/v1/batch" and method == "POST":
                return self._batch(body or {})
            if bare in ("/api/v1/metrics", "/api/v1/slow_queries") \
                    or bare.startswith("/api/v1/traces/"):
                return self._observability(method, bare, path)
            routed = self._route(method, bare, body)
            if routed is not None:
                return self._forward_routed(routed, method, path, body)
        except ShardUnavailableError as exc:
            return Response(503, error_payload(
                "shard_unavailable", str(exc)))
        return Response(404, error_payload(
            "not_found",
            f"no cluster route for {method} {bare}",
            "user-scoped /api/v1 calls are routed by username; "
            "cross-shard operations live under /api/v1/cluster/"))

    def _route(self, method: str, bare: str,
               body: dict | None) -> str | None:
        """The owning username for a user-scoped path, or None."""
        for route_method, pattern, source in _ROUTED:
            if route_method != method:
                continue
            match = pattern.match(bare)
            if match is None:
                continue
            if source == "path":
                return match.group("username")
            username = (body or {}).get("username")
            if not username:
                raise ClusterError(
                    f"{method} {bare} needs a username to route by")
            return username
        return None

    def _forward_routed(self, username: str, method: str, path: str,
                        body: dict | None) -> Response:
        client = self.clients[self.shard_for(username)]
        payload: dict[str, Any] = {"op": "rest", "method": method,
                                   "path": path, "body": body}
        if _READ_PATHS.match(path.partition("?")[0]):
            expect = self.expected_generations()
            if expect is not None:
                payload["expect"] = expect
            payload["trace"] = self.telemetry is not None
        try:
            response = self._rpc(client, payload)
        except ShardUnavailableError:
            if self.options.policy_for(client.shard_id) != SKIP:
                raise
            return Response(503, error_payload(
                "shard_unavailable",
                f"shard {client.shard_id} (owner of "
                f"{username!r}) is unavailable"))
        return Response(response.get("status", 500),
                        response.get("body"))

    # -- scattered listings ----------------------------------------------------

    def _list_users(self, bare: str, path: str, body: dict) -> Response:
        responses, warnings = self._scatter(
            lambda _client: {"op": "usernames"})
        merged: list[str] = []
        for shard_id in sorted(responses):
            merged.extend(responses[shard_id].get("usernames", []))
        # Deterministic merge: the single-process registry returns
        # usernames in registration order, which a scatter cannot
        # reconstruct — sorted order is the documented cluster contract
        # (and what the byte-identical check compares against).
        merged.sort()
        if bare == "/api/users":
            payload: dict[str, Any] = {"users": merged}
        else:
            params = _query_params(path)
            limit, token = _page_args(params, body)
            page = paginate_sequence(merged, limit, token,
                                     request_signature("users"))
            payload = {"users": page.items,
                       "next_token": page.next_token, "limit": limit}
        if warnings:
            payload["warnings"] = warnings
        return Response(200, payload)

    # -- batch -----------------------------------------------------------------

    def _batch(self, body: dict) -> Response:
        requests = body.get("requests")
        if not isinstance(requests, list):
            return Response(400, error_payload(
                "invalid_batch", "requests must be a list"))
        responses = []
        for entry in requests:
            if not isinstance(entry, dict) or "path" not in entry:
                return Response(400, error_payload(
                    "invalid_batch",
                    "each batch entry needs at least a path", entry))
            response = self._dispatch(entry.get("method", "GET"),
                                      entry["path"], entry.get("body"))
            responses.append({"status": response.status,
                              "body": response.payload})
        return Response(200, {"responses": responses})

    # -- coordinator-local observability --------------------------------------

    def _observability(self, method: str, bare: str,
                       path: str) -> Response:
        if self.telemetry is None:
            return Response(404, error_payload(
                "telemetry_disabled",
                "the coordinator was built without telemetry",
                "construct ClusterCoordinator(..., telemetry=True)"))
        if bare == "/api/v1/metrics":
            params = _query_params(path)
            if params.get("format") == "prometheus":
                return Response(
                    200, self.telemetry.metrics.render_prometheus())
            return Response(
                200, {"metrics": self.telemetry.metrics.to_dict()})
        if bare == "/api/v1/slow_queries":
            entries = [entry.to_dict()
                       for entry in self.telemetry.slow_queries.entries()]
            return Response(200, {"slow_queries": entries})
        query_id = bare.rsplit("/", 1)[-1]
        root = self.telemetry.tracer.trace(query_id)
        if root is None:
            return Response(404, error_payload(
                "trace_not_found",
                f"no trace retained for {query_id!r}"))
        return Response(200, {"trace": root.to_dict()})

    # -- /api/v1/cluster/* -----------------------------------------------------

    def _cluster_endpoint(self, method: str, bare: str, path: str,
                          body: dict) -> Response:
        if bare == "/api/v1/cluster/shards" and method == "GET":
            return Response(200, {"shards": [
                {"shard": client.shard_id,
                 "address": format_address(client.address),
                 "policy": self.options.policy_for(client.shard_id)}
                for client in self.clients]})
        if bare == "/api/v1/cluster/stats" and method == "GET":
            responses, warnings = self._scatter(
                lambda _client: {"op": "stats"})
            payload = {"shards": [responses[shard_id]["stats"]
                                  for shard_id in sorted(responses)],
                       "forwarded_reads": self.forwarded_reads}
            if warnings:
                payload["warnings"] = warnings
            return Response(200, payload)
        if bare == "/api/v1/cluster/metrics" and method == "GET":
            responses, warnings = self._scatter(
                lambda _client: {"op": "metrics"})
            payload = {
                "shards": {str(shard_id): responses[shard_id]["metrics"]
                           for shard_id in sorted(responses)},
                "coordinator": (self.telemetry.metrics.to_dict()
                                if self.telemetry is not None else None)}
            if warnings:
                payload["warnings"] = warnings
            return Response(200, payload)
        if bare == "/api/v1/cluster/execute" and method == "POST":
            return self._execute_primary(body)
        if bare == "/api/v1/cluster/sql" and method == "POST":
            return self._replica_sql(body)
        if bare == "/api/v1/cluster/query" and method == "POST":
            return self._scatter_query(body)
        return Response(404, error_payload(
            "not_found", f"no cluster route for {method} {bare}"))

    def _execute_primary(self, body: dict) -> Response:
        """A write against the primary, flushed so replicas can tail it."""
        if self.primary is None:
            return Response(404, error_payload(
                "no_primary", "this coordinator holds no primary store"))
        sql = body.get("sql")
        if not sql:
            return Response(400, error_payload(
                "missing_field", "missing field 'sql'"))
        try:
            result = self.primary.execute(sql)
        except Exception as exc:
            return Response(422, error_payload("unprocessable",
                                               str(exc)))
        if self.durability is not None:
            # Group-committed frames only become visible to tailing
            # replicas once flushed; a cluster write is not "done"
            # until every replica *can* catch up to it.
            self.durability.sync()
        payload: dict[str, Any] = {
            "generation": self.primary.generation}
        if hasattr(result, "columns"):
            payload["columns"] = result.columns
            payload["rows"] = [list(row) for row in result.rows]
        else:
            payload["rowcount"] = result
        return Response(200, payload)

    def _replica_sql(self, body: dict) -> Response:
        """A load-balanced replica read; forwarded here iff stale."""
        sql = body.get("sql")
        if not sql:
            return Response(400, error_payload(
                "missing_field", "missing field 'sql'"))
        expect = self.expected_generations()
        shard = body.get("shard")
        if shard is None:
            with self._rr_lock:
                shard = self._replica_rr % len(self.clients)
                self._replica_rr += 1
        client = self.clients[shard]
        try:
            response = self._rpc(client, {
                "op": "sql", "sql": sql,
                "expect_db": None if expect is None else expect["db"]})
        except ShardUnavailableError as exc:
            if self.primary is None:
                raise
            response = {"stale": True, "unavailable": str(exc)}
        if response.get("stale"):
            if self.primary is None:
                return Response(503, error_payload(
                    "replica_stale",
                    f"shard {client.shard_id} is stale and no primary "
                    f"is attached", response))
            # The freshness contract's other half: a stale replica
            # never answers — the primary does.
            self.forwarded_reads += 1
            if self.telemetry is not None:
                self._tm_forwards.inc()
            result = self.primary.query(sql)
            return Response(200, {
                "columns": result.columns,
                "rows": [list(row) for row in result.rows],
                "served_by": "primary", "forwarded": True})
        return Response(200, {"columns": response["columns"],
                              "rows": response["rows"],
                              "served_by": f"shard-{client.shard_id}",
                              "forwarded": False})

    def _scatter_query(self, body: dict) -> Response:
        """Run one query as many users at once, grouped by owner shard."""
        query = body.get("query")
        if not query:
            return Response(400, error_payload(
                "missing_field", "missing field 'query'"))
        usernames = body.get("usernames")
        if usernames is None:
            listing = self._list_users("/api/users", "/api/users", {})
            usernames = listing.payload["users"]
        by_shard: dict[int, list[str]] = {}
        for username in usernames:
            by_shard.setdefault(self.shard_for(username),
                                []).append(username)
        expect = self.expected_generations()

        def payload_for(client: ShardClient) -> dict | None:
            assigned = by_shard.get(client.shard_id)
            if not assigned:
                return None
            payload: dict[str, Any] = {
                "op": "multi_query", "usernames": assigned,
                "query": query, "params": body.get("params")}
            if expect is not None:
                payload["expect"] = expect
            return payload

        responses, warnings = self._scatter(payload_for)
        merged: dict[str, dict] = {}
        for shard_id in sorted(responses):
            merged.update(responses[shard_id].get("results", {}))
        payload = {"results": {username: merged[username]
                               for username in sorted(merged)}}
        missing = [username for username in usernames
                   if username not in merged]
        if missing:
            payload["missing"] = sorted(missing)
        if warnings:
            payload["warnings"] = warnings
        return Response(200, payload)

    # -- sessions / lifecycle --------------------------------------------------

    def connect(self) -> "ClusterSession":
        return ClusterSession(self)

    def ping_all(self, timeout_s: float = 30.0) -> None:
        for client in self.clients:
            client.wait_ready(timeout_s)

    def shutdown_shards(self) -> None:
        """Ask every worker to stop serving (best effort)."""
        for client in self.clients:
            try:
                client.call({"op": "shutdown"}, timeout_s=5.0)
            except ClusterError:
                pass

    def close(self) -> None:
        for client in self.clients:
            client.close()


def _query_params(path: str) -> dict:
    from urllib.parse import parse_qs
    _bare, _sep, query_string = path.partition("?")
    return {key: values[-1]
            for key, values in parse_qs(query_string).items()}


class ClusterSession:
    """A session-flavoured facade over the coordinator.

    Mirrors the per-user surface of a platform session — ``execute``
    routes to the user's shard and drains the paginated result into one
    :class:`~repro.relational.ResultSet` — so embedders can swap a
    single-process platform for a cluster without changing call sites.
    """

    def __init__(self, coordinator: ClusterCoordinator) -> None:
        self.coordinator = coordinator

    def execute(self, username: str, text: str, params=None):
        from ..relational.result import ResultSet
        body: dict[str, Any] = {"username": username, "query": text,
                                "limit": MAX_PAGE_LIMIT}
        if params is not None:
            body["params"] = list(params)
        columns: list[str] = []
        rows: list[tuple] = []
        while True:
            response = self.coordinator.request(
                "POST", "/api/v1/query", body)
            if response.status != 200:
                error = (response.payload or {}).get("error", {})
                raise ClusterError(
                    f"query for {username!r} failed "
                    f"({response.status}): {error.get('code')}: "
                    f"{error.get('message')}")
            payload = response.payload
            columns = payload["columns"]
            rows.extend(tuple(row) for row in payload["rows"])
            if not payload.get("next_token"):
                break
            body["next_token"] = payload["next_token"]
        return ResultSet(columns, rows)

    def users(self) -> list[str]:
        response = self.coordinator.request("GET", "/api/users")
        return list(response.payload["users"])

    def register_user(self, username: str, display_name: str = "",
                      affiliation: str = "", interests=None) -> dict:
        body: dict[str, Any] = {"username": username,
                                "display_name": display_name,
                                "affiliation": affiliation}
        if interests is not None:
            body["interests"] = list(interests)
        response = self.coordinator.request("POST", "/api/v1/users",
                                            body)
        if response.status != 200:
            raise ClusterError(
                f"registering {username!r} failed: {response.payload}")
        return response.payload

    def close(self) -> None:
        """Sessions do not own the coordinator; nothing to release."""
