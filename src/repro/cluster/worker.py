"""The shard worker: one process hosting a full platform slice.

Each worker owns a :class:`~repro.crosse.CrossePlatform` for the users
the ring assigns to it (contexts, KBs, session state), a per-shard
:class:`~repro.api.SessionPool` fronted by the same
:class:`~repro.federation.CrosseRestService` surface the single-process
deployment exposes, and (optionally) a :class:`ReadReplica` of the
shared relational/triple stores kept fresh from the primary's WAL.

The server is deliberately small: a listening socket, a thread per
connection, and a dict-in/dict-out op handler over the length-prefixed
JSON protocol.  Ops:

``ping``         liveness + shard identity
``rest``         terminate one ``/api/v1`` call against this shard's
                 service (optionally waiting for replica freshness and
                 returning the query's span tree for grafting)
``sql``          a raw read against the replica, served iff fresh
                 (stale → a marker the coordinator turns into a
                 primary forward — never a stale answer)
``multi_query``  the scatter-gather leg: run one query as each of N
                 local users through the session pool
``usernames``    this shard's registered users (scatter merge)
``stats``        pool/replica/user counters
``metrics``      this shard's telemetry registry (per-shard labels are
                 applied coordinator-side)
``shutdown``     stop accepting and exit the serve loop
"""

from __future__ import annotations

import importlib
import socket
import threading
from dataclasses import dataclass
from typing import Any

from ..crosse.platform import CrossePlatform
from ..federation.rest import CrosseRestService, error_payload
from .errors import ClusterError, ReplicaStaleError, ShardUnavailableError
from .protocol import listen_socket, recv_message, send_message
from .replica import ReadReplica


@dataclass
class ShardRuntime:
    """What a builder hands the server: the platform slice + replica."""

    platform: CrossePlatform
    replica: ReadReplica | None = None


def resolve_builder(spec: str):
    """Import a ``"module:function"`` builder spec.

    Builders are addressed by name (not pickled) so spawned workers can
    re-import them — the function must live in an importable module.
    """
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ClusterError(
            f"builder spec must look like 'module:function', got {spec!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ClusterError(
            f"module {module_name!r} has no attribute {attr!r}") from None


class ShardServer:
    """Serves one shard's RPC endpoint (usable in-process or spawned)."""

    def __init__(self, shard_id: int, address: dict,
                 runtime: ShardRuntime, *, pool_capacity: int = 8,
                 freshness_timeout_s: float = 5.0) -> None:
        self.shard_id = shard_id
        self.address = address
        self.runtime = runtime
        self.service = CrosseRestService(runtime.platform,
                                         pool_capacity=pool_capacity)
        self.freshness_timeout_s = freshness_timeout_s
        self.requests_served = 0
        self._listener: socket.socket | None = None
        self._stop = threading.Event()

    # -- lifecycle -------------------------------------------------------------

    def bind(self) -> None:
        self._listener = listen_socket(self.address)
        self._listener.settimeout(0.5)   # poll the stop flag

    def serve_forever(self) -> None:
        if self._listener is None:
            self.bind()
        while not self._stop.is_set():
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break                    # listener closed under us
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"shard-{self.shard_id}-conn", daemon=True)
            thread.start()
        self._close_listener()
        self.service.close()

    def start_background(self) -> threading.Thread:
        """Bind now, serve in a daemon thread (in-process clusters)."""
        self.bind()
        thread = threading.Thread(target=self.serve_forever,
                                  name=f"shard-{self.shard_id}",
                                  daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        self._stop.set()
        self._close_listener()

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass

    # -- connection loop -------------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(None)
            while not self._stop.is_set():
                try:
                    request = recv_message(conn)
                except ShardUnavailableError:
                    break                # client went away
                if self._stop.is_set():
                    break   # shut down while blocked in recv: a kept-
                    # alive connection must not serve one more request
                try:
                    response = self._handle(request)
                except Exception as exc:
                    response = {"ok": False,
                                "error": {"code": type(exc).__name__,
                                          "message": str(exc)}}
                send_message(conn, response)
                if request.get("op") == "shutdown":
                    self.shutdown()
                    break
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # -- op handlers -----------------------------------------------------------

    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        self.requests_served += 1
        if op == "ping":
            return {"ok": True, "shard": self.shard_id}
        if op == "rest":
            return self._handle_rest(request)
        if op == "sql":
            return self._handle_sql(request)
        if op == "multi_query":
            return self._handle_multi_query(request)
        if op == "usernames":
            return {"ok": True,
                    "usernames": self.runtime.platform.users.usernames()}
        if op == "stats":
            return {"ok": True, "stats": self._stats()}
        if op == "metrics":
            telemetry = getattr(self.runtime.platform, "telemetry", None)
            metrics = (telemetry.metrics.to_dict()
                       if telemetry is not None else None)
            return {"ok": True, "metrics": metrics}
        if op == "shutdown":
            return {"ok": True, "shard": self.shard_id}
        raise ClusterError(f"unknown op {op!r}")

    def _wait_fresh(self, expect: dict | None) -> bool:
        replica = self.runtime.replica
        if replica is None or not expect:
            return True
        return replica.wait_fresh(expect,
                                  timeout_s=self.freshness_timeout_s)

    def _handle_rest(self, request: dict) -> dict:
        expect = request.get("expect")
        if not self._wait_fresh(expect):
            # The coordinator decides what to do with a stale shard
            # (retry, forward, or surface the 503) — the worker only
            # refuses to serve it.
            replica = self.runtime.replica
            return {"ok": True, "status": 503, "stale": True,
                    "body": error_payload(
                        "replica_stale",
                        f"shard {self.shard_id} replica did not reach "
                        f"the expected generation within "
                        f"{self.freshness_timeout_s}s",
                        {"have": replica.generations(),
                         "want": expect})}
        response = self.service.request(request.get("method", "GET"),
                                        request["path"],
                                        request.get("body"))
        out = {"ok": True, "status": response.status,
               "body": response.payload}
        if request.get("trace"):
            trace = self._trace_for(response.payload)
            if trace is not None:
                out["trace"] = trace
        return out

    def _trace_for(self, payload: Any) -> dict | None:
        telemetry = getattr(self.runtime.platform, "telemetry", None)
        if telemetry is None or not isinstance(payload, dict):
            return None
        query_id = payload.get("query_id")
        if not query_id:
            return None
        root = telemetry.tracer.trace(query_id)
        return root.to_dict() if root is not None else None

    def _handle_sql(self, request: dict) -> dict:
        replica = self.runtime.replica
        if replica is None:
            raise ClusterError(
                f"shard {self.shard_id} hosts no read replica")
        try:
            result = replica.query(request["sql"],
                                   request.get("expect_db"))
        except ReplicaStaleError as exc:
            return {"ok": True, "stale": True,
                    "have": exc.have, "want": exc.want}
        return {"ok": True, "stale": False,
                "columns": result.columns,
                "rows": [list(row) for row in result.rows]}

    def _handle_multi_query(self, request: dict) -> dict:
        self._wait_fresh(request.get("expect"))
        query = request["query"]
        params = request.get("params")
        results: dict[str, dict] = {}
        for username in request.get("usernames", ()):
            try:
                with self.service.pool.checkout(username) as session:
                    cursor = session.stream(query, params)
                    columns = list(cursor.columns)
                    rows = [list(row) for row in cursor.fetchall()]
                results[username] = {"columns": columns, "rows": rows}
            except Exception as exc:
                results[username] = {
                    "error": str(exc) or type(exc).__name__}
        return {"ok": True, "results": results}

    def _stats(self) -> dict:
        platform = self.runtime.platform
        replica = self.runtime.replica
        stats = {
            "shard": self.shard_id,
            "users": len(platform.users.usernames()),
            "pool": self.service.pool.stats(),
            "requests_served": self.requests_served,
        }
        if replica is not None:
            stats["replica"] = {
                "generations": replica.generations(),
                "local_reads": replica.local_reads,
                "forwarded_reads": replica.forwarded_reads,
                "frames_applied": replica.tailer.frames_applied,
            }
        return stats


def run_worker(spec: dict) -> None:
    """Spawned-process entry point: build the slice, serve until told
    to stop.  *spec* must be JSON-able (it crosses the spawn boundary):

    ``shard_id``, ``n_shards``, ``address``, ``builder``
    (``"module:function"``), ``builder_args`` (JSON-able kwargs),
    ``pool_capacity``, ``freshness_timeout_s``.
    """
    builder = resolve_builder(spec["builder"])
    runtime = builder(spec["shard_id"], spec["n_shards"],
                      **(spec.get("builder_args") or {}))
    if isinstance(runtime, CrossePlatform):
        runtime = ShardRuntime(platform=runtime)
    server = ShardServer(
        spec["shard_id"], spec["address"], runtime,
        pool_capacity=spec.get("pool_capacity", 8),
        freshness_timeout_s=spec.get("freshness_timeout_s", 5.0))
    server.bind()
    server.serve_forever()
