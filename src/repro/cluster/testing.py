"""Spawn-importable shard builders for tests and benchmarks.

``start_cluster`` ships builders across the process boundary **by
name** (``"repro.cluster.testing:build_shard"``), so anything a test or
benchmark wants a worker to run must live in an importable module —
this one.  The builders here cover the two deployment shapes the suite
exercises:

* :func:`build_shard` — a worker with a :class:`ReadReplica` tailing a
  primary's durability directory, plus a platform slice over the
  replica's database (the production-shaped topology);
* :func:`build_platform_shard` — a self-contained platform with its own
  empty databank (no replica; for routing/scatter tests that don't
  involve the shared store).

``latency_s`` injects a fixed per-statement *simulated source latency*
(a GIL-releasing sleep inside ``stream_ast``/``query``), the same
technique the federation benchmarks use to model remote I/O: it makes
pool slots and processes the scarce resource rather than this
machine's CPU count.
"""

from __future__ import annotations

import time

from ..crosse.platform import CrossePlatform
from ..relational.engine import Database
from .replica import ReadReplica
from .worker import ShardRuntime


class LatencyDatabase(Database):
    """A databank whose reads take a fixed simulated I/O time."""

    latency_s = 0.0

    def query(self, sql: str):
        if self.latency_s:
            time.sleep(self.latency_s)
        return super().query(sql)

    def stream_ast(self, query):
        if self.latency_s:
            time.sleep(self.latency_s)
        return super().stream_ast(query)


def _make_database(name: str, latency_s: float) -> Database:
    if latency_s:
        database = LatencyDatabase(name=name)
        database.latency_s = latency_s
        return database
    return Database(name=name)


def seed_readings(database: Database, rows: int = 50) -> None:
    """The deterministic table every cluster test/bench queries."""
    database.execute(
        "CREATE TABLE readings (id INTEGER, sensor TEXT, value INTEGER)")
    for index in range(rows):
        database.execute(
            f"INSERT INTO readings VALUES ({index}, "
            f"'sensor-{index % 5}', {index * 7 % 101})")


def build_shard(shard_id: int, n_shards: int, *, directory: str,
                database_name: str = "main",
                store_names: tuple | list = (),
                telemetry: bool = False,
                latency_s: float = 0.0) -> ShardRuntime:
    """A worker slice with a WAL-tailing replica of the shared stores."""
    replica = ReadReplica(
        directory, database_name=database_name,
        store_names=tuple(store_names),
        database_factory=lambda name: _make_database(name, latency_s))
    replica.refresh()
    platform = CrossePlatform(replica.database,
                              telemetry=True if telemetry else None)
    if telemetry:
        replica.attach_telemetry(platform.telemetry)
    return ShardRuntime(platform=platform, replica=replica)


def build_platform_shard(shard_id: int, n_shards: int, *,
                         telemetry: bool = False,
                         latency_s: float = 0.0,
                         seed_rows: int = 0) -> ShardRuntime:
    """A self-contained shard: own databank, no replica."""
    database = _make_database(f"shard-{shard_id}", latency_s)
    if seed_rows:
        seed_readings(database, seed_rows)
    platform = CrossePlatform(database,
                              telemetry=True if telemetry else None)
    return ShardRuntime(platform=platform)
