"""Read replicas kept fresh by tailing the primary's WAL.

The durability manager (PR 6) already journals every committed mutation
of the shared relational databank / triple store as checksummed frames
in numbered WAL segments, with compacted snapshots at epoch boundaries.
A :class:`WalTailer` reads that same directory **read-only** from
another process: bootstrap from the newest valid snapshot, then poll
the segment tail, applying frames through the exact replay functions
recovery uses (:func:`~repro.durability.apply_database_record` /
:func:`~repro.durability.apply_store_record`) and pinning the replica's
generation stamps to the primary's recorded values.

Freshness is the whole contract: a :class:`ReadReplica` serves a read
**iff** its ``Database.generation`` / ``TripleStore.generation`` stamp
has caught up with the generation the caller observed on the primary —
otherwise it forwards to the primary (when a forward target is wired)
or refuses with :class:`~repro.cluster.ReplicaStaleError`.  It never
silently serves stale data.

Torn tails are expected (the tailer races the primary's group-commit
writes): the tailer simply keeps its offset at the last valid frame
boundary and re-reads once more bytes land.  A per-component sequence
hole, by contrast, means retained history is gone (pruned or corrupt
segment) — the tailer raises :class:`~repro.cluster.ReplicaGapError`
instead of fabricating state.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable

from ..durability import snapshot as snapshot_io
from ..durability.errors import SnapshotError
from ..durability.manager import apply_database_record, apply_store_record
from ..durability.wal import WAL_HEADER_COMPONENT, iter_frames
from ..relational.engine import Database
from ..relational.result import ResultSet
from ..rdf.store import TripleStore
from .errors import ReplicaGapError, ReplicaStaleError


def _list_numbered(directory: str, prefix: str,
                   suffix: str) -> list[tuple[int, str]]:
    entries: list[tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        middle = name[len(prefix):len(name) - len(suffix)]
        if middle.isdigit():
            entries.append((int(middle), os.path.join(directory, name)))
    entries.sort()
    return entries


class WalTailer:
    """Applies a primary's WAL history to local component copies.

    Strictly read-only on the durability directory: it never truncates,
    prunes or rewrites anything — those are the primary's recovery
    privileges.
    """

    def __init__(self, directory: str, *, database: Database | None = None,
                 stores: dict[str, TripleStore] | None = None,
                 foreign_sources: Any = None) -> None:
        self.directory = directory
        self._lock = threading.Lock()
        self._components: dict[str, tuple[str, Any]] = {}
        if database is not None:
            self._components[f"db:{database.name}"] = ("database", database)
        for name, store in (stores or {}).items():
            self._components[f"store:{name}"] = ("store", store)
        self._foreign_sources = foreign_sources
        #: Per-component replay cursor: next expected seq + last
        #: recorded generation (the value stamps are pinned to).
        self._progress = {name: {"next": 1, "gen": 0}
                          for name in self._components}
        self._segment: int | None = None   # current segment number
        self._offset = 0                   # valid bytes consumed of it
        self._bootstrapped = False
        self.frames_applied = 0
        self.frames_skipped = 0
        self.warnings: list[str] = []

    # -- bootstrap -------------------------------------------------------------

    def _bootstrap_locked(self) -> None:
        """Load the newest valid snapshot (if any) and position the
        tail at the earliest retained segment."""
        snaps = _list_numbered(self.directory, "snap-", ".snap")
        wals = _list_numbered(self.directory, "wal-", ".log")
        if not snaps and not wals:
            return                       # primary hasn't written yet
        payload = None
        for _num, path in reversed(snaps):
            try:
                payload = snapshot_io.load_snapshot_file(path)
            except SnapshotError as exc:
                # Same fallback recovery uses: the previous epoch's
                # segment tail is retained exactly for this case.
                self.warnings.append(str(exc))
                continue
            break
        if payload is not None:
            for name, component in payload.get("components", {}).items():
                entry = self._components.get(name)
                if entry is None:
                    continue
                kind, obj = entry
                if kind == "database":
                    snapshot_io.restore_database(obj, component,
                                                 self._foreign_sources)
                else:
                    snapshot_io.restore_store(obj, component)
                state = self._progress[name]
                state["next"] = component.get("seq", 0) + 1
                state["gen"] = component.get("generation", 0)
        # Older retained segments only hold frames below each cut (the
        # seq filter skips them), so starting at the earliest is safe.
        self._segment = wals[0][0] if wals else None
        self._offset = 0
        self._bootstrapped = True
        self._pin_generations_locked()

    # -- polling ---------------------------------------------------------------

    def poll(self) -> int:
        """Apply every newly visible frame; returns how many."""
        with self._lock:
            if not self._bootstrapped:
                self._bootstrap_locked()
                if not self._bootstrapped:
                    return 0
            applied = 0
            while True:
                if self._segment is None:
                    wals = _list_numbered(self.directory, "wal-", ".log")
                    if not wals:
                        break
                    self._segment = wals[0][0]
                    self._offset = 0
                path = os.path.join(self.directory,
                                    f"wal-{self._segment:06d}.log")
                # Snapshot the set of *later* segments before reading:
                # the primary closes a segment before creating its
                # successor, so "a successor existed before this read"
                # proves the read reached the segment's true end.
                later = [num for num, _path in
                         _list_numbered(self.directory, "wal-", ".log")
                         if num > self._segment]
                exists = os.path.exists(path)
                if exists:
                    with open(path, "rb") as handle:
                        handle.seek(self._offset)
                        data = handle.read()
                    applied += self._apply_chunk_locked(data)
                if not later:
                    break
                if exists and self._offset < os.path.getsize(path):
                    # Torn bytes inside a closed segment: the primary
                    # crashed mid-write and will truncate them on its
                    # own recovery; a seq hole will surface if any
                    # attached component actually lost records.
                    self.warnings.append(
                        f"torn tail inside closed segment "
                        f"wal-{self._segment:06d}.log")
                self._segment = min(later)
                self._offset = 0
            if applied:
                self._pin_generations_locked()
            return applied

    def _apply_chunk_locked(self, data: bytes) -> int:
        applied = 0
        base = self._offset          # chunk frame offsets are relative
        for payload, end in iter_frames(data):
            self._offset = base + end
            name = payload.get("c")
            if name == WAL_HEADER_COMPONENT:
                header = payload.get("d", {}).get("components", {})
                for comp_name, info in header.items():
                    state = self._progress.get(comp_name)
                    if state is not None:
                        state["gen"] = max(state["gen"],
                                           info.get("generation", 0))
            else:
                state = self._progress.get(name)
                if state is None:
                    self.frames_skipped += 1
                else:
                    seq = payload.get("q", 0)
                    if seq < state["next"]:
                        self.frames_skipped += 1
                    elif seq > state["next"]:
                        raise ReplicaGapError(
                            f"WAL gap for {name!r}: expected record "
                            f"{state['next']}, found {seq}; rebuild "
                            f"this replica from a snapshot")
                    else:
                        kind, obj = self._components[name]
                        try:
                            if kind == "database":
                                apply_database_record(
                                    obj, payload.get("t"),
                                    payload.get("d"),
                                    self._foreign_sources)
                            else:
                                apply_store_record(obj, payload.get("t"),
                                                   payload.get("d"))
                        except Exception as exc:
                            # Mirror recovery: warn and move the cursor
                            # on, rather than wedging the replica on a
                            # frame that will never apply differently.
                            self.warnings.append(
                                f"replay of {name}#{seq} "
                                f"({payload.get('t')}) failed: {exc}")
                        state["next"] = seq + 1
                        state["gen"] = max(state["gen"],
                                           payload.get("g", 0))
                        applied += 1
                        self.frames_applied += 1
        return applied

    def _pin_generations_locked(self) -> None:
        # Exact pins, mirroring recovery: replayed batches bump the
        # counters through the normal mutation paths, and equality with
        # the primary's recorded stamp is the freshness predicate.
        for name, (kind, obj) in self._components.items():
            generation = self._progress[name]["gen"]
            if obj.generation != generation:
                obj.pin_generation(generation)

    def progress(self) -> dict[str, dict]:
        with self._lock:
            return {name: dict(state)
                    for name, state in self._progress.items()}


class ReadReplica:
    """A queryable, generation-fresh copy of the shared stores.

    ``query(sql, expected_generation=...)`` refreshes from the WAL and
    serves locally iff the replica has caught up with the generation
    the caller observed on the primary; otherwise it forwards (when a
    ``forward`` callable is wired) or raises — never a stale answer.
    """

    def __init__(self, directory: str, *, database_name: str = "main",
                 store_names: tuple[str, ...] = (),
                 database_factory: Callable[[str], Database] | None = None,
                 forward: Callable[[str], ResultSet] | None = None,
                 foreign_sources: Any = None) -> None:
        factory = database_factory or (lambda name: Database(name=name))
        self.database = factory(database_name)
        self.stores = {name: TripleStore() for name in store_names}
        self.tailer = WalTailer(directory, database=self.database,
                                stores=self.stores,
                                foreign_sources=foreign_sources)
        self.forward = forward
        self.local_reads = 0
        self.forwarded_reads = 0
        self.telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        if telemetry is None:
            return
        metrics = telemetry.metrics
        self._tm_reads = metrics.counter(
            "repro_replica_reads_total",
            "Replica reads by outcome (local vs forwarded to primary)",
            labels=("mode",))
        self._tm_generation = metrics.gauge(
            "repro_replica_generation",
            "Relational generation this replica has replayed up to")

    # -- freshness -------------------------------------------------------------

    def refresh(self) -> int:
        """One tailer poll; returns the number of frames applied."""
        applied = self.tailer.poll()
        if self.telemetry is not None:
            self._tm_generation.set(self.database.generation)
        return applied

    def generations(self) -> dict:
        """The stamps a coordinator compares against the primary's."""
        return {"db": self.database.generation,
                "stores": {name: store.generation
                           for name, store in self.stores.items()}}

    def is_fresh(self, expect: dict | None) -> bool:
        """True when every stamp has reached the expected one.

        ``>=`` rather than ``==``: the tailer only replays primary
        history, so a stamp past the captured expectation means the
        primary has moved *further* — the replica still reflects
        everything the caller could have observed when it captured
        ``expect``.
        """
        if not expect:
            return True
        if self.database.generation < expect.get("db", 0):
            return False
        for name, generation in (expect.get("stores") or {}).items():
            store = self.stores.get(name)
            if store is None or store.generation < generation:
                return False
        return True

    def wait_fresh(self, expect: dict | None, timeout_s: float = 5.0,
                   interval_s: float = 0.002) -> bool:
        """Poll the WAL until fresh w.r.t. *expect* or out of time."""
        deadline = time.monotonic() + timeout_s
        while True:
            self.refresh()
            if self.is_fresh(expect):
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(interval_s)

    # -- reads -----------------------------------------------------------------

    def query(self, sql: str,
              expected_generation: int | None = None) -> ResultSet:
        """Serve *sql* locally iff fresh, else forward — never stale."""
        self.refresh()
        if (expected_generation is None
                or self.database.generation >= expected_generation):
            self.local_reads += 1
            if self.telemetry is not None:
                self._tm_reads.labels("local").inc()
            return self.database.query(sql)
        if self.forward is not None:
            self.forwarded_reads += 1
            if self.telemetry is not None:
                self._tm_reads.labels("forwarded").inc()
            return self.forward(sql)
        raise ReplicaStaleError(
            f"replica at generation {self.database.generation} cannot "
            f"serve a read expecting generation {expected_generation} "
            f"and has no forward target",
            have=self.database.generation, want=expected_generation)
