"""Spinning up a multi-process cluster on one machine.

:func:`start_cluster` spawns N worker processes (one
:class:`~repro.cluster.ShardServer` each, built by an importable
``module:function`` builder so the spec survives the ``spawn`` start
method), waits for every shard to answer a ping, and hands back a
:class:`Cluster` wrapping a ready :class:`ClusterCoordinator`.

Workers default to AF_UNIX sockets under a fresh ``tempfile.mkdtemp``
directory — unix socket paths are capped at ~100 bytes, so the socket
directory is deliberately *not* derived from the (possibly deep) test
or data directory.
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
from typing import Any

from .coordinator import ClusterCoordinator, ClusterOptions
from .hashring import HashRing
from .protocol import unix_address
from .worker import run_worker


class Cluster:
    """A running fleet: worker processes + the coordinator over them."""

    def __init__(self, coordinator: ClusterCoordinator,
                 processes: list, socket_dir: str | None) -> None:
        self.coordinator = coordinator
        self.processes = processes
        self._socket_dir = socket_dir

    def connect(self):
        return self.coordinator.connect()

    def request(self, method: str, path: str, body: dict | None = None):
        return self.coordinator.request(method, path, body)

    def close(self, timeout_s: float = 10.0) -> None:
        """Graceful stop: shutdown RPCs, join, then terminate stragglers."""
        self.coordinator.shutdown_shards()
        self.coordinator.close()
        for process in self.processes:
            process.join(timeout=timeout_s)
        for process in self.processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        if self._socket_dir is not None:
            shutil.rmtree(self._socket_dir, ignore_errors=True)

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def start_cluster(n_shards: int, builder: str, *,
                  builder_args: dict | None = None,
                  primary=None, primary_stores=None, durability=None,
                  options: ClusterOptions | None = None,
                  telemetry=None, pool_capacity: int = 8,
                  socket_dir: str | None = None,
                  start_timeout_s: float = 60.0) -> Cluster:
    """Spawn *n_shards* workers and return a ready :class:`Cluster`.

    *builder* is a ``"module:function"`` spec resolved **inside** each
    worker; it is called as ``builder(shard_id, n_shards,
    **builder_args)`` and must return a
    :class:`~repro.cluster.ShardRuntime` (or a bare platform).
    *builder_args* must be JSON-able — it crosses the spawn boundary.
    """
    owns_dir = socket_dir is None
    if owns_dir:
        socket_dir = tempfile.mkdtemp(prefix="repro-cluster-")
    opts = options or ClusterOptions()
    addresses = [unix_address(f"{socket_dir}/shard-{shard}.sock")
                 for shard in range(n_shards)]
    # ``spawn`` rather than the platform default: workers must build
    # their state from the spec, not inherit half-initialised locks and
    # sockets through fork.
    ctx = multiprocessing.get_context("spawn")
    processes = []
    for shard_id, address in enumerate(addresses):
        spec = {
            "shard_id": shard_id,
            "n_shards": n_shards,
            "address": address,
            "builder": builder,
            "builder_args": builder_args or {},
            "pool_capacity": pool_capacity,
            "freshness_timeout_s": opts.freshness_timeout_s,
        }
        process = ctx.Process(target=run_worker, args=(spec,),
                              name=f"repro-shard-{shard_id}",
                              daemon=True)
        process.start()
        processes.append(process)
    coordinator = ClusterCoordinator(
        addresses, primary=primary, primary_stores=primary_stores,
        durability=durability, ring=HashRing(n_shards), options=opts,
        telemetry=telemetry)
    cluster = Cluster(coordinator, processes,
                      socket_dir if owns_dir else None)
    try:
        coordinator.ping_all(timeout_s=start_timeout_s)
    except Exception:
        cluster.close()
        raise
    return cluster


def make_worker_spec(shard_id: int, n_shards: int, address: dict,
                     builder: str, builder_args: dict | None = None,
                     pool_capacity: int = 8,
                     freshness_timeout_s: float = 5.0) -> dict[str, Any]:
    """A worker spec for callers managing processes themselves."""
    return {"shard_id": shard_id, "n_shards": n_shards,
            "address": address, "builder": builder,
            "builder_args": builder_args or {},
            "pool_capacity": pool_capacity,
            "freshness_timeout_s": freshness_timeout_s}
