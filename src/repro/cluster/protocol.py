"""The cluster's wire protocol: length-prefixed JSON over sockets.

One message is a 4-byte big-endian length followed by a JSON body.  The
body is encoded with the durability layer's :func:`~repro.durability
.records.encode_json` codec, so RDF terms (IRIs, typed literals, blank
nodes) survive the process boundary exactly — the same property the WAL
relies on.

Addresses are plain dicts (they travel inside ``multiprocessing`` spawn
arguments and JSON payloads):

* ``{"kind": "unix", "path": "/tmp/.../shard-0.sock"}`` — the default;
  AF_UNIX paths are capped at ~100 bytes, so socket directories come
  from ``tempfile.mkdtemp`` rather than deep test directories.
* ``{"kind": "tcp", "host": "127.0.0.1", "port": 7401}`` — for hosts
  without AF_UNIX or for spreading shards across machines.
"""

from __future__ import annotations

import os
import socket
import struct
from typing import Any

from ..durability.records import decode_json, encode_json
from .errors import ProtocolError, ShardUnavailableError

HEADER = struct.Struct(">I")

#: Sanity cap mirroring the WAL's frame cap: a corrupted length prefix
#: must not make the reader attempt a multi-gigabyte allocation.
MAX_MESSAGE_BYTES = 1 << 28


def unix_address(path: str) -> dict:
    return {"kind": "unix", "path": path}


def tcp_address(host: str, port: int) -> dict:
    return {"kind": "tcp", "host": host, "port": port}


def format_address(address: dict) -> str:
    if address.get("kind") == "unix":
        return f"unix:{address['path']}"
    return f"tcp:{address.get('host')}:{address.get('port')}"


def listen_socket(address: dict, backlog: int = 64) -> socket.socket:
    """Bind + listen on *address*; unlinks a stale unix socket path."""
    kind = address.get("kind")
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            if os.path.exists(address["path"]):
                os.unlink(address["path"])
            sock.bind(address["path"])
        except OSError:
            sock.close()
            raise
    elif kind == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((address["host"], address["port"]))
        except OSError:
            sock.close()
            raise
    else:
        raise ProtocolError(f"unknown address kind {kind!r}")
    sock.listen(backlog)
    return sock


def connect_socket(address: dict,
                   timeout: float | None = 10.0) -> socket.socket:
    """A connected client socket for *address*."""
    kind = address.get("kind")
    try:
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(address["path"])
        elif kind == "tcp":
            sock = socket.create_connection(
                (address["host"], address["port"]), timeout=timeout)
        else:
            raise ProtocolError(f"unknown address kind {kind!r}")
    except OSError as exc:
        raise ShardUnavailableError(
            f"cannot connect to {format_address(address)}: {exc}") from exc
    return sock


def send_message(sock: socket.socket, payload: Any) -> None:
    body = encode_json(payload)
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the frame cap")
    try:
        sock.sendall(HEADER.pack(len(body)) + body)
    except OSError as exc:
        raise ShardUnavailableError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError as exc:
            raise ShardUnavailableError(f"recv failed: {exc}") from exc
        if not chunk:
            raise ShardUnavailableError(
                "peer closed the connection mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Any:
    (length,) = HEADER.unpack(_recv_exact(sock, HEADER.size))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"incoming message claims {length} bytes (cap "
            f"{MAX_MESSAGE_BYTES}); stream is corrupt")
    return decode_json(_recv_exact(sock, length))
