"""The shard map: consistent hashing of user ids onto shards.

A classic hash ring with virtual nodes.  Hashes come from SHA-1 (not
``hash()``): Python string hashing is salted per process, and the
coordinator, every worker, and any external client must all agree on
who owns a user without talking to each other.

Consistent (rather than modulo) placement means growing the ring from
N to N+1 shards relocates ~1/(N+1) of the users instead of nearly all
of them — the property that makes later resharding incremental.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable

#: Virtual nodes per shard: enough to keep the ring balanced within a
#: few percent for small shard counts, cheap enough to rebuild eagerly.
DEFAULT_VNODES = 64


def _hash64(key: str) -> int:
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Deterministic user → shard placement shared by every process."""

    def __init__(self, n_shards: int | None = None, *,
                 shard_ids: Iterable[int] | None = None,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if shard_ids is None:
            if n_shards is None or n_shards < 1:
                raise ValueError("need n_shards >= 1 or explicit shard_ids")
            shard_ids = range(n_shards)
        self.shard_ids = sorted(set(shard_ids))
        if not self.shard_ids:
            raise ValueError("the ring needs at least one shard")
        self.vnodes = max(1, vnodes)
        points: list[tuple[int, int]] = []
        for shard_id in self.shard_ids:
            for vnode in range(self.vnodes):
                points.append((_hash64(f"shard-{shard_id}#{vnode}"),
                               shard_id))
        points.sort()
        self._hashes = [point for point, _shard in points]
        self._owners = [shard for _point, shard in points]

    def __len__(self) -> int:
        return len(self.shard_ids)

    def shard_for(self, key: str) -> int:
        """The shard owning *key* (wraps past the last ring point)."""
        index = bisect.bisect_right(self._hashes, _hash64(key))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def distribution(self, keys: Iterable[str]) -> Counter:
        """How *keys* spread over shards (balance diagnostics)."""
        spread: Counter = Counter({shard: 0 for shard in self.shard_ids})
        for key in keys:
            spread[self.shard_for(key)] += 1
        return spread
