"""The Semantic Query Parser (SQP) of Fig. 6.

Given a SESQL query, the SQP identifies its two subcomponents — the SQL
query to be enriched and the enrichment specification — producing an
:class:`~repro.core.ast.EnrichedQuery` that carries the cleaned SQL, its
AST, the parsed enrichment syntax tree and the tagged conditions.
"""

from __future__ import annotations

from ..relational import ast as sql_ast
from ..relational.parser import parse_sql
from .ast import EnrichedQuery, ReplaceConstant, ReplaceVariable
from .condtags import scan_condition_tags
from .errors import EnrichmentError, SesqlSyntaxError
from .parser import parse_enrichments, split_sesql


class SemanticQueryParser:
    """Splits, cleans and parses SESQL text."""

    def parse(self, text: str) -> EnrichedQuery:
        sql_part, enrich_part = split_sesql(text)
        scan = scan_condition_tags(sql_part)
        try:
            statement = parse_sql(scan.clean_text)
        except Exception as exc:
            raise SesqlSyntaxError(
                f"SQL part of SESQL query does not parse: {exc}") from exc
        if not isinstance(statement, sql_ast.SelectQuery):
            raise SesqlSyntaxError(
                "the SQL part of a SESQL query must be a SELECT")
        enrichments = []
        if enrich_part is not None:
            enrichments = parse_enrichments(
                enrich_part, set(scan.conditions))
        enriched = EnrichedQuery(
            sql_text=scan.clean_text.strip(),
            query=statement,
            enrichments=enrichments,
            conditions=scan.conditions,
        )
        self._validate(enriched)
        return enriched

    @staticmethod
    def _validate(enriched: EnrichedQuery) -> None:
        for enrichment in enriched.enrichments:
            if isinstance(enrichment, (ReplaceConstant, ReplaceVariable)):
                if enrichment.cond not in enriched.conditions:
                    known = ", ".join(sorted(enriched.conditions)) or "none"
                    raise EnrichmentError(
                        f"{enrichment.kind} references unknown condition "
                        f"{enrichment.cond!r} (tagged: {known})")
        if enriched.conditions and enriched.query.is_compound:
            raise EnrichmentError(
                "tagged conditions are not supported in compound "
                "(UNION/INTERSECT/EXCEPT) queries")


def parse_sesql(text: str) -> EnrichedQuery:
    """Module-level convenience wrapper."""
    return SemanticQueryParser().parse(text)
