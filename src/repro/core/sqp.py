"""The Semantic Query Parser (SQP) of Fig. 6.

Given a SESQL query, the SQP identifies its two subcomponents — the SQL
query to be enriched and the enrichment specification — producing an
:class:`~repro.core.ast.EnrichedQuery` that carries the cleaned SQL, its
AST, the parsed enrichment syntax tree and the tagged conditions.

The module also hosts the prepared-query machinery of the session API
(:mod:`repro.api`): ``expand_placeholders`` turns DB-API-style ``?``
markers into sentinel string literals so the template parses once, and
``bind_parameters`` substitutes typed values directly into a copy of the
parsed AST — values never travel through SQL text, so binding is
injection-safe by construction.
"""

from __future__ import annotations

import copy
import re

from ..relational import ast as sql_ast
from ..relational.render import render_query
from ..relational.parser import parse_sql
from .ast import EnrichedQuery, ReplaceConstant, ReplaceVariable
from .condtags import _skip_string, scan_condition_tags
from .errors import EnrichmentError, ParameterError, SesqlSyntaxError
from .parser import parse_enrichments, split_sesql


class SemanticQueryParser:
    """Splits, cleans and parses SESQL text."""

    def parse(self, text: str) -> EnrichedQuery:
        sql_part, enrich_part = split_sesql(text)
        scan = scan_condition_tags(sql_part)
        try:
            statement = parse_sql(scan.clean_text)
        except Exception as exc:
            raise SesqlSyntaxError(
                f"SQL part of SESQL query does not parse: {exc}") from exc
        if not isinstance(statement, sql_ast.SelectQuery):
            raise SesqlSyntaxError(
                "the SQL part of a SESQL query must be a SELECT")
        enrichments = []
        if enrich_part is not None:
            enrichments = parse_enrichments(
                enrich_part, set(scan.conditions))
        enriched = EnrichedQuery(
            sql_text=scan.clean_text.strip(),
            query=statement,
            enrichments=enrichments,
            conditions=scan.conditions,
        )
        self._validate(enriched)
        return enriched

    @staticmethod
    def _validate(enriched: EnrichedQuery) -> None:
        for enrichment in enriched.enrichments:
            if isinstance(enrichment, (ReplaceConstant, ReplaceVariable)):
                if enrichment.cond not in enriched.conditions:
                    known = ", ".join(sorted(enriched.conditions)) or "none"
                    raise EnrichmentError(
                        f"{enrichment.kind} references unknown condition "
                        f"{enrichment.cond!r} (tagged: {known})")
        if enriched.conditions and enriched.query.is_compound:
            raise EnrichmentError(
                "tagged conditions are not supported in compound "
                "(UNION/INTERSECT/EXCEPT) queries")


def parse_sesql(text: str) -> EnrichedQuery:
    """Module-level convenience wrapper."""
    return SemanticQueryParser().parse(text)


# ---------------------------------------------------------------------------
# Prepared-query support: ``?`` placeholders and typed parameter binding
# ---------------------------------------------------------------------------

#: Sentinel literal standing in for the i-th ``?`` in a prepared template.
_PARAM_SENTINEL = "__sesql_param_{index}__"
_PARAM_RE = re.compile(r"\A__sesql_param_(\d+)__\Z")
_PARAM_PREFIX = "__sesql_param_"

#: Python types a parameter may carry (preserved end to end).
_BINDABLE = (bool, int, float, str)


def expand_placeholders(text: str) -> tuple[str, int]:
    """Replace each ``?`` outside string literals with a sentinel literal.

    Returns the rewritten text and the number of placeholders found.
    The sentinel parses as an ordinary string literal, so the template
    goes through the unchanged SQP/condition-tag pipeline exactly once;
    ``bind_parameters`` later swaps the sentinels for typed values at
    the AST level.

    The sentinel namespace is reserved: query text that already spells
    it out is rejected, so a sentinel literal in a template can only
    ever originate from a ``?`` — user data can never be mistaken for
    a parameter slot.
    """
    if _PARAM_PREFIX in text:
        raise ParameterError(
            f"query text contains the reserved prepared-parameter "
            f"sentinel {_PARAM_PREFIX!r}; use ? placeholders instead")
    pieces: list[str] = []
    position = 0
    count = 0
    while position < len(text):
        char = text[position]
        if char == "'":
            end = _skip_string(text, position)
            pieces.append(text[position:end])
            position = end
            continue
        if char == '"':
            end = text.find('"', position + 1)
            end = len(text) if end < 0 else end + 1
            pieces.append(text[position:end])
            position = end
            continue
        # The lexer strips -- and /* */ comments, so a ? inside one is
        # commentary, not a parameter slot.
        if char == "-" and text.startswith("--", position):
            end = text.find("\n", position)
            end = len(text) if end < 0 else end
            pieces.append(text[position:end])
            position = end
            continue
        if char == "/" and text.startswith("/*", position):
            end = text.find("*/", position + 2)
            end = len(text) if end < 0 else end + 2
            pieces.append(text[position:end])
            position = end
            continue
        if char == "?":
            pieces.append("'" + _PARAM_SENTINEL.format(index=count) + "'")
            count += 1
            position += 1
            continue
        pieces.append(char)
        position += 1
    return "".join(pieces), count


def clone_enriched(enriched: EnrichedQuery) -> EnrichedQuery:
    """A deep copy safe to mutate during one execution.

    The engine rewrites the query AST in place (WHERE enrichment), so a
    cached/prepared template must never be executed directly.
    """
    return copy.deepcopy(enriched)


def _sentinel_literals(enriched: EnrichedQuery):
    """Yield every sentinel Literal in the query AST and condition trees."""
    roots = list(sql_ast.iter_query_nodes(enriched.query))
    for condition in enriched.conditions.values():
        roots.extend(sql_ast.iter_expr_nodes(condition.expr))
    for node in roots:
        if isinstance(node, sql_ast.Literal) and isinstance(node.value, str):
            match = _PARAM_RE.match(node.value)
            if match is not None:
                yield int(match.group(1)), node


def bind_parameters(enriched: EnrichedQuery,
                    params: tuple) -> EnrichedQuery:
    """Substitute typed values for the sentinel placeholders.

    Returns a fresh :class:`EnrichedQuery`; the template is untouched.
    Values are spliced in as ``Literal`` AST nodes — never interpolated
    into SQL text — which preserves Python types (int/float/bool/str/
    None) and is immune to SQL injection.
    """
    for value in params:
        if value is not None and not isinstance(value, _BINDABLE):
            raise ParameterError(
                f"cannot bind parameter of type {type(value).__name__}; "
                "supported: None, bool, int, float, str")
    bound = clone_enriched(enriched)
    consumed: set[int] = set()
    for index, literal in _sentinel_literals(bound):
        if index >= len(params):
            raise ParameterError(
                f"query expects parameter {index + 1}, "
                f"got only {len(params)}")
        literal.value = params[index]
        consumed.add(index)
    if len(consumed) != len(params):
        # A ? that sits outside the SQL part (e.g. inside the ENRICH
        # clause) is counted by expand_placeholders but has no literal
        # to bind — letting it through would leak the sentinel into a
        # SPARQL extraction and silently return wrong results.
        missing = sorted(set(range(len(params))) - consumed)
        slots = ", ".join(str(index + 1) for index in missing)
        raise ParameterError(
            f"parameter(s) {slots} have no binding site; '?' "
            "placeholders are only supported in the SQL part of a "
            "SESQL query, not the ENRICH clause")
    if consumed:
        # Re-render so observability fields show the bound SQL.
        bound.sql_text = render_query(bound.query)
    return bound
