"""Exception hierarchy for the SESQL layer."""

from __future__ import annotations


class SesqlError(Exception):
    """Base class for SESQL processing errors."""


class SesqlSyntaxError(SesqlError):
    """Malformed SESQL text (condition tags or ENRICH clause)."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        location = f" at offset {position}" if position is not None else ""
        super().__init__(f"{message}{location}")


class EnrichmentError(SesqlError):
    """Semantically invalid enrichment (unknown attribute/condition, ...)."""


class MappingError(SesqlError):
    """Resource-mapping failures (bad XML, unconvertible terms)."""


class StoredQueryError(SesqlError):
    """Stored SPARQL query registry failures."""


class ParameterError(SesqlError):
    """Prepared-query parameter binding failures (count/type mismatch)."""
