"""The JoinManager of Fig. 6: combines relational and ontological partials.

For the four SELECT-affecting enrichments, the base SQL result and the
SPARQL extraction are combined into the enriched result.  Two strategies
are provided:

* ``tempdb`` (paper-faithful): both partials are materialised as
  temporary tables in the temporary support database and a *final SQL
  query* — LEFT JOIN shaped — produces the result.  The generated SQL is
  returned for observability.
* ``direct`` (ablation, used by benchmark E6): a Python-side hash join
  that skips materialisation.

Both strategies implement the same semantics: one output row per
(input row, matching object) pair, with NULL/false padding when the
knowledge base has nothing to say (so enrichment never drops rows).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational import ast as sql_ast
from ..relational.indexes import _normalize
from ..relational.render import render_query
from ..relational.result import ResultSet
from .ast import (BoolSchemaExtension, BoolSchemaReplacement, Enrichment,
                  SchemaExtension, SchemaReplacement)
from .errors import EnrichmentError
from .mapping import ResourceMapping
from .sqm import Extraction
from .tempdb import TemporarySupportDatabase

STRATEGIES = ("tempdb", "direct")


@dataclass
class CombineOutcome:
    result: ResultSet
    final_sql: str | None  # None for the direct strategy


def clean_name(raw: str) -> str:
    """Derive a result-column name from a property/concept argument."""
    for separator in ("#", "/", ":"):
        if separator in raw:
            raw = raw.rsplit(separator, 1)[1]
    return raw or "enriched"


def find_attr_index(columns: list[str], attr: str) -> int:
    """Locate the enrichment attribute in the base result's columns."""
    target = attr.lower()
    matches = [i for i, name in enumerate(columns)
               if name.lower() == target]
    if not matches and "." in target:
        bare = target.rsplit(".", 1)[1]
        matches = [i for i, name in enumerate(columns)
                   if name.lower() == bare]
    if not matches:
        raise EnrichmentError(
            f"enrichment attribute {attr!r} is not in the query result "
            f"(columns: {', '.join(columns)})")
    if len(matches) > 1:
        raise EnrichmentError(
            f"enrichment attribute {attr!r} is ambiguous in the result")
    return matches[0]


def unique_name(existing: list[str], wanted: str) -> str:
    taken = {name.lower() for name in existing}
    if wanted.lower() not in taken:
        return wanted
    suffix = 2
    while f"{wanted}_{suffix}".lower() in taken:
        suffix += 1
    return f"{wanted}_{suffix}"


def output_columns(base_columns: list[str], attr_index: int,
                   new_column: str, replace: bool) -> list[str]:
    """The enriched column list: *new_column* replaces or extends."""
    columns = list(base_columns)
    name = unique_name(columns, new_column)
    if replace:
        columns[attr_index] = name
    else:
        columns.append(name)
    return columns


class PreparedPairCombine:
    """SCHEMAEXTENSION / SCHEMAREPLACEMENT combine state, built once.

    The extraction-side hash buckets are computed at construction and
    ``combine(page)`` applies them to any number of base pages — the
    streaming pipeline folds an enrichment into every page of a cursor
    without rebuilding the mapping table per page.  Row semantics (and
    match order) are identical to the tempdb final-SQL LEFT JOIN.
    """

    def __init__(self, attr: str, new_column: str, replace: bool,
                 pairs: list[tuple]) -> None:
        self.attr = attr
        self.new_column = new_column
        self.replace = replace
        self.buckets: dict[object, list[object]] = {}
        for subject, obj in pairs:
            if subject is None:
                continue
            self.buckets.setdefault(_normalize(subject), []).append(obj)

    def combine(self, base: ResultSet) -> ResultSet:
        attr_index = find_attr_index(base.columns, self.attr)
        rows: list[tuple] = []
        for row in base.rows:
            key = row[attr_index]
            matches = (self.buckets.get(_normalize(key), [None])
                       if key is not None else [None])
            for obj in matches:
                if self.replace:
                    rows.append(row[:attr_index] + (obj,)
                                + row[attr_index + 1:])
                else:
                    rows.append(row + (obj,))
        return ResultSet(output_columns(base.columns, attr_index,
                                        self.new_column, self.replace),
                         rows)


class PreparedFlagCombine:
    """BOOLSCHEMAEXTENSION / -REPLACEMENT combine state, built once."""

    def __init__(self, attr: str, new_column: str, replace: bool,
                 subjects: set) -> None:
        self.attr = attr
        self.new_column = new_column
        self.replace = replace
        self.keys = {_normalize(subject) for subject in subjects
                     if subject is not None}

    def combine(self, base: ResultSet) -> ResultSet:
        attr_index = find_attr_index(base.columns, self.attr)
        rows: list[tuple] = []
        for row in base.rows:
            value = row[attr_index]
            flag = value is not None and _normalize(value) in self.keys
            if self.replace:
                rows.append(row[:attr_index] + (flag,)
                            + row[attr_index + 1:])
            else:
                rows.append(row + (flag,))
        return ResultSet(output_columns(base.columns, attr_index,
                                        self.new_column, self.replace),
                         rows)


class JoinManager:
    """Combines base results with extractions per enrichment clause."""

    def __init__(self, mapping: ResourceMapping,
                 strategy: str = "tempdb") -> None:
        if strategy not in STRATEGIES:
            raise EnrichmentError(f"unknown join strategy {strategy!r}")
        self.mapping = mapping
        self.strategy = strategy

    # -- extraction conversion (the single source of truth) ------------------

    def _pair_values(self, extraction: Extraction) -> list[tuple]:
        return [(self.mapping.to_sql_value(s), self.mapping.to_sql_value(o))
                for s, o in extraction.pairs]

    def _subject_values(self, extraction: Extraction) -> set:
        return {self.mapping.to_sql_value(term)
                for term in extraction.subjects}

    @staticmethod
    def _new_column_for(enrichment: Enrichment) -> str:
        if isinstance(enrichment, (BoolSchemaExtension,
                                   BoolSchemaReplacement)):
            return (f"{clean_name(enrichment.prop)}_"
                    f"{clean_name(enrichment.concept)}")
        return clean_name(enrichment.prop)

    # -- public API ----------------------------------------------------------

    def prepare(self, enrichment: Enrichment, extraction: Extraction):
        """The extraction-side combine state, computed once.

        Returns a prepared combiner whose ``combine(page)`` folds the
        enrichment into any number of base pages — the streaming
        pipeline prepares each enrichment once per cursor instead of
        rebuilding the mapping structures page after page.
        """
        if isinstance(enrichment, (SchemaExtension, SchemaReplacement)):
            return PreparedPairCombine(
                enrichment.attr, self._new_column_for(enrichment),
                isinstance(enrichment, SchemaReplacement),
                self._pair_values(extraction))
        if isinstance(enrichment, (BoolSchemaExtension,
                                   BoolSchemaReplacement)):
            return PreparedFlagCombine(
                enrichment.attr, self._new_column_for(enrichment),
                isinstance(enrichment, BoolSchemaReplacement),
                self._subject_values(extraction))
        raise EnrichmentError(
            f"{enrichment.kind} is not a SELECT-clause enrichment")

    def combine(self, base: ResultSet, enrichment: Enrichment,
                extraction: Extraction) -> CombineOutcome:
        if self.strategy == "direct":
            prepared = self.prepare(enrichment, extraction)
            return CombineOutcome(prepared.combine(base), None)
        new_column = self._new_column_for(enrichment)
        if isinstance(enrichment, (SchemaExtension, SchemaReplacement)):
            return self._tempdb_pairs(
                base, find_attr_index(base.columns, enrichment.attr),
                self._pair_values(extraction), new_column,
                isinstance(enrichment, SchemaReplacement))
        if isinstance(enrichment, (BoolSchemaExtension,
                                   BoolSchemaReplacement)):
            return self._tempdb_flags(
                base, enrichment.attr, self._subject_values(extraction),
                new_column, isinstance(enrichment, BoolSchemaReplacement))
        raise EnrichmentError(
            f"{enrichment.kind} is not a SELECT-clause enrichment")

    # -- tempdb strategy (paper-faithful final SQL) ------------------------------

    def _tempdb_pairs(self, base: ResultSet, attr_index: int,
                      pairs: list[tuple], new_column: str,
                      replace: bool) -> CombineOutcome:
        tempdb = TemporarySupportDatabase()
        try:
            t_base = tempdb.store_result(base.columns, base.rows)
            t_map = tempdb.store_pairs(pairs)
            columns = output_columns(base.columns, attr_index,
                                     new_column, replace)
            items: list[sql_ast.SelectItem] = []
            output_index = 0
            for index, internal in enumerate(t_base.internal_columns):
                if replace and index == attr_index:
                    items.append(sql_ast.SelectItem(
                        sql_ast.ColumnRef("c1", "m"),
                        alias=columns[output_index]))
                else:
                    items.append(sql_ast.SelectItem(
                        sql_ast.ColumnRef(internal, "b"),
                        alias=columns[output_index]))
                output_index += 1
            if not replace:
                items.append(sql_ast.SelectItem(
                    sql_ast.ColumnRef("c1", "m"), alias=columns[-1]))
            join = sql_ast.Join(
                "LEFT",
                sql_ast.TableRef(t_base.name, "b"),
                sql_ast.TableRef(t_map.name, "m"),
                sql_ast.BinaryOp(
                    "=",
                    sql_ast.ColumnRef(
                        t_base.internal_columns[attr_index], "b"),
                    sql_ast.ColumnRef("c0", "m")))
            query = sql_ast.SelectQuery(
                core=sql_ast.SelectCore(items=items, from_clause=join))
            final_sql = render_query(query)
            result = tempdb.db.execute_ast(query)
            return CombineOutcome(ResultSet(columns, result.rows), final_sql)
        finally:
            tempdb.cleanup()

    # -- boolean enrichments -----------------------------------------------------------

    def _tempdb_flags(self, base: ResultSet, attr: str,
                      subjects: set, new_column: str,
                      replace: bool) -> CombineOutcome:
        attr_index = find_attr_index(base.columns, attr)
        tempdb = TemporarySupportDatabase()
        try:
            t_base = tempdb.store_result(base.columns, base.rows)
            t_flag = tempdb.store_values(sorted(
                (s for s in subjects if s is not None),
                key=lambda v: str(v)), hint="flags")
            columns = output_columns(base.columns, attr_index,
                                     new_column, replace)
            flag_expr = sql_ast.IsNull(
                sql_ast.ColumnRef("c0", "m"), negated=True)
            items = []
            output_index = 0
            for index, internal in enumerate(t_base.internal_columns):
                if replace and index == attr_index:
                    items.append(sql_ast.SelectItem(
                        flag_expr, alias=columns[output_index]))
                else:
                    items.append(sql_ast.SelectItem(
                        sql_ast.ColumnRef(internal, "b"),
                        alias=columns[output_index]))
                output_index += 1
            if not replace:
                items.append(sql_ast.SelectItem(flag_expr,
                                                alias=columns[-1]))
            join = sql_ast.Join(
                "LEFT",
                sql_ast.TableRef(t_base.name, "b"),
                sql_ast.TableRef(t_flag.name, "m"),
                sql_ast.BinaryOp(
                    "=",
                    sql_ast.ColumnRef(
                        t_base.internal_columns[attr_index], "b"),
                    sql_ast.ColumnRef("c0", "m")))
            query = sql_ast.SelectQuery(
                core=sql_ast.SelectCore(items=items, from_clause=join))
            final_sql = render_query(query)
            result = tempdb.db.execute_ast(query)
            return CombineOutcome(ResultSet(columns, result.rows), final_sql)
        finally:
            tempdb.cleanup()
