"""The JoinManager of Fig. 6: combines relational and ontological partials.

For the four SELECT-affecting enrichments, the base SQL result and the
SPARQL extraction are combined into the enriched result.  Two strategies
are provided:

* ``tempdb`` (paper-faithful): both partials are materialised as
  temporary tables in the temporary support database and a *final SQL
  query* — LEFT JOIN shaped — produces the result.  The generated SQL is
  returned for observability.
* ``direct`` (ablation, used by benchmark E6): a Python-side hash join
  that skips materialisation.

Both strategies implement the same semantics: one output row per
(input row, matching object) pair, with NULL/false padding when the
knowledge base has nothing to say (so enrichment never drops rows).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational import ast as sql_ast
from ..relational.indexes import _normalize
from ..relational.render import render_query
from ..relational.result import ResultSet
from .ast import (BoolSchemaExtension, BoolSchemaReplacement, Enrichment,
                  SchemaExtension, SchemaReplacement)
from .errors import EnrichmentError
from .mapping import ResourceMapping
from .sqm import Extraction
from .tempdb import TemporarySupportDatabase

STRATEGIES = ("tempdb", "direct")


@dataclass
class CombineOutcome:
    result: ResultSet
    final_sql: str | None  # None for the direct strategy


def clean_name(raw: str) -> str:
    """Derive a result-column name from a property/concept argument."""
    for separator in ("#", "/", ":"):
        if separator in raw:
            raw = raw.rsplit(separator, 1)[1]
    return raw or "enriched"


def find_attr_index(columns: list[str], attr: str) -> int:
    """Locate the enrichment attribute in the base result's columns."""
    target = attr.lower()
    matches = [i for i, name in enumerate(columns)
               if name.lower() == target]
    if not matches and "." in target:
        bare = target.rsplit(".", 1)[1]
        matches = [i for i, name in enumerate(columns)
                   if name.lower() == bare]
    if not matches:
        raise EnrichmentError(
            f"enrichment attribute {attr!r} is not in the query result "
            f"(columns: {', '.join(columns)})")
    if len(matches) > 1:
        raise EnrichmentError(
            f"enrichment attribute {attr!r} is ambiguous in the result")
    return matches[0]


def unique_name(existing: list[str], wanted: str) -> str:
    taken = {name.lower() for name in existing}
    if wanted.lower() not in taken:
        return wanted
    suffix = 2
    while f"{wanted}_{suffix}".lower() in taken:
        suffix += 1
    return f"{wanted}_{suffix}"


class JoinManager:
    """Combines base results with extractions per enrichment clause."""

    def __init__(self, mapping: ResourceMapping,
                 strategy: str = "tempdb") -> None:
        if strategy not in STRATEGIES:
            raise EnrichmentError(f"unknown join strategy {strategy!r}")
        self.mapping = mapping
        self.strategy = strategy

    # -- public API ----------------------------------------------------------

    def combine(self, base: ResultSet, enrichment: Enrichment,
                extraction: Extraction) -> CombineOutcome:
        if isinstance(enrichment, (SchemaExtension, SchemaReplacement)):
            pairs = [(self.mapping.to_sql_value(s),
                      self.mapping.to_sql_value(o))
                     for s, o in extraction.pairs]
            replace = isinstance(enrichment, SchemaReplacement)
            new_column = clean_name(enrichment.prop)
            return self._combine_pairs(base, enrichment.attr, pairs,
                                       new_column, replace)
        if isinstance(enrichment, (BoolSchemaExtension,
                                   BoolSchemaReplacement)):
            subjects = {self.mapping.to_sql_value(term)
                        for term in extraction.subjects}
            replace = isinstance(enrichment, BoolSchemaReplacement)
            new_column = (f"{clean_name(enrichment.prop)}_"
                          f"{clean_name(enrichment.concept)}")
            return self._combine_flags(base, enrichment.attr, subjects,
                                       new_column, replace)
        raise EnrichmentError(
            f"{enrichment.kind} is not a SELECT-clause enrichment")

    # -- pair enrichments (extension / replacement) ------------------------------

    def _combine_pairs(self, base: ResultSet, attr: str,
                       pairs: list[tuple], new_column: str,
                       replace: bool) -> CombineOutcome:
        attr_index = find_attr_index(base.columns, attr)
        if self.strategy == "direct":
            return self._direct_pairs(base, attr_index, pairs,
                                      new_column, replace)
        return self._tempdb_pairs(base, attr_index, pairs,
                                  new_column, replace)

    def _output_columns(self, base: ResultSet, attr_index: int,
                        new_column: str, replace: bool) -> list[str]:
        columns = list(base.columns)
        name = unique_name(columns, new_column)
        if replace:
            columns[attr_index] = name
        else:
            columns.append(name)
        return columns

    def _direct_pairs(self, base: ResultSet, attr_index: int,
                      pairs: list[tuple], new_column: str,
                      replace: bool) -> CombineOutcome:
        buckets: dict[object, list[object]] = {}
        for subject, obj in pairs:
            if subject is None:
                continue
            buckets.setdefault(_normalize(subject), []).append(obj)
        rows: list[tuple] = []
        for row in base.rows:
            key = row[attr_index]
            matches = (buckets.get(_normalize(key), [None])
                       if key is not None else [None])
            for obj in matches:
                if replace:
                    new_row = (row[:attr_index] + (obj,)
                               + row[attr_index + 1:])
                else:
                    new_row = row + (obj,)
                rows.append(new_row)
        columns = self._output_columns(base, attr_index, new_column, replace)
        return CombineOutcome(ResultSet(columns, rows), None)

    def _tempdb_pairs(self, base: ResultSet, attr_index: int,
                      pairs: list[tuple], new_column: str,
                      replace: bool) -> CombineOutcome:
        tempdb = TemporarySupportDatabase()
        try:
            t_base = tempdb.store_result(base.columns, base.rows)
            t_map = tempdb.store_pairs(pairs)
            columns = self._output_columns(base, attr_index, new_column,
                                           replace)
            items: list[sql_ast.SelectItem] = []
            output_index = 0
            for index, internal in enumerate(t_base.internal_columns):
                if replace and index == attr_index:
                    items.append(sql_ast.SelectItem(
                        sql_ast.ColumnRef("c1", "m"),
                        alias=columns[output_index]))
                else:
                    items.append(sql_ast.SelectItem(
                        sql_ast.ColumnRef(internal, "b"),
                        alias=columns[output_index]))
                output_index += 1
            if not replace:
                items.append(sql_ast.SelectItem(
                    sql_ast.ColumnRef("c1", "m"), alias=columns[-1]))
            join = sql_ast.Join(
                "LEFT",
                sql_ast.TableRef(t_base.name, "b"),
                sql_ast.TableRef(t_map.name, "m"),
                sql_ast.BinaryOp(
                    "=",
                    sql_ast.ColumnRef(
                        t_base.internal_columns[attr_index], "b"),
                    sql_ast.ColumnRef("c0", "m")))
            query = sql_ast.SelectQuery(
                core=sql_ast.SelectCore(items=items, from_clause=join))
            final_sql = render_query(query)
            result = tempdb.db.execute_ast(query)
            return CombineOutcome(ResultSet(columns, result.rows), final_sql)
        finally:
            tempdb.cleanup()

    # -- boolean enrichments -----------------------------------------------------------

    def _combine_flags(self, base: ResultSet, attr: str,
                       subjects: set, new_column: str,
                       replace: bool) -> CombineOutcome:
        attr_index = find_attr_index(base.columns, attr)
        if self.strategy == "direct":
            keys = {_normalize(subject) for subject in subjects
                    if subject is not None}
            rows = []
            for row in base.rows:
                value = row[attr_index]
                flag = value is not None and _normalize(value) in keys
                if replace:
                    rows.append(row[:attr_index] + (flag,)
                                + row[attr_index + 1:])
                else:
                    rows.append(row + (flag,))
            columns = self._output_columns(base, attr_index, new_column,
                                           replace)
            return CombineOutcome(ResultSet(columns, rows), None)

        tempdb = TemporarySupportDatabase()
        try:
            t_base = tempdb.store_result(base.columns, base.rows)
            t_flag = tempdb.store_values(sorted(
                (s for s in subjects if s is not None),
                key=lambda v: str(v)), hint="flags")
            columns = self._output_columns(base, attr_index, new_column,
                                           replace)
            flag_expr = sql_ast.IsNull(
                sql_ast.ColumnRef("c0", "m"), negated=True)
            items = []
            output_index = 0
            for index, internal in enumerate(t_base.internal_columns):
                if replace and index == attr_index:
                    items.append(sql_ast.SelectItem(
                        flag_expr, alias=columns[output_index]))
                else:
                    items.append(sql_ast.SelectItem(
                        sql_ast.ColumnRef(internal, "b"),
                        alias=columns[output_index]))
                output_index += 1
            if not replace:
                items.append(sql_ast.SelectItem(flag_expr,
                                                alias=columns[-1]))
            join = sql_ast.Join(
                "LEFT",
                sql_ast.TableRef(t_base.name, "b"),
                sql_ast.TableRef(t_flag.name, "m"),
                sql_ast.BinaryOp(
                    "=",
                    sql_ast.ColumnRef(
                        t_base.internal_columns[attr_index], "b"),
                    sql_ast.ColumnRef("c0", "m")))
            query = sql_ast.SelectQuery(
                core=sql_ast.SelectCore(items=items, from_clause=join))
            final_sql = render_query(query)
            result = tempdb.db.execute_ast(query)
            return CombineOutcome(ResultSet(columns, result.rows), final_sql)
        finally:
            tempdb.cleanup()
