"""Registry of stored SPARQL queries.

Example 4.5 of the paper passes ``dangerQuery`` as the *property*
argument of REPLACECONSTANT: a name that "refers to a SPARQL query which
extracts from the contextual ontology the list of dangerous elements".
The SQM resolves property arguments against this registry first; on a
miss it synthesises the plain property-extraction query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sparql.ast import SelectQuery
from ..sparql.parser import parse_sparql
from .errors import StoredQueryError


@dataclass
class StoredQuery:
    name: str
    text: str
    description: str = ""
    #: Parsed form; ``None`` only for hand-built instances — every query
    #: that goes through :meth:`StoredQueryRegistry.register` has it set.
    query: SelectQuery | None = field(default=None, repr=False)


class StoredQueryRegistry:
    """Named SPARQL SELECT queries usable as enrichment properties."""

    def __init__(self) -> None:
        self._queries: dict[str, StoredQuery] = {}

    def register(self, name: str, text: str,
                 description: str = "") -> StoredQuery:
        try:
            parsed = parse_sparql(text)
        except Exception as exc:
            raise StoredQueryError(
                f"stored query {name!r} does not parse: {exc}") from exc
        if not isinstance(parsed, SelectQuery):
            raise StoredQueryError(
                f"stored query {name!r} must be a SELECT query")
        stored = StoredQuery(name, text, description, parsed)
        self._queries[name] = stored
        return stored

    def unregister(self, name: str) -> None:
        if name not in self._queries:
            raise StoredQueryError(f"no stored query named {name!r}")
        del self._queries[name]

    def get(self, name: str) -> StoredQuery | None:
        return self._queries.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._queries

    def names(self) -> list[str]:
        return sorted(self._queries)

    def copy(self) -> "StoredQueryRegistry":
        clone = StoredQueryRegistry()
        clone._queries = dict(self._queries)
        return clone
