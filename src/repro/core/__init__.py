"""SESQL — the paper's primary contribution.

The Semantically Enriched SQL language (Section IV of the paper) and its
processing architecture (Fig. 6): condition-tag scanner, SQP, SQM,
JoinManager, temporary support database and the engine facade.
"""

from .ast import (BoolSchemaExtension, BoolSchemaReplacement, EnrichedQuery,
                  Enrichment, ReplaceConstant, ReplaceVariable,
                  SchemaExtension, SchemaReplacement, TaggedCondition)
from .condtags import scan_condition_tags
from .engine import SESQLEngine, SESQLResult
from .errors import (EnrichmentError, MappingError, ParameterError,
                     SesqlError, SesqlSyntaxError, StoredQueryError)
from .join_manager import JoinManager
from .mapping import AttributeMapping, ResourceMapping
from .parser import parse_enrichments, split_sesql
from .sqm import Extraction, SemanticQueryModule
from .sqp import (SemanticQueryParser, bind_parameters, clone_enriched,
                  expand_placeholders, parse_sesql)
from .stored_queries import StoredQuery, StoredQueryRegistry
from .tempdb import TemporarySupportDatabase

__all__ = [
    "SESQLEngine", "SESQLResult", "SemanticQueryParser", "parse_sesql",
    "SemanticQueryModule", "Extraction", "JoinManager",
    "TemporarySupportDatabase", "ResourceMapping", "AttributeMapping",
    "StoredQueryRegistry", "StoredQuery",
    "EnrichedQuery", "Enrichment", "TaggedCondition",
    "SchemaExtension", "SchemaReplacement", "BoolSchemaExtension",
    "BoolSchemaReplacement", "ReplaceConstant", "ReplaceVariable",
    "scan_condition_tags", "split_sesql", "parse_enrichments",
    "expand_placeholders", "bind_parameters", "clone_enriched",
    "SesqlError", "SesqlSyntaxError", "EnrichmentError", "MappingError",
    "StoredQueryError", "ParameterError",
]
