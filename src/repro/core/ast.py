"""SESQL abstract syntax: the six enrichment clauses of Fig. 5.

A SESQL query is a SQL query followed by ``ENRICH`` and one or more
enrichment expressions.  Four affect the SELECT clause (schema
extension/replacement and their boolean variants) and two affect the
WHERE clause (constant/variable replacement on *tagged* conditions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..relational import ast as sql_ast


@dataclass
class SchemaExtension:
    """SCHEMAEXTENSION(attr, prop): add a column with prop-related values."""

    attr: str
    prop: str

    kind = "SCHEMAEXTENSION"
    affects = "select"


@dataclass
class SchemaReplacement:
    """SCHEMAREPLACEMENT(attr, prop): replace attr by prop-related values."""

    attr: str
    prop: str

    kind = "SCHEMAREPLACEMENT"
    affects = "select"


@dataclass
class BoolSchemaExtension:
    """BOOLSCHEMAEXTENSION(attr, prop, concept): add a boolean column that
    is true when (attr-value, prop, concept) holds in the knowledge base."""

    attr: str
    prop: str
    concept: str

    kind = "BOOLSCHEMAEXTENSION"
    affects = "select"


@dataclass
class BoolSchemaReplacement:
    """BOOLSCHEMAREPLACEMENT(attr, prop, concept): like the extension but
    replaces the attr column."""

    attr: str
    prop: str
    concept: str

    kind = "BOOLSCHEMAREPLACEMENT"
    affects = "select"


@dataclass
class ReplaceConstant:
    """REPLACECONSTANT(cond, const, prop): inside tagged condition *cond*,
    treat the non-schema constant *const* as the set of values extracted
    via *prop* (an ontology property or a stored SPARQL query name).

    The Fig. 5 grammar lists two arguments; the paper's text and Example
    4.5 use three.  We implement the three-argument form and accept the
    two-argument form ``(const, prop)`` when exactly one condition is
    tagged (the parser fills ``cond`` in).
    """

    cond: str
    constant: str
    prop: str

    kind = "REPLACECONSTANT"
    affects = "where"


@dataclass
class ReplaceVariable:
    """REPLACEVARIABLE(cond, attr, prop): inside tagged condition *cond*,
    evaluate column *attr* as the set of its prop-related values
    (existential semantics)."""

    cond: str
    attr: str
    prop: str

    kind = "REPLACEVARIABLE"
    affects = "where"


Enrichment = (SchemaExtension | SchemaReplacement | BoolSchemaExtension
              | BoolSchemaReplacement | ReplaceConstant | ReplaceVariable)


@dataclass
class TaggedCondition:
    """A WHERE-clause condition marked with ``${ <condition> : id }``."""

    cond_id: str
    text: str
    expr: sql_ast.Expr


@dataclass
class EnrichedQuery:
    """The output of the Semantic Query Parser (SQP)."""

    sql_text: str                      # cleaned SQL (tags stripped)
    query: sql_ast.SelectQuery         # parsed cleaned SQL
    enrichments: list[Enrichment] = field(default_factory=list)
    conditions: dict[str, TaggedCondition] = field(default_factory=dict)

    def where_enrichments(self) -> list[Enrichment]:
        return [e for e in self.enrichments if e.affects == "where"]

    def select_enrichments(self) -> list[Enrichment]:
        return [e for e in self.enrichments if e.affects == "select"]
