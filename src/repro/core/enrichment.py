"""WHERE-clause enrichment strategies: REPLACECONSTANT / REPLACEVARIABLE.

These two strategies change which rows the relational query returns, so
they are applied *before* the databank query runs: the tagged condition
is rewritten into a correlated predicate over a temporary table holding
the SPARQL extraction (semantics decision #3 in DESIGN.md — existential
over the replacement set), and the rewritten query executes once with
the temp tables injected into the databank, mirroring how PostgreSQL
temp tables share the session of the original query.
"""

from __future__ import annotations

from typing import Callable

from ..relational import ast as sql_ast
from ..relational.engine import Database
from ..relational.parser import parse_expr
from .ast import ReplaceConstant, ReplaceVariable, TaggedCondition
from .errors import EnrichmentError
from .mapping import ResourceMapping
from .sqm import Extraction
from .tempdb import materialize

ExprTransform = Callable[[sql_ast.Expr], sql_ast.Expr | None]


def transform_expr(expr: sql_ast.Expr,
                   visit: ExprTransform) -> sql_ast.Expr:
    """Rebuild an expression tree, letting *visit* replace subtrees.

    ``visit`` returns a replacement node or ``None`` to recurse.
    """
    replaced = visit(expr)
    if replaced is not None:
        return replaced
    if isinstance(expr, sql_ast.UnaryOp):
        return sql_ast.UnaryOp(expr.op, transform_expr(expr.operand, visit))
    if isinstance(expr, sql_ast.BinaryOp):
        return sql_ast.BinaryOp(expr.op,
                                transform_expr(expr.left, visit),
                                transform_expr(expr.right, visit))
    if isinstance(expr, sql_ast.IsNull):
        return sql_ast.IsNull(transform_expr(expr.operand, visit),
                              expr.negated)
    if isinstance(expr, sql_ast.Like):
        return sql_ast.Like(transform_expr(expr.operand, visit),
                            transform_expr(expr.pattern, visit),
                            expr.negated)
    if isinstance(expr, sql_ast.InList):
        return sql_ast.InList(
            transform_expr(expr.operand, visit),
            [transform_expr(item, visit) for item in expr.items],
            expr.negated)
    if isinstance(expr, sql_ast.Between):
        return sql_ast.Between(transform_expr(expr.operand, visit),
                               transform_expr(expr.low, visit),
                               transform_expr(expr.high, visit),
                               expr.negated)
    if isinstance(expr, sql_ast.FunctionCall):
        return sql_ast.FunctionCall(
            expr.name, [transform_expr(arg, visit) for arg in expr.args],
            expr.distinct, expr.star)
    if isinstance(expr, sql_ast.CaseExpr):
        operand = (transform_expr(expr.operand, visit)
                   if expr.operand is not None else None)
        whens = [(transform_expr(c, visit), transform_expr(r, visit))
                 for c, r in expr.whens]
        else_result = (transform_expr(expr.else_result, visit)
                       if expr.else_result is not None else None)
        return sql_ast.CaseExpr(operand, whens, else_result)
    if isinstance(expr, sql_ast.Cast):
        return sql_ast.Cast(transform_expr(expr.operand, visit),
                            expr.type_name)
    # Literals, column refs, subqueries: returned as-is.
    return expr


def replace_condition(where: sql_ast.Expr, target_key,
                      replacement: sql_ast.Expr) -> tuple[sql_ast.Expr, bool]:
    """Replace the first subtree whose node_key matches *target_key*."""
    found = [False]

    def visit(node: sql_ast.Expr) -> sql_ast.Expr | None:
        if not found[0]:
            try:
                key = sql_ast.node_key(node)
            except TypeError:
                return None
            if key == target_key:
                found[0] = True
                return replacement
        return None

    rewritten = transform_expr(where, visit)
    return rewritten, found[0]


def _is_constant_ref(node: sql_ast.Expr, constant: str) -> bool:
    """Does *node* denote the REPLACECONSTANT constant?

    The constant appears either as a bare identifier (parsed as an
    unqualified column reference, since it is not in the schema) or as a
    string literal equal to the constant.
    """
    if isinstance(node, sql_ast.ColumnRef) and node.qualifier is None \
            and node.name.lower() == constant.lower():
        return True
    if isinstance(node, sql_ast.Literal) and isinstance(node.value, str) \
            and node.value == constant:
        return True
    return False


def _exists_over(temp_table: str, alias: str,
                 where: sql_ast.Expr) -> sql_ast.Exists:
    return sql_ast.Exists(sql_ast.SelectQuery(core=sql_ast.SelectCore(
        items=[sql_ast.SelectItem(sql_ast.Literal(1))],
        from_clause=sql_ast.TableRef(temp_table, alias),
        where=where)))


class WhereRewriter:
    """Applies WHERE enrichments by rewriting the query in place."""

    def __init__(self, databank: Database, mapping: ResourceMapping,
                 include_original: bool = False) -> None:
        self.databank = databank
        self.mapping = mapping
        self.include_original = include_original
        self.temp_tables: list[str] = []

    def cleanup(self) -> None:
        for name in self.temp_tables:
            # Lock-free drop: the table is private to this call (other
            # sessions' queries never reference its unique name).
            self.databank.drop_temp_table(name)
        self.temp_tables.clear()

    # -- strategies ---------------------------------------------------------

    def apply_replace_constant(self, query: sql_ast.SelectQuery,
                               enrichment: ReplaceConstant,
                               condition: TaggedCondition,
                               extraction: Extraction) -> None:
        values = [self.mapping.to_sql_value(term)
                  for term in extraction.values]
        if self.include_original:
            values.append(enrichment.constant)
        table = materialize(self.databank, "vals", ["value"],
                            [(value,) for value in values])
        self.temp_tables.append(table.name)

        cond_expr = condition.expr
        replacement = self._rewrite_constant_condition(
            cond_expr, enrichment.constant, table.name)
        self._splice(query, condition, replacement, enrichment)

    def _rewrite_constant_condition(self, cond_expr: sql_ast.Expr,
                                    constant: str,
                                    table: str) -> sql_ast.Expr:
        # Fast path: `attr = Constant` becomes `attr IN (SELECT value ...)`.
        if isinstance(cond_expr, sql_ast.BinaryOp) and cond_expr.op == "=":
            left_is = _is_constant_ref(cond_expr.left, constant)
            right_is = _is_constant_ref(cond_expr.right, constant)
            if left_is != right_is:
                other = cond_expr.right if left_is else cond_expr.left
                return sql_ast.InSubquery(
                    other,
                    sql_ast.SelectQuery(core=sql_ast.SelectCore(
                        items=[sql_ast.SelectItem(
                            sql_ast.ColumnRef("c0"))],
                        from_clause=sql_ast.TableRef(table))))
        # General form: EXISTS over the value table with the constant
        # substituted by the table's value column.
        alias = "__rc"
        substituted = [False]

        def visit(node: sql_ast.Expr) -> sql_ast.Expr | None:
            if _is_constant_ref(node, constant):
                substituted[0] = True
                return sql_ast.ColumnRef("c0", alias)
            return None

        inner = transform_expr(cond_expr, visit)
        if not substituted[0]:
            raise EnrichmentError(
                f"constant {constant!r} does not occur in the tagged "
                f"condition")
        return _exists_over(table, alias, inner)

    def apply_replace_variable(self, query: sql_ast.SelectQuery,
                               enrichment: ReplaceVariable,
                               condition: TaggedCondition,
                               extraction: Extraction) -> None:
        pairs = [(self.mapping.to_sql_value(s), self.mapping.to_sql_value(o))
                 for s, o in extraction.pairs]
        table = materialize(self.databank, "pairs", ["subject", "object"],
                            pairs)
        self.temp_tables.append(table.name)

        try:
            attr_expr = parse_expr(enrichment.attr)
        except Exception as exc:
            raise EnrichmentError(
                f"REPLACEVARIABLE attribute {enrichment.attr!r} must be a "
                f"column reference: {exc}") from exc
        if not isinstance(attr_expr, sql_ast.ColumnRef):
            raise EnrichmentError(
                f"REPLACEVARIABLE attribute {enrichment.attr!r} must be a "
                "column reference")
        attr_key = sql_ast.node_key(attr_expr)
        alias = "__rv"
        substituted = [False]

        def visit(node: sql_ast.Expr) -> sql_ast.Expr | None:
            try:
                key = sql_ast.node_key(node)
            except TypeError:
                return None
            if key == attr_key:
                substituted[0] = True
                return sql_ast.ColumnRef("c1", alias)
            return None

        inner = transform_expr(condition.expr, visit)
        if not substituted[0]:
            raise EnrichmentError(
                f"attribute {enrichment.attr!r} does not occur in the "
                f"tagged condition")
        correlated = sql_ast.BinaryOp(
            "AND",
            sql_ast.BinaryOp("=", sql_ast.ColumnRef("c0", alias), attr_expr),
            inner)
        replacement: sql_ast.Expr = _exists_over(table.name, alias,
                                                 correlated)
        if self.include_original:
            replacement = sql_ast.BinaryOp("OR", replacement,
                                           condition.expr)
        self._splice(query, condition, replacement, enrichment)

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _splice(query: sql_ast.SelectQuery, condition: TaggedCondition,
                replacement: sql_ast.Expr, enrichment) -> None:
        if query.core.where is None:
            raise EnrichmentError(
                f"{enrichment.kind} requires a WHERE clause")
        rewritten, found = replace_condition(
            query.core.where, sql_ast.node_key(condition.expr), replacement)
        if not found:
            raise EnrichmentError(
                f"tagged condition {condition.cond_id!r} not found in the "
                "WHERE clause (was it altered by another enrichment?)")
        query.core.where = rewritten
