"""The temporary support database of Fig. 6.

Partial results (the base SQL result and the SPARQL extraction) are
materialised as temporary tables on which the final SQL query runs.
Column *display* names are kept separate from the internal storage
names (``c0``, ``c1``, ...) so duplicate output names — legal in SQL
results — never collide in the temp schema.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..relational.engine import Database
from ..relational.schema import Column
from ..relational.types import DataType

_counter = itertools.count()


def infer_column_type(values: Iterable[Any]) -> DataType:
    """Pick the narrowest DataType that holds every non-NULL value."""
    saw_int = saw_float = saw_bool = saw_text = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            saw_bool = True
        elif isinstance(value, int):
            saw_int = True
        elif isinstance(value, float):
            saw_float = True
        else:
            saw_text = True
    if saw_text:
        return DataType.TEXT
    if saw_bool and not (saw_int or saw_float):
        return DataType.BOOLEAN
    if saw_float:
        return DataType.REAL
    if saw_int or saw_bool:
        return DataType.INTEGER
    return DataType.TEXT


@dataclass
class TempTable:
    """A materialised temporary table."""

    name: str
    display_columns: list[str]
    internal_columns: list[str]

    def internal_for(self, display_index: int) -> str:
        return self.internal_columns[display_index]


def materialize(db: Database, name_hint: str, display_columns: Sequence[str],
                rows: Sequence[tuple]) -> TempTable:
    """Create a temp table in *db* holding *rows*; returns its handle.

    Injected via ``create_temp_table`` — a lock-free namespace
    operation — so enriched reads never contend on (or deadlock
    against) the databank's writer lock.
    """
    name = f"__sesql_{name_hint}_{next(_counter)}"
    internal = [f"c{i}" for i in range(len(display_columns))]
    columns = []
    for index, internal_name in enumerate(internal):
        values = (row[index] for row in rows)
        columns.append(Column(internal_name, infer_column_type(values)))
    table = db.create_temp_table(name, columns)
    for row in rows:
        table.insert_tuple(_coerce_row(row))
    return TempTable(name, list(display_columns), internal)


def _coerce_row(row: tuple) -> tuple:
    """Ensure values fit the engine's storage model (no exotic objects)."""
    coerced = []
    for value in row:
        if value is None or isinstance(value, (bool, int, float, str)):
            coerced.append(value)
        else:
            coerced.append(str(value))
    return tuple(coerced)


class TemporarySupportDatabase:
    """A scratch relational database for the Fig. 6 combine step."""

    def __init__(self) -> None:
        self.db = Database("tempdb")
        self._tables: list[str] = []

    def store_result(self, display_columns: Sequence[str],
                     rows: Sequence[tuple], hint: str = "base") -> TempTable:
        table = materialize(self.db, hint, display_columns, rows)
        self._tables.append(table.name)
        return table

    def store_pairs(self, pairs: Sequence[tuple[Any, Any]],
                    hint: str = "map") -> TempTable:
        table = materialize(self.db, hint, ["subject", "object"], pairs)
        self._tables.append(table.name)
        return table

    def store_values(self, values: Sequence[Any],
                     hint: str = "vals") -> TempTable:
        rows = [(value,) for value in values]
        table = materialize(self.db, hint, ["value"], rows)
        self._tables.append(table.name)
        return table

    def cleanup(self) -> None:
        for name in self._tables:
            self.db.catalog.drop_table(name, if_exists=True)
        self._tables.clear()
