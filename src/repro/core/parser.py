"""Parser for the ENRICH clause (the Fig. 5 grammar) and the SESQL
query splitter.

``split_sesql`` finds the top-level ``ENRICH`` keyword that separates
the SQL part from the enrichment specification;
``parse_enrichments`` parses the specification into enrichment AST
nodes.  Both the concatenated (``SCHEMAEXTENSION``) and the spaced
(``SCHEMA EXTENSION``) spellings from the paper are accepted.
"""

from __future__ import annotations

from .ast import (BoolSchemaExtension, BoolSchemaReplacement, Enrichment,
                  ReplaceConstant, ReplaceVariable, SchemaExtension,
                  SchemaReplacement)
from .errors import SesqlSyntaxError

_CLAUSES = {
    "SCHEMAEXTENSION": (SchemaExtension, 2),
    "SCHEMAREPLACEMENT": (SchemaReplacement, 2),
    "BOOLSCHEMAEXTENSION": (BoolSchemaExtension, 3),
    "BOOLSCHEMAREPLACEMENT": (BoolSchemaReplacement, 3),
    "REPLACECONSTANT": (ReplaceConstant, (2, 3)),
    "REPLACEVARIABLE": (ReplaceVariable, 3),
}

_SPACED = {
    ("SCHEMA", "EXTENSION"): "SCHEMAEXTENSION",
    ("SCHEMA", "REPLACEMENT"): "SCHEMAREPLACEMENT",
    ("BOOLSCHEMA", "EXTENSION"): "BOOLSCHEMAEXTENSION",
    ("BOOLSCHEMA", "REPLACEMENT"): "BOOLSCHEMAREPLACEMENT",
    ("BOOL", "SCHEMAEXTENSION"): "BOOLSCHEMAEXTENSION",
    ("BOOL", "SCHEMAREPLACEMENT"): "BOOLSCHEMAREPLACEMENT",
    ("REPLACE", "CONSTANT"): "REPLACECONSTANT",
    ("REPLACE", "VARIABLE"): "REPLACEVARIABLE",
}


def split_sesql(text: str) -> tuple[str, str | None]:
    """Split SESQL text into (sql_part, enrich_part or None).

    The split point is the first ``ENRICH`` keyword outside string
    literals and condition tags.
    """
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char == "'":
            position = _skip_string(text, position)
            continue
        if char in "eE" and _word_at(text, position, "ENRICH"):
            return text[:position], text[position + len("ENRICH"):]
        position += 1
    return text, None


def _word_at(text: str, position: int, word: str) -> bool:
    end = position + len(word)
    if text[position:end].upper() != word:
        return False
    if position > 0 and (text[position - 1].isalnum()
                         or text[position - 1] == "_"):
        return False
    if end < len(text) and (text[end].isalnum() or text[end] == "_"):
        return False
    return True


def _skip_string(text: str, start: int) -> int:
    position = start + 1
    while position < len(text):
        if text[position] == "'":
            if position + 1 < len(text) and text[position + 1] == "'":
                position += 2
                continue
            return position + 1
        position += 1
    raise SesqlSyntaxError("unterminated string literal", start)


# ---------------------------------------------------------------------------
# Enrichment specification tokenizer + parser
# ---------------------------------------------------------------------------

def _tokenize_spec(text: str) -> list[tuple[str, str, int]]:
    """Tokens: ('word', value) | ('string', value) | ('punct', '(' ')' ',')."""
    tokens: list[tuple[str, str, int]] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char in " \t\r\n":
            position += 1
        elif char == "-" and text[position:position + 2] == "--":
            while position < length and text[position] != "\n":
                position += 1
        elif char in "(),":
            tokens.append(("punct", char, position))
            position += 1
        elif char == "'":
            end = _skip_string(text, position)
            tokens.append(("string",
                           text[position + 1:end - 1].replace("''", "'"),
                           position))
            position = end
        elif char.isalnum() or char in "_^":
            # ^ / | are SPARQL property-path operators, allowed inside
            # property arguments (extension, see SQM._property_path_n3).
            start = position
            while position < length and (text[position].isalnum()
                                         or text[position] in "_.:-^/|"):
                position += 1
            word = text[start:position].rstrip(".")
            position = start + len(word)
            tokens.append(("word", word, start))
        else:
            raise SesqlSyntaxError(
                f"unexpected character {char!r} in ENRICH clause", position)
    tokens.append(("eof", "", length))
    return tokens


def parse_enrichments(text: str,
                      known_conditions: set[str] | None = None
                      ) -> list[Enrichment]:
    """Parse the body of an ENRICH clause into enrichment nodes.

    ``known_conditions`` (ids collected by the condition-tag scanner)
    lets the two-argument REPLACECONSTANT form infer its condition when
    exactly one condition is tagged.
    """
    tokens = _tokenize_spec(text)
    index = 0
    enrichments: list[Enrichment] = []

    def peek() -> tuple[str, str, int]:
        return tokens[index]

    def advance() -> tuple[str, str, int]:
        nonlocal index
        token = tokens[index]
        if token[0] != "eof":
            index += 1
        return token

    while peek()[0] != "eof":
        kind, value, position = advance()
        if kind != "word":
            raise SesqlSyntaxError(
                f"expected an enrichment clause, found {value!r}", position)
        name = value.upper()
        if name not in _CLAUSES and peek()[0] == "word":
            spaced = _SPACED.get((name, peek()[1].upper()))
            if spaced is not None:
                advance()
                name = spaced
        if name not in _CLAUSES:
            raise SesqlSyntaxError(
                f"unknown enrichment clause {value!r}", position)
        node_class, arity = _CLAUSES[name]
        args = _parse_args(tokens, advance, peek)
        enrichments.append(_build(node_class, name, arity, args,
                                  known_conditions, position))
    if not enrichments:
        raise SesqlSyntaxError("ENRICH clause is empty")
    return enrichments


def _parse_args(tokens, advance, peek) -> list[str]:
    kind, value, position = advance()
    if kind != "punct" or value != "(":
        raise SesqlSyntaxError("expected '(' after enrichment name",
                               position)
    args: list[str] = []
    while True:
        kind, value, position = advance()
        if kind in ("word", "string"):
            args.append(value)
        else:
            raise SesqlSyntaxError(
                f"expected an argument, found {value!r}", position)
        kind, value, position = advance()
        if kind == "punct" and value == ",":
            continue
        if kind == "punct" and value == ")":
            return args
        raise SesqlSyntaxError(
            f"expected ',' or ')', found {value!r}", position)


def _build(node_class, name: str, arity, args: list[str],
           known_conditions: set[str] | None,
           position: int) -> Enrichment:
    if name == "REPLACECONSTANT":
        if len(args) == 3:
            return ReplaceConstant(args[0], args[1], args[2])
        if len(args) == 2:
            # Fig. 5 two-argument form: infer the condition.
            if known_conditions and len(known_conditions) == 1:
                return ReplaceConstant(next(iter(known_conditions)),
                                       args[0], args[1])
            raise SesqlSyntaxError(
                "REPLACECONSTANT(const, prop) needs exactly one tagged "
                "condition to infer from; tag conditions with "
                "${...:id} and use the three-argument form", position)
        raise SesqlSyntaxError(
            f"REPLACECONSTANT takes 2 or 3 arguments, got {len(args)}",
            position)
    expected = arity if isinstance(arity, int) else arity[1]
    if len(args) != expected:
        raise SesqlSyntaxError(
            f"{name} takes {expected} arguments, got {len(args)}", position)
    return node_class(*args)
