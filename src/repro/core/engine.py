"""The SESQL engine: the full Fig. 6 pipeline behind one call.

``SESQLEngine.execute`` runs a SESQL query end to end:

1. the **SQP** splits the text, strips condition tags and parses both
   the SQL part and the enrichment specification;
2. the **SQM** builds one SPARQL extraction per enrichment and runs it
   on the (per-user) knowledge base;
3. WHERE enrichments rewrite the tagged conditions over temp tables
   injected next to the databank tables, and the (rewritten) SQL query
   executes on the databank;
4. the **JoinManager** combines the base result with each SELECT
   enrichment through the temporary support database, issuing the final
   SQL query that yields the enriched result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..rdf.store import TripleStore
from ..relational.engine import Database
from ..relational.render import render_query
from ..relational.result import ResultSet
from .ast import (BoolSchemaExtension, BoolSchemaReplacement, EnrichedQuery,
                  ReplaceConstant, ReplaceVariable, SchemaExtension,
                  SchemaReplacement)
from .enrichment import WhereRewriter
from .errors import EnrichmentError
from .join_manager import JoinManager
from .mapping import ResourceMapping
from .sqm import SemanticQueryModule
from .sqp import SemanticQueryParser
from .stored_queries import StoredQueryRegistry


@dataclass
class SESQLResult:
    """The outcome of one SESQL execution, with full observability."""

    result: ResultSet
    enriched: EnrichedQuery
    base_sql: str                 # cleaned SQL as parsed
    executed_sql: str             # SQL actually run on the databank
    sparql_queries: list[str] = field(default_factory=list)
    final_sqls: list[str] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def rows(self) -> list[tuple]:
        return self.result.rows

    @property
    def columns(self) -> list[str]:
        return self.result.columns


class SESQLEngine:
    """Executes SESQL queries against a databank + knowledge base pair."""

    def __init__(self, databank: Database,
                 knowledge_base: TripleStore | None = None,
                 mapping: ResourceMapping | None = None,
                 stored_queries: StoredQueryRegistry | None = None,
                 include_original: bool = False,
                 join_strategy: str = "tempdb") -> None:
        self.databank = databank
        # Explicit None check: an *empty* TripleStore is falsy but must be
        # kept — the caller may populate it after constructing the engine.
        self.knowledge_base = (knowledge_base if knowledge_base is not None
                               else TripleStore())
        self.mapping = mapping or ResourceMapping()
        self.stored_queries = stored_queries or StoredQueryRegistry()
        self.include_original = include_original
        self.join_strategy = join_strategy
        self.sqp = SemanticQueryParser()
        self.sqm = SemanticQueryModule(self.mapping, self.stored_queries)

    def execute(self, text: str,
                knowledge_base: TripleStore | None = None,
                include_original: bool | None = None,
                join_strategy: str | None = None) -> SESQLResult:
        """Run a SESQL query; per-call arguments override engine defaults."""
        kb = knowledge_base if knowledge_base is not None \
            else self.knowledge_base
        include = (self.include_original if include_original is None
                   else include_original)
        strategy = join_strategy or self.join_strategy

        started = time.perf_counter()
        enriched = self.sqp.parse(text)
        timings = {"parse": time.perf_counter() - started}
        sparql_queries: list[str] = []
        final_sqls: list[str] = []

        rewriter = WhereRewriter(self.databank, self.mapping, include)
        try:
            stage = time.perf_counter()
            for enrichment in enriched.where_enrichments():
                condition = enriched.conditions[enrichment.cond]
                if isinstance(enrichment, ReplaceConstant):
                    extraction = self.sqm.values_for(
                        kb, enrichment.prop, enrichment.constant)
                    sparql_queries.append(extraction.sparql)
                    rewriter.apply_replace_constant(
                        enriched.query, enrichment, condition, extraction)
                elif isinstance(enrichment, ReplaceVariable):
                    extraction = self.sqm.pairs_for(kb, enrichment.prop)
                    sparql_queries.append(extraction.sparql)
                    rewriter.apply_replace_variable(
                        enriched.query, enrichment, condition, extraction)
            timings["where_rewrite"] = time.perf_counter() - stage

            executed_sql = render_query(enriched.query)
            stage = time.perf_counter()
            base = self.databank.execute_ast(enriched.query)
            timings["sql"] = time.perf_counter() - stage
            if not isinstance(base, ResultSet):  # pragma: no cover
                raise EnrichmentError("the SQL part did not produce rows")
        finally:
            rewriter.cleanup()

        join_manager = JoinManager(self.mapping, strategy)
        current = base
        stage = time.perf_counter()
        for enrichment in enriched.select_enrichments():
            if isinstance(enrichment, (SchemaExtension, SchemaReplacement)):
                extraction = self.sqm.pairs_for(kb, enrichment.prop)
            elif isinstance(enrichment, (BoolSchemaExtension,
                                         BoolSchemaReplacement)):
                extraction = self.sqm.subjects_for(
                    kb, enrichment.prop, enrichment.concept)
            else:  # pragma: no cover - exhaustive
                raise EnrichmentError(
                    f"unhandled enrichment {enrichment.kind}")
            sparql_queries.append(extraction.sparql)
            outcome = join_manager.combine(current, enrichment, extraction)
            current = outcome.result
            if outcome.final_sql is not None:
                final_sqls.append(outcome.final_sql)
        timings["combine"] = time.perf_counter() - stage
        timings["total"] = time.perf_counter() - started

        return SESQLResult(
            result=current,
            enriched=enriched,
            base_sql=enriched.sql_text,
            executed_sql=executed_sql,
            sparql_queries=sparql_queries,
            final_sqls=final_sqls,
            timings=timings,
        )

    def query(self, text: str, **kwargs) -> ResultSet:
        """Execute and return just the enriched result rows."""
        return self.execute(text, **kwargs).result
